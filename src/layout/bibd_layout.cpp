#include "layout/bibd_layout.hpp"

#include <stdexcept>

#include "flow/parity_assign.hpp"

namespace pdl::layout {

namespace {

// Units per disk for `copies` copies of the design: copies * r.
std::uint32_t layout_size(const design::BlockDesign& design,
                          std::uint32_t copies) {
  const auto params = design::design_params(design);
  return static_cast<std::uint32_t>(copies * params.r);
}

Layout stack_copies(const design::BlockDesign& design, std::uint32_t copies) {
  Layout layout(design.v, layout_size(design, copies));
  for (std::uint32_t c = 0; c < copies; ++c) {
    for (const auto& block : design.blocks) {
      layout.append_stripe(block, 0);  // parity fixed up by the caller
    }
  }
  return layout;
}

}  // namespace

Layout holland_gibson_layout(const design::BlockDesign& design) {
  // k copies; in copy c the parity unit is tuple position c.
  Layout layout(design.v, layout_size(design, design.k));
  for (std::uint32_t c = 0; c < design.k; ++c) {
    for (const auto& block : design.blocks) {
      layout.append_stripe(block, c);
    }
  }
  return layout;
}

Layout flow_balanced_layout(const design::BlockDesign& design,
                            std::uint32_t copies) {
  if (copies == 0)
    throw std::invalid_argument("flow_balanced_layout: copies >= 1");
  Layout layout = stack_copies(design, copies);

  std::vector<std::vector<std::uint32_t>> stripes;
  stripes.reserve(layout.num_stripes());
  for (const Stripe& s : layout.stripes()) {
    std::vector<std::uint32_t> disks;
    disks.reserve(s.units.size());
    for (const StripeUnit& u : s.units) disks.push_back(u.disk);
    stripes.push_back(std::move(disks));
  }
  const auto assignment =
      flow::assign_parity_balanced(stripes, design.v);
  for (std::size_t i = 0; i < layout.num_stripes(); ++i) {
    layout.set_parity_pos(i, assignment.chosen[i].front());
  }
  return layout;
}

Layout perfectly_balanced_layout(const design::BlockDesign& design) {
  const std::uint64_t copies =
      flow::copies_for_perfect_balance(design.b(), design.v);
  return flow_balanced_layout(design, static_cast<std::uint32_t>(copies));
}

Layout round_robin_parity_layout(const design::BlockDesign& design,
                                 std::uint32_t copies) {
  if (copies == 0)
    throw std::invalid_argument("round_robin_parity_layout: copies >= 1");
  Layout layout = stack_copies(design, copies);
  for (std::size_t i = 0; i < layout.num_stripes(); ++i) {
    layout.set_parity_pos(
        i, static_cast<std::uint32_t>(i % design.k));
  }
  return layout;
}

}  // namespace pdl::layout
