#pragma once
// Layouts derived from BIBDs.
//
// * holland_gibson_layout: the construction of [Holland & Gibson 1992]
//   described in Section 1 -- replicate the design k times, rotating which
//   tuple position holds parity, giving a size k*r layout with perfectly
//   balanced parity.
// * flow_balanced_layout: the paper's Section 4 improvement -- any number of
//   copies (down to one) with parity assigned by the network-flow method;
//   per-disk parity counts differ by at most one (Corollary 16), and are
//   perfectly balanced iff v | (copies * b) (Corollary 17).

#include "design/bibd.hpp"
#include "layout/layout.hpp"

namespace pdl::layout {

/// Holland-Gibson layout: k rotated copies of the design; size = k * r.
[[nodiscard]] Layout holland_gibson_layout(const design::BlockDesign& design);

/// `copies` stacked copies of the design with flow-balanced parity
/// (Theorem 14 / Corollary 16); size = copies * r.  copies >= 1.
[[nodiscard]] Layout flow_balanced_layout(const design::BlockDesign& design,
                                          std::uint32_t copies = 1);

/// The minimum number of copies for which perfect parity balance is
/// achievable, lcm(b, v)/b (Corollary 17), and the layout built with it.
[[nodiscard]] Layout perfectly_balanced_layout(
    const design::BlockDesign& design);

/// Baseline for ablation: parity assigned greedily round-robin over block
/// positions (no flow).  Same size as flow_balanced_layout(design, copies).
[[nodiscard]] Layout round_robin_parity_layout(
    const design::BlockDesign& design, std::uint32_t copies = 1);

}  // namespace pdl::layout
