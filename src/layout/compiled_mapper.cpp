#include "layout/compiled_mapper.hpp"

#include <stdexcept>

namespace pdl::layout {

CompiledMapper::CompiledMapper(const AddressMapper& mapper)
    : v_(mapper.num_disks()),
      s_(mapper.units_per_disk()),
      d_(mapper.data_units_per_iteration()) {
  const std::vector<Stripe>& stripes = mapper.stripes();
  if (d_ == 0)
    throw std::invalid_argument("CompiledMapper: layout has no data units");
  div_.init(d_);

  std::size_t total_units = 0;
  for (const Stripe& st : stripes) {
    total_units += st.units.size();
    max_stripe_ = std::max<std::uint32_t>(max_stripe_, st.size());
  }

  // Carve the single word table into its sections.
  const std::size_t d = static_cast<std::size_t>(d_);
  data_disk_ = 0;
  data_offset_ = data_disk_ + d;
  parity_disk_ = data_offset_ + d;
  parity_offset_ = parity_disk_ + d;
  stripe_begin_ = parity_offset_ + d;
  stripe_len_ = stripe_begin_ + d;
  unit_disk_ = stripe_len_ + d;
  unit_offset_ = unit_disk_ + total_units;
  words_.assign(unit_offset_ + total_units, 0);
  inverse_.assign(static_cast<std::size_t>(v_) * s_, kParity);

  // Flatten the stripe units in layout order, then walk the stripes in the
  // same stripe-major order AddressMapper numbers logical units in, filling
  // the per-data-unit columns.
  std::vector<std::uint32_t> stripe_flat_begin(stripes.size(), 0);
  std::size_t next_unit = 0;
  for (std::size_t si = 0; si < stripes.size(); ++si) {
    stripe_flat_begin[si] = static_cast<std::uint32_t>(next_unit);
    for (const StripeUnit& u : stripes[si].units) {
      words_[unit_disk_ + next_unit] = u.disk;
      words_[unit_offset_ + next_unit] = u.offset;
      ++next_unit;
    }
  }

  // The numbering below consumes the mapper's parity masks (not a
  // re-derivation from parity_pos), so a multi-parity mapper and its
  // compiled form can never disagree about which positions hold data.
  const std::vector<std::uint32_t>& spare_pos = mapper.spare_positions();
  const std::vector<std::uint64_t>& parity_mask = mapper.parity_masks();
  std::uint64_t logical = 0;
  for (std::size_t si = 0; si < stripes.size(); ++si) {
    const Stripe& st = stripes[si];
    const StripeUnit& parity = st.parity_unit();
    for (std::uint32_t pos = 0; pos < st.units.size(); ++pos) {
      if (!spare_pos.empty() && pos == spare_pos[si]) {
        const StripeUnit& sp = st.units[pos];
        inverse_[static_cast<std::size_t>(sp.disk) * s_ + sp.offset] = kSpare;
        continue;
      }
      if ((parity_mask[si] >> pos) & 1) continue;
      const StripeUnit& u = st.units[pos];
      words_[data_disk_ + logical] = u.disk;
      words_[data_offset_ + logical] = u.offset;
      words_[parity_disk_ + logical] = parity.disk;
      words_[parity_offset_ + logical] = parity.offset;
      words_[stripe_begin_ + logical] = stripe_flat_begin[si];
      words_[stripe_len_ + logical] = st.size();
      inverse_[static_cast<std::size_t>(u.disk) * s_ + u.offset] = logical;
      ++logical;
    }
  }
  if (logical != d_)
    throw std::logic_error("CompiledMapper: data unit count mismatch");
}

std::uint64_t CompiledMapper::logical_at(Physical position) const {
  if (position.disk >= v_)
    throw std::invalid_argument("logical_at: disk out of range");
  const std::uint64_t iteration = position.offset / s_;
  const std::uint64_t within = position.offset % s_;
  const std::uint64_t base =
      inverse_[static_cast<std::size_t>(position.disk) * s_ + within];
  if (base >= kSpare) return base;  // kParity or kSpare sentinel
  return iteration * d_ + base;
}

}  // namespace pdl::layout
