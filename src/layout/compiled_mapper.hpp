#pragma once
// CompiledMapper: the serving-path form of AddressMapper.
//
// AddressMapper keeps the layout's stripe table as nested vectors and
// allocates a fresh vector on every stripe_of() call -- fine for
// construction-time work, hostile to the hot path the paper's Condition 4
// promises ("one table lookup plus a constant number of arithmetic
// operations").  CompiledMapper flattens everything into one contiguous
// struct-of-arrays word table at construction time:
//
//   data_disk[D] | data_offset[D] | parity_disk[D] | parity_offset[D] |
//   stripe_begin[D] | stripe_len[D] | unit_disk[U] | unit_offset[U]
//
// (D = data units per iteration, U = total stripe units).  map() and
// parity_of() are then a single indexed load each plus the iteration
// arithmetic, with no pointer chasing through Stripe objects;
// stripe_of() writes into caller-provided storage; map_batch() resolves a
// whole span of logical addresses in one inlined loop.  All hot-path
// methods are defined inline in this header so call sites compile to the
// table access itself.

#include <cstdint>
#include <span>
#include <vector>

#include "layout/mapping.hpp"
#include "layout/sparing.hpp"

namespace pdl::layout {

namespace detail {

/// Division-free floor(n / d) for a runtime-constant divisor, exact for
/// every 64-bit n and d >= 1.  Uses the round-down magic m = (2^64-1)/d:
/// the mulhi estimate is floor(n/d) or floor(n/d) - 1, fixed by a single
/// compare -- a multiply instead of the hardware divide that otherwise
/// dominates the mapping arithmetic.
struct U64Divisor {
  std::uint64_t d = 1;
  std::uint64_t magic = ~0ull;

  void init(std::uint64_t divisor) noexcept {
    d = divisor;
    magic = ~0ull / divisor;
  }

  struct QuotRem {
    std::uint64_t quot;
    std::uint64_t rem;
  };
  [[nodiscard]] QuotRem divide(std::uint64_t n) const noexcept {
    std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(n) * magic) >> 64);
    std::uint64_t r = n - q * d;
    if (r >= d) {  // compiles to a conditional move, not a branch
      ++q;
      r -= d;
    }
    return {q, r};
  }
};

}  // namespace detail

class CompiledMapper {
 public:
  using Physical = AddressMapper::Physical;
  static constexpr std::uint64_t kParity = AddressMapper::kParity;
  static constexpr std::uint64_t kSpare = AddressMapper::kSpare;

  /// Compiles the tables of an existing AddressMapper.  The logical
  /// numbering is taken from the mapper, so the two agree everywhere --
  /// including spare-aware mappers, whose spare units are excluded from
  /// the data columns and marked kSpare in the inverse.
  explicit CompiledMapper(const AddressMapper& mapper);

  /// Convenience: compile straight from a layout.
  explicit CompiledMapper(const Layout& layout)
      : CompiledMapper(AddressMapper(layout)) {}

  /// Convenience: compile a spare-aware mapper from a spared layout
  /// (distributed sparing: spare units hold no data and are skipped by the
  /// logical numbering, matching ScenarioSimulator and api::Array).
  explicit CompiledMapper(const SparedLayout& spared)
      : CompiledMapper(AddressMapper(spared.layout, spared.spare_pos)) {}

  [[nodiscard]] std::uint64_t data_units_per_iteration() const noexcept {
    return d_;
  }
  [[nodiscard]] std::uint32_t units_per_disk() const noexcept { return s_; }
  [[nodiscard]] std::uint32_t num_disks() const noexcept { return v_; }
  [[nodiscard]] std::uint32_t max_stripe_size() const noexcept {
    return max_stripe_;
  }

  /// Physical position of a logical data unit.
  [[nodiscard]] Physical map(std::uint64_t logical) const noexcept {
    const auto [it, r] = div_.divide(logical);
    const std::uint32_t* w = words_.data();
    return {w[data_disk_ + r], it * s_ + w[data_offset_ + r]};
  }

  /// Physical position of the parity unit protecting a logical data unit.
  /// One load from the precompiled parity columns -- no stripe
  /// indirection.
  [[nodiscard]] Physical parity_of(std::uint64_t logical) const noexcept {
    const auto [it, r] = div_.divide(logical);
    const std::uint32_t* w = words_.data();
    return {w[parity_disk_ + r], it * s_ + w[parity_offset_ + r]};
  }

  /// Number of units in the stripe of a logical data unit.
  [[nodiscard]] std::uint32_t stripe_size_of(
      std::uint64_t logical) const noexcept {
    return words_[stripe_len_ + div_.divide(logical).rem];
  }

  /// Writes the stripe of a logical data unit (same order as
  /// AddressMapper::stripe_of) into `out` and returns the unit count.
  /// `out.size()` must be at least stripe_size_of(logical);
  /// max_stripe_size() bounds it for any logical.  No allocation.
  std::uint32_t stripe_of(std::uint64_t logical,
                          std::span<Physical> out) const noexcept {
    const auto [it, r] = div_.divide(logical);
    const std::uint32_t* w = words_.data();
    const std::uint32_t begin = w[stripe_begin_ + r];
    const std::uint32_t len = w[stripe_len_ + r];
    const std::uint64_t lift = it * s_;
    for (std::uint32_t i = 0; i < len; ++i) {
      out[i] = {w[unit_disk_ + begin + i], lift + w[unit_offset_ + begin + i]};
    }
    return len;
  }

  /// Resolves a whole batch of logical addresses: out[i] = map(in[i]).
  /// `out.size()` must be at least `logicals.size()`.
  void map_batch(std::span<const std::uint64_t> logicals,
                 std::span<Physical> out) const noexcept {
    const std::uint32_t* disks = words_.data() + data_disk_;
    const std::uint32_t* offsets = words_.data() + data_offset_;
    for (std::size_t i = 0; i < logicals.size(); ++i) {
      const auto [it, r] = div_.divide(logicals[i]);
      out[i] = {disks[r], it * s_ + offsets[r]};
    }
  }

  /// Inverse map; kParity for parity positions.  Same contract as
  /// AddressMapper::logical_at.
  [[nodiscard]] std::uint64_t logical_at(Physical position) const;

  /// Memory footprint of the compiled tables in bytes.
  [[nodiscard]] std::uint64_t table_bytes() const noexcept {
    return words_.size() * sizeof(std::uint32_t) +
           inverse_.size() * sizeof(std::uint64_t);
  }

 private:
  std::uint32_t v_ = 0;
  std::uint32_t s_ = 0;
  std::uint64_t d_ = 0;           ///< data units per iteration
  detail::U64Divisor div_;        ///< division-free split by d_
  std::uint32_t max_stripe_ = 0;

  // Section offsets into words_ (see header comment for the table shape).
  std::size_t data_disk_ = 0;
  std::size_t data_offset_ = 0;
  std::size_t parity_disk_ = 0;
  std::size_t parity_offset_ = 0;
  std::size_t stripe_begin_ = 0;
  std::size_t stripe_len_ = 0;
  std::size_t unit_disk_ = 0;
  std::size_t unit_offset_ = 0;

  std::vector<std::uint32_t> words_;   ///< the flattened SoA table
  std::vector<std::uint64_t> inverse_; ///< disk*s+offset -> logical mod D
};

}  // namespace pdl::layout
