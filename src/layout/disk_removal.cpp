#include "layout/disk_removal.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "flow/matching.hpp"
#include "layout/ring_layout.hpp"

namespace pdl::layout {

Layout remove_one_disk(const design::RingDesign& rd, design::Elem removed) {
  const std::uint32_t v = rd.v();
  const std::uint32_t k = rd.k();
  if (removed >= v)
    throw std::invalid_argument("remove_one_disk: disk out of range");

  // Dense relabeling of survivors.
  auto relabel = [&](design::Elem d) { return d < removed ? d : d - 1; };

  Layout layout(v - 1, k * (v - 1));
  for (const RingStripeSpec& spec : ring_copy_stripes(rd, removed)) {
    std::vector<DiskId> disks;
    disks.reserve(spec.disks.size());
    for (const DiskId d : spec.disks) disks.push_back(relabel(d));
    layout.append_stripe(disks, spec.parity_pos);
  }
  return layout;
}

Layout remove_disks(const design::RingDesign& rd,
                    std::span<const design::Elem> removed) {
  const std::uint32_t v = rd.v();
  const std::uint32_t k = rd.k();
  const auto i = static_cast<std::uint32_t>(removed.size());
  if (i == 0)
    throw std::invalid_argument("remove_disks: nothing to remove");
  if (i * i > k)
    throw std::invalid_argument(
        "remove_disks: Theorem 9 requires i <= sqrt(k)");

  std::vector<bool> is_removed(v, false);
  for (const design::Elem d : removed) {
    if (d >= v) throw std::invalid_argument("remove_disks: disk out of range");
    if (is_removed[d])
      throw std::invalid_argument("remove_disks: duplicate disk");
    is_removed[d] = true;
  }

  // Dense relabeling of survivors.
  std::vector<DiskId> relabel(v, 0);
  {
    DiskId next = 0;
    for (design::Elem d = 0; d < v; ++d) {
      if (!is_removed[d]) relabel[d] = next++;
    }
  }

  // Pass 1: apply the Theorem 8 rule per block and collect orphans (blocks
  // (x, y) with x removed whose reassignment target is also removed).
  struct PendingStripe {
    std::vector<DiskId> disks;   // surviving members, original ids
    std::int64_t parity_disk;    // original id, or -1 for orphans
  };
  std::vector<PendingStripe> pending;
  pending.reserve(rd.design.blocks.size());
  std::vector<std::size_t> orphan_stripes;

  for (std::size_t bi = 0; bi < rd.design.blocks.size(); ++bi) {
    const auto& block = rd.design.blocks[bi];
    const design::Elem x = rd.block_x(bi);

    PendingStripe ps;
    ps.disks.reserve(k);
    for (const design::Elem d : block) {
      if (!is_removed[d]) ps.disks.push_back(d);
    }
    if (ps.disks.empty())
      throw std::logic_error("remove_disks: stripe fully removed");

    if (!is_removed[x]) {
      ps.parity_disk = x;
    } else if (!is_removed[block[1]]) {
      ps.parity_disk = block[1];  // Theorem 8 rule
    } else {
      ps.parity_disk = -1;  // orphan: both x and its target are gone
      orphan_stripes.push_back(pending.size());
    }
    pending.push_back(std::move(ps));
  }

  if (orphan_stripes.size() !=
      static_cast<std::size_t>(i) * (i - 1))
    throw std::logic_error("remove_disks: expected i(i-1) orphans, got " +
                           std::to_string(orphan_stripes.size()));

  // Pass 2: match orphans to distinct surviving member disks, excluding
  // disks that already received a reassigned (Theorem 8 rule) parity unit
  // beyond their quota.  Per the paper each surviving disk may take at most
  // one orphan; the matching enforces exactly that.
  std::vector<std::vector<std::uint32_t>> adjacency(orphan_stripes.size());
  for (std::size_t oi = 0; oi < orphan_stripes.size(); ++oi) {
    for (const DiskId d : pending[orphan_stripes[oi]].disks) {
      adjacency[oi].push_back(relabel[d]);
    }
  }
  const auto match =
      flow::max_bipartite_matching(adjacency, v - i);
  for (std::size_t oi = 0; oi < orphan_stripes.size(); ++oi) {
    if (match[oi] < 0)
      throw std::logic_error(
          "remove_disks: matching failed (violates Theorem 9 bound)");
  }

  // Emit the layout.
  Layout layout(v - i, k * (v - 1));
  for (std::size_t si = 0; si < pending.size(); ++si) {
    const PendingStripe& ps = pending[si];
    std::vector<DiskId> disks;
    disks.reserve(ps.disks.size());
    for (const DiskId d : ps.disks) disks.push_back(relabel[d]);

    std::uint32_t parity_pos = 0;
    if (ps.parity_disk >= 0) {
      const DiskId target = relabel[static_cast<DiskId>(ps.parity_disk)];
      const auto it = std::find(disks.begin(), disks.end(), target);
      if (it == disks.end())
        throw std::logic_error("remove_disks: parity disk not in stripe");
      parity_pos = static_cast<std::uint32_t>(it - disks.begin());
    }
    layout.append_stripe(disks, parity_pos);
  }
  // Fix up orphan parities from the matching (done after append so stripe
  // indices line up with `pending`).
  for (std::size_t oi = 0; oi < orphan_stripes.size(); ++oi) {
    const std::size_t si = orphan_stripes[oi];
    const auto target = static_cast<DiskId>(match[oi]);
    const Stripe& st = layout.stripes()[si];
    for (std::uint32_t pos = 0; pos < st.units.size(); ++pos) {
      if (st.units[pos].disk == target) {
        layout.set_parity_pos(si, pos);
        break;
      }
    }
  }
  return layout;
}

Layout removal_layout(std::uint32_t v, std::uint32_t k, std::uint32_t i) {
  const design::RingDesign rd = design::make_ring_design(v, k);
  if (i == 1) return remove_one_disk(rd, 0);
  std::vector<design::Elem> removed(i);
  std::iota(removed.begin(), removed.end(), 0);
  return remove_disks(rd, removed);
}

}  // namespace pdl::layout
