#pragma once
// Disk removal from ring-based layouts (Section 3.1, Theorems 8 and 9):
// approximately-balanced layouts for v-i disks built by deleting i disks
// from the ring-based layout for v disks and re-placing the parity units
// that lived on them.
//
// Theorem 8 (i = 1): the v-1 orphaned parity units of stripes (removed, y)
// move to disk removed + y(g_1 - g_0) -- one per surviving disk -- keeping
// parity perfectly balanced at v parity units per disk; size stays k(v-1).
//
// Theorem 9 (i <= sqrt(k)): applying the same rule per removed disk leaves
// i(i-1) parity units whose target was itself removed; a bipartite matching
// places each on a distinct surviving member disk, so every disk ends with
// v+i-1 or v+i parity units; parity overhead lands in
// [(v+i-1)/(k(v-1)), (v+i)/(k(v-1))].

#include <span>

#include "design/ring_design.hpp"
#include "layout/layout.hpp"

namespace pdl::layout {

/// Theorem 8: layout for v-1 disks from the ring design, removing `removed`.
/// Surviving disks are relabeled densely (ids above `removed` shift down).
[[nodiscard]] Layout remove_one_disk(const design::RingDesign& rd,
                                     design::Elem removed);

/// Theorem 9: layout for v-i disks, removing the given distinct disks.
/// Requires i*i <= k (the paper's i <= sqrt(k) condition, which guarantees
/// the matching exists).  Surviving disks are relabeled densely.
[[nodiscard]] Layout remove_disks(const design::RingDesign& rd,
                                  std::span<const design::Elem> removed);

/// Convenience: build the ring design for (v, k) and remove the first i
/// disks.  Result has v - i disks.
[[nodiscard]] Layout removal_layout(std::uint32_t v, std::uint32_t k,
                                    std::uint32_t i);

}  // namespace pdl::layout
