#include "layout/feasibility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "algebra/numtheory.hpp"
#include "design/catalog.hpp"
#include "design/complete_design.hpp"
#include "design/ring_design.hpp"
#include "flow/parity_assign.hpp"

namespace pdl::layout {

namespace {

std::optional<std::uint64_t> min_opt(std::optional<std::uint64_t> a,
                                     std::optional<std::uint64_t> b) {
  if (!a) return b;
  if (!b) return a;
  return std::min(*a, *b);
}

}  // namespace

Status validate_vk(std::uint32_t v, std::uint32_t k) {
  if (k < 2 || k > v)
    return Status::invalid_argument(
        "need 2 <= k <= v, got v=" + std::to_string(v) +
        " k=" + std::to_string(k));
  return OkStatus();
}

std::optional<std::uint64_t> FeasibilitySummary::best_approximate() const {
  return min_opt(min_opt(ring_layout, removal), stairway);
}

std::optional<std::uint64_t> FeasibilitySummary::best_exact() const {
  return min_opt(min_opt(bibd_hg, bibd_flow),
                 min_opt(bibd_perfect, complete_hg));
}

std::optional<std::uint64_t> stairway_size(std::uint32_t q, std::uint32_t v,
                                           std::uint32_t k) {
  if (v <= q || q < 2 || k < 2 || k > q) return std::nullopt;
  const std::uint32_t W = v - q;
  for (std::uint32_t c = std::max<std::uint32_t>(2, v / (W + 1)); c <= v / W;
       ++c) {
    const std::int64_t w =
        static_cast<std::int64_t>(v) - static_cast<std::int64_t>(c) * W;
    if (w < 0 || w >= c) continue;
    return static_cast<std::uint64_t>(k) * (c - 1) * (q - 1);
  }
  return std::nullopt;
}

Result<FeasibilitySummary> summarize_feasibility(std::uint32_t v,
                                                 std::uint32_t k) {
  if (Status domain = validate_vk(v, k); !domain.ok()) return domain;
  FeasibilitySummary out;
  out.v = v;
  out.k = k;

  // Complete design route.
  const std::uint64_t complete_r = design::binomial(v - 1, k - 1);
  if (complete_r != std::numeric_limits<std::uint64_t>::max())
    out.complete_hg = k * complete_r;

  // Best catalog BIBD routes.
  if (const auto choice = design::best_method(v, k)) {
    out.bibd_hg = static_cast<std::uint64_t>(k) * choice->params.r;
    out.bibd_flow = choice->params.r;
    const std::uint64_t copies =
        flow::copies_for_perfect_balance(choice->params.b, v);
    out.bibd_perfect = copies * choice->params.r;
  }

  // Ring-based layout (needs k <= M(v)).
  if (design::ring_design_exists(v, k))
    out.ring_layout = static_cast<std::uint64_t>(k) * (v - 1);

  // Removal from the nearest larger base with a ring design.
  const auto max_i = static_cast<std::uint32_t>(std::sqrt(double(k)));
  for (std::uint32_t i = 1; i <= max_i; ++i) {
    const std::uint32_t q = v + i;
    if (design::ring_design_exists(q, k)) {
      out.removal = static_cast<std::uint64_t>(k) * (q - 1);
      out.removal_q = q;
      break;  // smallest q gives the smallest size
    }
  }

  // Stairway from the best prime-power-like base q < v.
  for (std::uint32_t q = k; q < v; ++q) {
    if (!design::ring_design_exists(q, k)) continue;
    if (const auto size = stairway_size(q, v, k)) {
      if (!out.stairway || *size < *out.stairway) {
        out.stairway = size;
        out.stairway_q = q;
      }
    }
  }
  return out;
}

Result<CoverageResult> stairway_coverage(std::uint32_t v, std::uint32_t k) {
  if (Status domain = validate_vk(v, k); !domain.ok()) return domain;
  CoverageResult result;

  // Exact: v itself supports a ring layout.
  if (design::ring_design_exists(v, k)) {
    result.covered = true;
    result.route = "exact";
    result.q = v;
    result.size = static_cast<std::uint64_t>(k) * (v - 1);
    return result;
  }
  // Removal from q = v + i.
  const auto max_i = static_cast<std::uint32_t>(std::sqrt(double(k)));
  for (std::uint32_t i = 1; i <= max_i; ++i) {
    if (design::ring_design_exists(v + i, k)) {
      result.covered = true;
      result.route = "removal";
      result.q = v + i;
      result.size = static_cast<std::uint64_t>(k) * (v + i - 1);
      return result;
    }
  }
  // Stairway from the best q < v (the paper's Section 3.2 claim restricts
  // to prime powers q; ring_design_exists(q, k) is the slight
  // generalization k <= M(q) and subsumes prime powers).
  std::optional<std::uint64_t> best;
  std::uint32_t best_q = 0;
  for (std::uint32_t q = k; q < v; ++q) {
    if (!design::ring_design_exists(q, k)) continue;
    if (const auto size = stairway_size(q, v, k)) {
      if (!best || *size < *best) {
        best = size;
        best_q = q;
      }
    }
  }
  if (best) {
    result.covered = true;
    result.route = "stairway";
    result.q = best_q;
    result.size = *best;
  }
  return result;
}

}  // namespace pdl::layout
