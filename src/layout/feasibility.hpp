#pragma once
// Feasibility enumeration (Condition 4): which (v, k) pairs admit layouts
// of size at most a given unit budget, under each construction in this
// library.  All computations here are closed-form -- no layout is actually
// materialized -- so sweeps to v = 10,000 (the paper's Section 3.2 coverage
// computation) are cheap.

#include <cstdint>
#include <optional>
#include <string>

#include "core/status.hpp"

namespace pdl::layout {

/// The paper's default feasibility budget: about 10,000 units per disk.
inline constexpr std::uint64_t kDefaultUnitBudget = 10'000;

/// Layout sizes (units per disk) achievable at (v, k) by each route;
/// nullopt when the route does not apply.  Sizes are exact closed forms.
struct FeasibilitySummary {
  std::uint32_t v = 0;
  std::uint32_t k = 0;

  /// Complete design + Holland-Gibson k-copy parity: k * C(v-1, k-1).
  std::optional<std::uint64_t> complete_hg;
  /// Best catalog BIBD + Holland-Gibson k-copy parity: k * r.
  std::optional<std::uint64_t> bibd_hg;
  /// Best catalog BIBD + flow-balanced parity, single copy (Section 4): r.
  std::optional<std::uint64_t> bibd_flow;
  /// Best catalog BIBD + flow parity, lcm(b,v)/b copies (perfect balance).
  std::optional<std::uint64_t> bibd_perfect;
  /// Ring-based layout (Section 3.1): k(v-1), requires k <= M(v).
  std::optional<std::uint64_t> ring_layout;
  /// Disk removal (Thms 8/9) from the closest q = v+i, i^2 <= k: k(q-1).
  std::optional<std::uint64_t> removal;
  std::uint32_t removal_q = 0;  ///< the q used (0 if none)
  /// Stairway (Thms 10-12) from the best q < v: min over q of k(c-1)(q-1).
  std::optional<std::uint64_t> stairway;
  std::uint32_t stairway_q = 0;  ///< the q achieving the min (0 if none)

  /// Smallest size over all approximate routes (ring/removal/stairway).
  [[nodiscard]] std::optional<std::uint64_t> best_approximate() const;
  /// Smallest size over all exact-BIBD routes.
  [[nodiscard]] std::optional<std::uint64_t> best_exact() const;
};

/// The shared (v, k) domain check used by every spec-taking front door:
/// kInvalidArgument (with a uniform message) unless 2 <= k <= v.
[[nodiscard]] Status validate_vk(std::uint32_t v, std::uint32_t k);

/// Closed-form stairway feasibility: the size of the minimal-c plan for
/// q -> v with stripe size k, or nullopt (no (c, w) satisfying (8), (9)).
[[nodiscard]] std::optional<std::uint64_t> stairway_size(std::uint32_t q,
                                                         std::uint32_t v,
                                                         std::uint32_t k);

/// Computes every route's size at (v, k).  kInvalidArgument unless
/// 2 <= k <= v.
[[nodiscard]] Result<FeasibilitySummary> summarize_feasibility(
    std::uint32_t v, std::uint32_t k);

/// Section 3.2 coverage claim: true iff some prime power q <= v yields a
/// layout for (v, k) -- exactly (q == v), by removal (q in (v, v+sqrt(k)]),
/// or by stairway (q < v with feasible (c, w)).  The paper reports this
/// holds for every v <= 10,000.
struct CoverageResult {
  bool covered = false;
  std::string route;           ///< "exact", "removal", or "stairway"
  std::uint32_t q = 0;
  std::uint64_t size = 0;      ///< layout size of the found route
};
/// kInvalidArgument unless 2 <= k <= v; an in-domain spec with no route is
/// an OK result with covered == false.
[[nodiscard]] Result<CoverageResult> stairway_coverage(std::uint32_t v,
                                                       std::uint32_t k);

}  // namespace pdl::layout
