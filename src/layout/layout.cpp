#include "layout/layout.hpp"

#include <stdexcept>
#include <unordered_set>

namespace pdl::layout {

Layout::Layout(std::uint32_t num_disks, std::uint32_t units_per_disk)
    : v_(num_disks), s_(units_per_disk) {
  if (num_disks < 2)
    throw std::invalid_argument("Layout: need at least 2 disks");
  if (units_per_disk == 0)
    throw std::invalid_argument("Layout: need at least 1 unit per disk");
  occupancy_.assign(v_, std::vector<Occupant>(s_));
  next_free_.assign(v_, 0);
}

std::size_t Layout::append_stripe(const std::vector<DiskId>& disks,
                                  std::uint32_t parity_pos) {
  std::vector<StripeUnit> units;
  units.reserve(disks.size());
  for (const DiskId d : disks) {
    if (d >= v_) throw std::invalid_argument("append_stripe: disk out of range");
    if (next_free_[d] >= s_)
      throw std::invalid_argument("append_stripe: disk " + std::to_string(d) +
                                  " is full");
    units.push_back({d, next_free_[d]});
  }
  return add_stripe_at(std::move(units), parity_pos);
}

std::size_t Layout::add_stripe_at(std::vector<StripeUnit> units,
                                  std::uint32_t parity_pos) {
  if (units.empty())
    throw std::invalid_argument("add_stripe_at: empty stripe");
  if (parity_pos >= units.size())
    throw std::invalid_argument("add_stripe_at: parity_pos out of range");
  // Validate before mutating anything (strong exception safety).
  std::unordered_set<DiskId> seen;
  for (const StripeUnit& u : units) {
    if (u.disk >= v_ || u.offset >= s_)
      throw std::invalid_argument("add_stripe_at: unit out of range");
    if (!seen.insert(u.disk).second)
      throw std::invalid_argument(
          "add_stripe_at: stripe visits a disk twice (Condition 1)");
    if (occupancy_[u.disk][u.offset].used())
      throw std::invalid_argument("add_stripe_at: slot already occupied");
  }
  const auto index = static_cast<std::uint32_t>(stripes_.size());
  for (std::size_t pos = 0; pos < units.size(); ++pos) {
    const StripeUnit& u = units[pos];
    occupancy_[u.disk][u.offset] = {index, static_cast<std::uint32_t>(pos)};
    if (u.offset >= next_free_[u.disk]) next_free_[u.disk] = u.offset + 1;
  }
  stripes_.push_back({std::move(units), parity_pos});
  return index;
}

void Layout::set_parity_pos(std::size_t stripe, std::uint32_t parity_pos) {
  if (stripe >= stripes_.size())
    throw std::invalid_argument("set_parity_pos: stripe out of range");
  if (parity_pos >= stripes_[stripe].units.size())
    throw std::invalid_argument("set_parity_pos: position out of range");
  stripes_[stripe].parity_pos = parity_pos;
}

const Occupant& Layout::at(DiskId disk, std::uint32_t offset) const {
  if (disk >= v_ || offset >= s_)
    throw std::invalid_argument("Layout::at: out of range");
  return occupancy_[disk][offset];
}

std::vector<std::uint32_t> Layout::parity_units_per_disk() const {
  std::vector<std::uint32_t> counts(v_, 0);
  for (const Stripe& s : stripes_) ++counts[s.parity_unit().disk];
  return counts;
}

std::vector<std::string> Layout::validate(bool allow_holes) const {
  std::vector<std::string> errors;
  auto fail = [&](std::string msg) {
    if (errors.size() < 16) errors.push_back(std::move(msg));
  };

  // Occupancy must exactly mirror the stripe table.
  std::uint64_t used_slots = 0;
  for (DiskId d = 0; d < v_; ++d) {
    for (std::uint32_t o = 0; o < s_; ++o) {
      const Occupant& occ = occupancy_[d][o];
      if (!occ.used()) continue;
      ++used_slots;
      if (occ.stripe >= stripes_.size()) {
        fail("occupancy references missing stripe");
        continue;
      }
      const Stripe& st = stripes_[occ.stripe];
      if (occ.pos >= st.units.size() || st.units[occ.pos].disk != d ||
          st.units[occ.pos].offset != o) {
        fail("occupancy/stripe mismatch at disk " + std::to_string(d) +
             " offset " + std::to_string(o));
      }
    }
  }

  std::uint64_t stripe_units = 0;
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    const Stripe& st = stripes_[i];
    stripe_units += st.units.size();
    if (st.parity_pos >= st.units.size())
      fail("stripe " + std::to_string(i) + ": parity position out of range");
    std::unordered_set<DiskId> seen;
    for (const StripeUnit& u : st.units) {
      if (u.disk >= v_ || u.offset >= s_) {
        fail("stripe " + std::to_string(i) + ": unit out of range");
        continue;
      }
      if (!seen.insert(u.disk).second)
        fail("stripe " + std::to_string(i) +
             " visits a disk twice (Condition 1)");
    }
  }
  if (stripe_units != used_slots)
    fail("stripe units (" + std::to_string(stripe_units) +
         ") != occupied slots (" + std::to_string(used_slots) + ")");
  if (!allow_holes &&
      used_slots != static_cast<std::uint64_t>(v_) * s_)
    fail("layout has holes: " + std::to_string(used_slots) + " of " +
         std::to_string(static_cast<std::uint64_t>(v_) * s_) +
         " slots used");
  return errors;
}

}  // namespace pdl::layout
