#pragma once
// The data-layout container: v disks, each divided into `size` units,
// partitioned into parity stripes.  This is the object the paper's four
// conditions are evaluated on (Section 1):
//   1. each stripe touches a disk at most once,
//   2. parity units are spread evenly over disks,
//   3. reconstruction workload is spread evenly over disk pairs,
//   4. the mapping table (proportional to v * size) is small.

#include <cstdint>
#include <string>
#include <vector>

namespace pdl::layout {

using DiskId = std::uint32_t;

/// One unit of one stripe: a (disk, offset) position in the array.
struct StripeUnit {
  DiskId disk = 0;
  std::uint32_t offset = 0;

  friend bool operator==(const StripeUnit&, const StripeUnit&) = default;
};

/// A parity stripe: its units (on distinct disks) and which of them holds
/// parity.
struct Stripe {
  std::vector<StripeUnit> units;
  std::uint32_t parity_pos = 0;  ///< index into units

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(units.size());
  }
  [[nodiscard]] const StripeUnit& parity_unit() const {
    return units[parity_pos];
  }
};

/// What occupies a given (disk, offset) slot.
struct Occupant {
  static constexpr std::uint32_t kUnused = 0xffffffffu;
  std::uint32_t stripe = kUnused;  ///< stripe index, or kUnused
  std::uint32_t pos = 0;           ///< position within the stripe
  [[nodiscard]] bool used() const noexcept { return stripe != kUnused; }
};

/// A complete data layout.  Build it by appending stripes; offsets can be
/// assigned automatically (next free slot per disk) or explicitly.
class Layout {
 public:
  /// An array of num_disks disks with units_per_disk units each.
  Layout(std::uint32_t num_disks, std::uint32_t units_per_disk);

  [[nodiscard]] std::uint32_t num_disks() const noexcept { return v_; }

  /// The layout size s: units per disk (the Condition 4 cost driver).
  [[nodiscard]] std::uint32_t units_per_disk() const noexcept { return s_; }

  [[nodiscard]] const std::vector<Stripe>& stripes() const noexcept {
    return stripes_;
  }
  [[nodiscard]] std::size_t num_stripes() const noexcept {
    return stripes_.size();
  }

  /// Appends a stripe whose units go to the next free offset of each listed
  /// disk.  Disks must be distinct.  Returns the stripe index.
  std::size_t append_stripe(const std::vector<DiskId>& disks,
                            std::uint32_t parity_pos);

  /// Appends a stripe with fully explicit unit positions; every position
  /// must be free.  Returns the stripe index.
  std::size_t add_stripe_at(std::vector<StripeUnit> units,
                            std::uint32_t parity_pos);

  /// Re-designates the parity unit of a stripe.
  void set_parity_pos(std::size_t stripe, std::uint32_t parity_pos);

  /// The occupant of a slot.
  [[nodiscard]] const Occupant& at(DiskId disk, std::uint32_t offset) const;

  /// Number of parity units currently on each disk.
  [[nodiscard]] std::vector<std::uint32_t> parity_units_per_disk() const;

  /// Structural validation: unit positions in range, stripes hit each disk
  /// at most once (Condition 1), occupancy is consistent, and (unless
  /// allow_holes) every slot of every disk is covered exactly once.
  /// Returns human-readable violations; empty means valid.
  [[nodiscard]] std::vector<std::string> validate(
      bool allow_holes = false) const;

 private:
  std::uint32_t v_;
  std::uint32_t s_;
  std::vector<Stripe> stripes_;
  std::vector<std::vector<Occupant>> occupancy_;  // [disk][offset]
  std::vector<std::uint32_t> next_free_;          // per disk
};

}  // namespace pdl::layout
