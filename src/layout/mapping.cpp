#include "layout/mapping.hpp"

#include <stdexcept>

namespace pdl::layout {

AddressMapper::AddressMapper(const Layout& layout)
    : AddressMapper(layout, {}) {}

AddressMapper::AddressMapper(const Layout& layout,
                             const std::vector<std::uint32_t>& spare_pos)
    : AddressMapper(layout, spare_pos, {}) {}

AddressMapper::AddressMapper(const Layout& layout,
                             const std::vector<std::uint32_t>& spare_pos,
                             const std::vector<std::uint64_t>& parity_mask)
    : v_(layout.num_disks()),
      s_(layout.units_per_disk()),
      stripes_(layout.stripes()),
      spare_pos_(spare_pos),
      parity_mask_(parity_mask) {
  const auto errors = layout.validate();
  if (!errors.empty())
    throw std::invalid_argument("AddressMapper: invalid layout: " +
                                errors.front());
  if (!spare_pos_.empty() && spare_pos_.size() != stripes_.size())
    throw std::invalid_argument("AddressMapper: spare_pos size mismatch");
  if (!parity_mask_.empty() && parity_mask_.size() != stripes_.size())
    throw std::invalid_argument("AddressMapper: parity_mask size mismatch");
  // Materialize the single-parity mask when none was supplied, so every
  // consumer (CompiledMapper, api::Array) can rely on parity_masks().
  if (parity_mask_.empty()) {
    parity_mask_.reserve(stripes_.size());
    for (const Stripe& st : stripes_)
      parity_mask_.push_back(1ull << st.parity_pos);
  }

  inverse_.assign(static_cast<std::size_t>(v_) * s_, kParity);
  // Logical data units are numbered stripe-major, skipping parity units
  // (and, under distributed sparing, spare units), so that consecutive
  // logical units land in the same stripe (good for large sequential
  // writes, cf. the Large Write Optimization discussion).
  for (std::uint32_t si = 0; si < stripes_.size(); ++si) {
    const Stripe& st = stripes_[si];
    if (!spare_pos_.empty() &&
        (spare_pos_[si] >= st.units.size() || spare_pos_[si] == st.parity_pos))
      throw std::invalid_argument("AddressMapper: invalid spare position");
    const std::uint64_t mask = parity_mask_[si];
    if ((mask & (1ull << st.parity_pos)) == 0)
      throw std::invalid_argument(
          "AddressMapper: parity_mask must include the primary parity");
    if (st.units.size() < 64 && (mask >> st.units.size()) != 0)
      throw std::invalid_argument(
          "AddressMapper: parity_mask names an out-of-range position");
    if (!spare_pos_.empty() && (mask & (1ull << spare_pos_[si])) != 0)
      throw std::invalid_argument(
          "AddressMapper: spare position masked as parity");
    for (std::uint32_t pos = 0; pos < st.units.size(); ++pos) {
      const StripeUnit& u = st.units[pos];
      if (!spare_pos_.empty() && pos == spare_pos_[si]) {
        inverse_[static_cast<std::size_t>(u.disk) * s_ + u.offset] = kSpare;
        continue;
      }
      if ((mask >> pos) & 1) continue;
      inverse_[static_cast<std::size_t>(u.disk) * s_ + u.offset] =
          data_units_.size();
      data_units_.push_back({u.disk, u.offset, si});
    }
  }
}

AddressMapper::Physical AddressMapper::map(std::uint64_t logical) const {
  const std::uint64_t d = data_units_per_iteration();
  const std::uint64_t iteration = logical / d;
  const TableEntry& e = data_units_[logical % d];
  return {e.disk, iteration * s_ + e.offset};
}

AddressMapper::Physical AddressMapper::parity_of(std::uint64_t logical) const {
  const std::uint64_t d = data_units_per_iteration();
  const std::uint64_t iteration = logical / d;
  const TableEntry& e = data_units_[logical % d];
  const StripeUnit& p = stripes_[e.stripe].parity_unit();
  return {p.disk, iteration * s_ + p.offset};
}

std::vector<AddressMapper::Physical> AddressMapper::stripe_of(
    std::uint64_t logical) const {
  const std::uint64_t d = data_units_per_iteration();
  const std::uint64_t iteration = logical / d;
  const TableEntry& e = data_units_[logical % d];
  std::vector<Physical> result;
  result.reserve(stripes_[e.stripe].units.size());
  for (const StripeUnit& u : stripes_[e.stripe].units) {
    result.push_back({u.disk, iteration * s_ + u.offset});
  }
  return result;
}

std::uint64_t AddressMapper::logical_at(Physical position) const {
  if (position.disk >= v_)
    throw std::invalid_argument("logical_at: disk out of range");
  const std::uint64_t iteration = position.offset / s_;
  const std::uint64_t within = position.offset % s_;
  const std::uint64_t base =
      inverse_[static_cast<std::size_t>(position.disk) * s_ + within];
  if (base >= kSpare) return base;  // kParity or kSpare sentinel
  return iteration * data_units_per_iteration() + base;
}

std::uint64_t AddressMapper::table_bytes() const noexcept {
  std::uint64_t bytes = data_units_.size() * sizeof(TableEntry) +
                        inverse_.size() * sizeof(std::uint64_t) +
                        parity_mask_.size() * sizeof(std::uint64_t);
  for (const Stripe& st : stripes_) {
    bytes += st.units.size() * sizeof(StripeUnit) + sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace pdl::layout
