#pragma once
// Logical-to-physical address mapping (Condition 4): one table lookup plus
// a constant number of arithmetic operations.  The layout's stripe table
// covers one "iteration" of units_per_disk() units per disk; larger disks
// are covered by repeating the layout vertically, exactly as the paper
// prescribes for arrays of larger disks.

#include <cstdint>
#include <vector>

#include "layout/layout.hpp"

namespace pdl::layout {

/// Maps logical data-unit numbers to physical (disk, offset) positions and
/// back, and locates parity.  Built once from a Layout; lookups are O(1).
class AddressMapper {
 public:
  explicit AddressMapper(const Layout& layout);

  /// A mapper whose logical address space additionally skips each stripe's
  /// designated spare unit (distributed sparing: spare units hold no data).
  /// spare_pos[s] must be a valid non-parity position of stripe s.  This is
  /// the numbering ScenarioSimulator and api::Array use in sparing mode.
  AddressMapper(const Layout& layout,
                const std::vector<std::uint32_t>& spare_pos);

  /// A mapper for multi-parity codecs: parity_mask[s] is a bit mask over
  /// stripe s's positions naming EVERY parity unit (it must include the
  /// layout's parity_pos, the primary parity P).  All masked positions are
  /// excluded from the logical data numbering and report kParity in the
  /// inverse map; parity_of() still answers with the primary parity.
  /// spare_pos may be empty (no distributed sparing); a spare position
  /// must not be masked as parity.
  AddressMapper(const Layout& layout,
                const std::vector<std::uint32_t>& spare_pos,
                const std::vector<std::uint64_t>& parity_mask);

  /// A physical position on an arbitrarily large disk.
  struct Physical {
    DiskId disk = 0;
    std::uint64_t offset = 0;

    friend bool operator==(const Physical&, const Physical&) = default;
  };

  /// Data units per layout iteration (total units minus parity units).
  [[nodiscard]] std::uint64_t data_units_per_iteration() const noexcept {
    return data_units_.size();
  }

  /// Total units per disk per iteration (the layout size s).
  [[nodiscard]] std::uint32_t units_per_disk() const noexcept { return s_; }

  [[nodiscard]] std::uint32_t num_disks() const noexcept { return v_; }

  /// Physical position of a logical data unit.
  [[nodiscard]] Physical map(std::uint64_t logical) const;

  /// Physical position of the parity unit protecting a logical data unit.
  [[nodiscard]] Physical parity_of(std::uint64_t logical) const;

  /// All physical positions in the stripe of a logical data unit (the units
  /// to read for degraded-mode reconstruction of one of them).
  [[nodiscard]] std::vector<Physical> stripe_of(std::uint64_t logical) const;

  /// Inverse map: the logical data unit at a physical position, or
  /// kParity if the position holds parity, or kSpare if it holds a
  /// (spare-aware mapper only) spare unit.
  static constexpr std::uint64_t kParity = ~0ull;
  static constexpr std::uint64_t kSpare = ~0ull - 1;
  [[nodiscard]] std::uint64_t logical_at(Physical position) const;

  /// The spare designation this mapper skips (empty for plain mappers).
  [[nodiscard]] const std::vector<std::uint32_t>& spare_positions()
      const noexcept {
    return spare_pos_;
  }

  /// Per-stripe bit mask of every parity position (always materialized:
  /// single-parity mappers report one bit at each stripe's parity_pos).
  /// CompiledMapper consumes this so the two numberings stay in lockstep.
  [[nodiscard]] const std::vector<std::uint64_t>& parity_masks()
      const noexcept {
    return parity_mask_;
  }

  /// Memory footprint of the lookup tables in bytes (Condition 4 metric).
  [[nodiscard]] std::uint64_t table_bytes() const noexcept;

  /// The stripe table the mapper was built from, in layout order.
  [[nodiscard]] const std::vector<Stripe>& stripes() const noexcept {
    return stripes_;
  }

 private:
  struct TableEntry {
    DiskId disk;
    std::uint32_t offset;      // within one iteration
    std::uint32_t stripe;      // stripe index within the layout
  };
  std::uint32_t v_;
  std::uint32_t s_;
  std::vector<TableEntry> data_units_;       // logical (mod D) -> position
  std::vector<std::uint64_t> inverse_;       // disk*s+offset -> logical mod D
                                             // or kParity / kSpare
  std::vector<Stripe> stripes_;              // copy of the stripe table
  std::vector<std::uint32_t> spare_pos_;     // empty unless spare-aware
  std::vector<std::uint64_t> parity_mask_;   // parity bits per stripe
};

}  // namespace pdl::layout
