#include "layout/metrics.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace pdl::layout {

std::vector<std::uint32_t> reconstruction_matrix(const Layout& layout) {
  const std::uint32_t v = layout.num_disks();
  std::vector<std::uint32_t> matrix(static_cast<std::size_t>(v) * v, 0);
  for (const Stripe& stripe : layout.stripes()) {
    for (const StripeUnit& a : stripe.units) {
      for (const StripeUnit& b : stripe.units) {
        if (a.disk != b.disk)
          ++matrix[static_cast<std::size_t>(a.disk) * v + b.disk];
      }
    }
  }
  return matrix;
}

LayoutMetrics compute_metrics(const Layout& layout) {
  LayoutMetrics m;
  m.num_disks = layout.num_disks();
  m.units_per_disk = layout.units_per_disk();
  m.num_stripes = layout.num_stripes();

  m.min_stripe_size = std::numeric_limits<std::uint32_t>::max();
  for (const Stripe& s : layout.stripes()) {
    m.min_stripe_size = std::min(m.min_stripe_size, s.size());
    m.max_stripe_size = std::max(m.max_stripe_size, s.size());
  }
  if (layout.num_stripes() == 0) m.min_stripe_size = 0;

  const auto parity = layout.parity_units_per_disk();
  m.min_parity_units = *std::min_element(parity.begin(), parity.end());
  m.max_parity_units = *std::max_element(parity.begin(), parity.end());
  m.min_parity_overhead =
      static_cast<double>(m.min_parity_units) / m.units_per_disk;
  m.max_parity_overhead =
      static_cast<double>(m.max_parity_units) / m.units_per_disk;

  const auto matrix = reconstruction_matrix(layout);
  m.min_recon_units = std::numeric_limits<std::uint32_t>::max();
  const std::uint32_t v = m.num_disks;
  for (std::uint32_t f = 0; f < v; ++f) {
    for (std::uint32_t d = 0; d < v; ++d) {
      if (f == d) continue;
      const std::uint32_t c = matrix[static_cast<std::size_t>(f) * v + d];
      m.min_recon_units = std::min(m.min_recon_units, c);
      m.max_recon_units = std::max(m.max_recon_units, c);
    }
  }
  if (v < 2) m.min_recon_units = 0;
  m.min_recon_workload =
      static_cast<double>(m.min_recon_units) / m.units_per_disk;
  m.max_recon_workload =
      static_cast<double>(m.max_recon_units) / m.units_per_disk;
  return m;
}

std::string LayoutMetrics::to_string() const {
  std::ostringstream os;
  os << "v=" << num_disks << " size=" << units_per_disk
     << " stripes=" << num_stripes << " k=[" << min_stripe_size << ","
     << max_stripe_size << "]"
     << " parity/disk=[" << min_parity_units << "," << max_parity_units << "]"
     << " overhead=[" << min_parity_overhead << "," << max_parity_overhead
     << "]"
     << " recon=[" << min_recon_workload << "," << max_recon_workload << "]";
  return os.str();
}

std::string render_layout(const Layout& layout) {
  std::ostringstream os;
  const std::uint32_t v = layout.num_disks();
  const std::uint32_t s = layout.units_per_disk();

  // Column width from the largest stripe id.
  const std::size_t digits =
      std::to_string(std::max<std::size_t>(layout.num_stripes(), 1) - 1)
          .size();
  const std::size_t w = digits + 3;  // "S<id>.D"

  auto pad = [&](std::string cell) {
    cell.resize(std::max(cell.size(), w), ' ');
    return cell;
  };

  os << pad("") << " ";
  for (DiskId d = 0; d < v; ++d) os << pad("disk" + std::to_string(d)) << " ";
  os << "\n";
  for (std::uint32_t o = 0; o < s; ++o) {
    std::string row = "u";
    row += std::to_string(o);
    os << pad(std::move(row)) << " ";
    for (DiskId d = 0; d < v; ++d) {
      const Occupant& occ = layout.at(d, o);
      if (!occ.used()) {
        os << pad("-") << " ";
        continue;
      }
      const Stripe& st = layout.stripes()[occ.stripe];
      std::string cell = "S";
      cell += std::to_string(occ.stripe);
      cell += st.parity_pos == occ.pos ? ".P" : ".D";
      os << pad(std::move(cell)) << " ";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pdl::layout
