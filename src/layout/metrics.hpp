#pragma once
// Quality metrics for data layouts: the measures the paper attaches to
// Conditions 2 (parity-overhead balance), 3 (reconstruction-workload
// balance) and 4 (mapping table size).

#include <cstdint>
#include <string>
#include <vector>

#include "layout/layout.hpp"

namespace pdl::layout {

/// Quality report for a layout.  Fractions are exact integer counts paired
/// with the denominators the paper uses (units per disk).
struct LayoutMetrics {
  std::uint32_t num_disks = 0;
  std::uint32_t units_per_disk = 0;   ///< layout size s (Condition 4 metric)
  std::uint64_t num_stripes = 0;

  std::uint32_t min_stripe_size = 0;
  std::uint32_t max_stripe_size = 0;

  // Condition 2: parity units per disk, and overhead = count / s.
  std::uint32_t min_parity_units = 0;
  std::uint32_t max_parity_units = 0;
  double min_parity_overhead = 0.0;
  double max_parity_overhead = 0.0;

  // Condition 3: over ordered pairs (failed, survivor), the number of units
  // of the survivor that reconstruction of the failed disk reads
  // (= stripes crossing both), and the fraction = count / s.
  std::uint32_t min_recon_units = 0;
  std::uint32_t max_recon_units = 0;
  double min_recon_workload = 0.0;
  double max_recon_workload = 0.0;

  /// Lookup-table entries for the mapping (Condition 4): v * s slots.
  [[nodiscard]] std::uint64_t table_entries() const noexcept {
    return static_cast<std::uint64_t>(num_disks) * units_per_disk;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Computes all metrics.  O(v^2 + total stripe units) time, O(v^2) memory.
[[nodiscard]] LayoutMetrics compute_metrics(const Layout& layout);

/// The full (failed, survivor) reconstruction matrix: entry [f*v + d] is the
/// number of units read from disk d when disk f fails (0 on the diagonal).
[[nodiscard]] std::vector<std::uint32_t> reconstruction_matrix(
    const Layout& layout);

/// Renders small layouts as an ASCII grid (disks as columns, offsets as
/// rows; entries "S<id>.D"/"S<id>.P" for data/parity), as in the paper's
/// Figures 2 and 3.
[[nodiscard]] std::string render_layout(const Layout& layout);

}  // namespace pdl::layout
