#include "layout/migration.hpp"

#include <algorithm>
#include <stdexcept>

#include "layout/mapping.hpp"

namespace pdl::layout {

MigrationPlan plan_migration(const Layout& from, const Layout& to) {
  if (to.num_disks() < from.num_disks())
    throw std::invalid_argument(
        "plan_migration: target must not shrink the array");
  const AddressMapper mapper_from(from);
  const AddressMapper mapper_to(to);

  MigrationPlan plan;
  plan.writes_per_disk.assign(to.num_disks(), 0);
  plan.compared_units = std::min(mapper_from.data_units_per_iteration(),
                                 mapper_to.data_units_per_iteration());
  for (std::uint64_t logical = 0; logical < plan.compared_units; ++logical) {
    const auto a = mapper_from.map(logical);
    const auto b = mapper_to.map(logical);
    if (a.disk != b.disk || a.offset != b.offset) {
      ++plan.moved_units;
      ++plan.writes_per_disk[b.disk];
    }
  }
  return plan;
}

}  // namespace pdl::layout
