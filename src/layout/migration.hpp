#pragma once
// Extendible layouts (Section 5 open problem): when disks are added to an
// array, how much existing data must move?  We quantify reconfiguration
// cost as the fraction of logical data units whose physical location
// differs between the old and new layouts, which is exactly the data an
// online migration must copy.

#include <cstdint>
#include <vector>

#include "layout/layout.hpp"

namespace pdl::layout {

/// Cost of migrating from one layout to another.
struct MigrationPlan {
  std::uint64_t compared_units = 0;  ///< logical data units compared
  std::uint64_t moved_units = 0;     ///< units whose (disk, offset) changed
  /// Units that must be WRITTEN to each destination disk during migration
  /// (new-layout disks; includes data landing on the added disks).
  std::vector<std::uint64_t> writes_per_disk;

  [[nodiscard]] double moved_fraction() const {
    return compared_units == 0
               ? 0.0
               : static_cast<double>(moved_units) /
                     static_cast<double>(compared_units);
  }
};

/// Compares the physical placement of the common prefix of logical data
/// units under both layouts (over the first iteration of the smaller
/// mapping).  `to` must have at least as many disks as `from`.
[[nodiscard]] MigrationPlan plan_migration(const Layout& from,
                                           const Layout& to);

}  // namespace pdl::layout
