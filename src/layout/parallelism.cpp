#include "layout/parallelism.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "layout/mapping.hpp"

namespace pdl::layout {

double large_write_contiguity(const Layout& layout) {
  const AddressMapper mapper(layout);
  // Logical numbers are assigned stripe-major, so stripe s's data units
  // are contiguous iff the mapper visits stripes in order -- which it
  // does by construction.  Verify rather than assume: collect per-stripe
  // min/max logical and check max - min == count - 1.
  const std::uint64_t d = mapper.data_units_per_iteration();
  std::vector<std::uint64_t> lo(layout.num_stripes(),
                                std::numeric_limits<std::uint64_t>::max());
  std::vector<std::uint64_t> hi(layout.num_stripes(), 0);
  std::vector<std::uint64_t> count(layout.num_stripes(), 0);
  for (std::uint64_t logical = 0; logical < d; ++logical) {
    const auto phys = mapper.map(logical);
    const Occupant& occ = layout.at(phys.disk,
                                    static_cast<std::uint32_t>(phys.offset));
    lo[occ.stripe] = std::min(lo[occ.stripe], logical);
    hi[occ.stripe] = std::max(hi[occ.stripe], logical);
    ++count[occ.stripe];
  }
  std::uint64_t contiguous = 0;
  for (std::size_t s = 0; s < layout.num_stripes(); ++s) {
    if (count[s] > 0 && hi[s] - lo[s] + 1 == count[s]) ++contiguous;
  }
  return static_cast<double>(contiguous) /
         static_cast<double>(layout.num_stripes());
}

namespace {

template <typename Fold>
void for_each_window(const Layout& layout, std::uint32_t window,
                     Fold&& fold) {
  const AddressMapper mapper(layout);
  const std::uint64_t d = mapper.data_units_per_iteration();
  const std::uint32_t w = window == 0 ? layout.num_disks() : window;
  std::vector<std::uint32_t> seen(layout.num_disks(), 0);
  std::uint32_t stamp = 0;
  for (std::uint64_t start = 0; start < d; start += w) {
    ++stamp;
    std::uint32_t distinct = 0;
    for (std::uint64_t l = start; l < std::min<std::uint64_t>(start + w, d);
         ++l) {
      const auto disk = mapper.map(l).disk;
      if (seen[disk] != stamp) {
        seen[disk] = stamp;
        ++distinct;
      }
    }
    fold(distinct);
  }
}

}  // namespace

std::uint32_t min_window_parallelism(const Layout& layout,
                                     std::uint32_t window) {
  std::uint32_t min_distinct = std::numeric_limits<std::uint32_t>::max();
  for_each_window(layout, window, [&](std::uint32_t distinct) {
    min_distinct = std::min(min_distinct, distinct);
  });
  return min_distinct == std::numeric_limits<std::uint32_t>::max()
             ? 0
             : min_distinct;
}

double mean_window_parallelism(const Layout& layout, std::uint32_t window) {
  std::uint64_t total = 0, windows = 0;
  for_each_window(layout, window, [&](std::uint32_t distinct) {
    total += distinct;
    ++windows;
  });
  return windows == 0 ? 0.0
                      : static_cast<double>(total) /
                            static_cast<double>(windows);
}

}  // namespace pdl::layout
