#pragma once
// Holland & Gibson's fifth and sixth layout conditions (studied for these
// layouts by Stockmeyer [15]; the paper defers them, we measure them):
//
//  * Condition 5, Large Write Optimization: a logically contiguous write
//    of one stripe's worth of data should cover whole stripes, so parity
//    can be computed from the new data alone (no read-modify-write).
//  * Condition 6, Maximal Parallelism: a read of v contiguous data units
//    should engage all v disks.
//
// Both depend on the logical numbering the AddressMapper induces
// (stripe-major, parity skipped).

#include <cstdint>

#include "layout/layout.hpp"

namespace pdl::layout {

/// Condition 5 metric: the fraction of stripes whose data units occupy a
/// contiguous logical address range (1.0 = every full-stripe write avoids
/// read-modify-write).
[[nodiscard]] double large_write_contiguity(const Layout& layout);

/// Condition 6 metric: the minimum number of distinct disks touched by any
/// aligned window of `window` consecutive logical data units (window = 0
/// means v).  v is perfect; small values mean contiguous reads serialize.
[[nodiscard]] std::uint32_t min_window_parallelism(const Layout& layout,
                                                   std::uint32_t window = 0);

/// Mean over all aligned windows of the distinct-disk count (same window
/// convention); between 1 and min(window, v).
[[nodiscard]] double mean_window_parallelism(const Layout& layout,
                                             std::uint32_t window = 0);

}  // namespace pdl::layout
