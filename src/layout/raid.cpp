#include "layout/raid.hpp"

#include <numeric>
#include <stdexcept>

namespace pdl::layout {

namespace {

Layout full_stripe_layout(std::uint32_t v, std::uint32_t rows,
                          bool rotate_parity) {
  if (rows == 0) throw std::invalid_argument("need at least one row");
  Layout layout(v, rows);
  std::vector<DiskId> disks(v);
  std::iota(disks.begin(), disks.end(), 0);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t parity_pos = rotate_parity ? (v - 1 - r % v) : (v - 1);
    layout.append_stripe(disks, parity_pos);
  }
  return layout;
}

}  // namespace

Layout raid5_layout(std::uint32_t v, std::uint32_t rows) {
  return full_stripe_layout(v, rows, /*rotate_parity=*/true);
}

Layout raid4_layout(std::uint32_t v, std::uint32_t rows) {
  return full_stripe_layout(v, rows, /*rotate_parity=*/false);
}

}  // namespace pdl::layout
