#pragma once
// Classic RAID layouts used as baselines: RAID5 with rotated parity is the
// k = v extreme of parity declustering (every stripe spans the whole
// array), and RAID4 concentrates parity on one disk (the bottleneck that
// motivates Condition 2).

#include "layout/layout.hpp"

namespace pdl::layout {

/// RAID5, left-symmetric rotated parity: `rows` full-width stripes; stripe
/// r's parity is on disk (v-1 - r mod v).  With rows a multiple of v the
/// parity is perfectly balanced.  Reconstruction reads *all* of every
/// surviving disk -- the worst case parity declustering improves on.
[[nodiscard]] Layout raid5_layout(std::uint32_t v, std::uint32_t rows);

/// RAID4: all parity on the last disk.  Maximally imbalanced parity
/// (Condition 2 pathology) for ablation benches.
[[nodiscard]] Layout raid4_layout(std::uint32_t v, std::uint32_t rows);

}  // namespace pdl::layout
