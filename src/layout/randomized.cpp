#include "layout/randomized.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <random>
#include <stdexcept>

#include "flow/parity_assign.hpp"

namespace pdl::layout {

Layout randomized_layout(std::uint32_t v, std::uint32_t k,
                         std::uint32_t rounds, std::uint64_t seed) {
  if (v < 2 || k < 2 || k > v)
    throw std::invalid_argument("randomized_layout: need 2 <= k <= v");
  if (rounds == 0)
    throw std::invalid_argument("randomized_layout: rounds >= 1");
  if ((static_cast<std::uint64_t>(v) * rounds) % k != 0)
    throw std::invalid_argument(
        "randomized_layout: k must divide v * rounds");

  // One attempt: consume a shuffled queue that yields each disk exactly
  // once per round, drawing k distinct disks per stripe and deferring
  // duplicates (possible only across a round boundary).  The tail stripe
  // can get stuck if only duplicates remain; the caller retries with a
  // derived seed (vanishingly rare for k << v).
  const std::uint64_t total_stripes =
      static_cast<std::uint64_t>(v) * rounds / k;
  auto attempt_draw =
      [&](std::uint64_t attempt_seed)
      -> std::optional<std::vector<std::vector<DiskId>>> {
    std::mt19937_64 rng(attempt_seed);
    std::vector<DiskId> queue;
    std::vector<DiskId> deferred;
    std::uint32_t rounds_started = 0;
    auto refill = [&]() {
      queue.resize(v);
      std::iota(queue.begin(), queue.end(), 0);
      std::shuffle(queue.begin(), queue.end(), rng);
      ++rounds_started;  // queue is consumed from the back
    };
    refill();

    std::vector<std::vector<DiskId>> stripes;
    std::vector<bool> in_stripe(v, false);
    for (std::uint64_t s = 0; s < total_stripes; ++s) {
      std::vector<DiskId> stripe;
      stripe.reserve(k);
      while (stripe.size() < k) {
        if (queue.empty()) {
          if (rounds_started == rounds) return std::nullopt;  // stuck tail
          refill();
          // Previously deferred disks are drawn first next, keeping
          // per-round consumption exact.
          for (const DiskId d : deferred) queue.push_back(d);
          deferred.clear();
        }
        const DiskId d = queue.back();
        queue.pop_back();
        if (in_stripe[d]) {
          deferred.push_back(d);
          continue;
        }
        in_stripe[d] = true;
        stripe.push_back(d);
      }
      for (const DiskId d : deferred) queue.push_back(d);
      deferred.clear();
      for (const DiskId d : stripe) in_stripe[d] = false;
      stripes.push_back(std::move(stripe));
    }
    if (!queue.empty() || !deferred.empty()) return std::nullopt;
    return stripes;
  };

  std::optional<std::vector<std::vector<DiskId>>> drawn;
  for (std::uint64_t attempt = 0; attempt < 64 && !drawn; ++attempt) {
    drawn = attempt_draw(seed + attempt * 0x9e3779b97f4a7c15ull);
  }
  if (!drawn)
    throw std::logic_error("randomized_layout: draw failed repeatedly");
  const auto& stripes = *drawn;

  // Per-disk unit counts are exactly `rounds` by construction; place
  // stripes and balance parity with the Section 4 flow method.
  Layout layout(v, rounds);
  for (const auto& stripe : stripes) layout.append_stripe(stripe, 0);
  const auto assignment = flow::assign_parity_balanced(
      std::vector<std::vector<std::uint32_t>>(stripes.begin(), stripes.end()),
      v);
  for (std::size_t s = 0; s < layout.num_stripes(); ++s) {
    layout.set_parity_pos(s, assignment.chosen[s].front());
  }
  return layout;
}

}  // namespace pdl::layout
