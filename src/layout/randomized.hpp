#pragma once
// Randomized declustered layouts in the spirit of Merchant & Yu [10],
// which the paper's Section 5 proposes to compare against BIBD-based
// layouts: stripes are drawn from random disk permutations rather than a
// block design, and parity is then balanced independently by the
// Section 4 flow method -- exactly the decoupling of stripe partitioning
// from parity placement that the paper highlights.
//
// Construction: a shuffled queue of disk ids is consumed k at a time
// (skipping duplicates within a stripe and reshuffling when exhausted),
// so after `rounds` full passes every disk holds exactly `rounds` units.
// Reconstruction workload is then balanced only in expectation; the bench
// E19 measures its spread against the BIBD layouts' exact balance.

#include <cstdint>

#include "layout/layout.hpp"

namespace pdl::layout {

/// Builds a randomized layout on v disks with stripes of k units, where
/// every disk holds exactly `rounds` units.  Requires 2 <= k <= v and
/// k | v*rounds (so the final stripe is full); parity is assigned by the
/// flow method.  Deterministic in `seed`.
[[nodiscard]] Layout randomized_layout(std::uint32_t v, std::uint32_t k,
                                       std::uint32_t rounds,
                                       std::uint64_t seed = 1);

}  // namespace pdl::layout
