#include "layout/ring_layout.hpp"

#include <stdexcept>

namespace pdl::layout {

std::vector<RingStripeSpec> ring_copy_stripes(
    const design::RingDesign& rd, std::optional<design::Elem> removed) {
  const std::uint32_t v = rd.v();
  const std::uint32_t k = rd.k();
  if (removed && *removed >= v)
    throw std::invalid_argument("ring_copy_stripes: removed disk out of range");

  std::vector<RingStripeSpec> specs;
  specs.reserve(rd.design.blocks.size());
  for (std::size_t bi = 0; bi < rd.design.blocks.size(); ++bi) {
    const auto& block = rd.design.blocks[bi];
    const design::Elem x = rd.block_x(bi);  // tuple position 0 is disk x

    RingStripeSpec spec;
    spec.disks.reserve(k);
    // The parity disk: x, unless x was removed, in which case Theorem 8
    // reassigns it to the g_1-th element of the tuple (position 1), which
    // is distinct from x and hits each surviving disk exactly once per
    // removed disk.
    const design::Elem parity_disk =
        (removed && *removed == x) ? block[1] : x;

    for (std::uint32_t pos = 0; pos < k; ++pos) {
      if (removed && block[pos] == *removed) continue;
      if (block[pos] == parity_disk)
        spec.parity_pos = static_cast<std::uint32_t>(spec.disks.size());
      spec.disks.push_back(block[pos]);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

Layout ring_based_layout(const design::RingDesign& rd) {
  const std::uint32_t v = rd.v();
  const std::uint32_t k = rd.k();
  Layout layout(v, k * (v - 1));
  for (const RingStripeSpec& spec : ring_copy_stripes(rd)) {
    layout.append_stripe(spec.disks, spec.parity_pos);
  }
  return layout;
}

Layout ring_based_layout(std::uint32_t v, std::uint32_t k) {
  return ring_based_layout(design::make_ring_design(v, k));
}

}  // namespace pdl::layout
