#pragma once
// Ring-based layouts (opening of Section 3.1): a single copy of the
// Theorem-1 ring design in which the parity unit of the stripe for block
// (x, y) is placed on disk x.  Each disk x then carries exactly one parity
// unit per pair (x, y), y != 0, i.e. exactly v-1 parity units: parity and
// reconstruction workload are perfectly balanced with NO replication of the
// design.  Size = r = k(v-1).

#include <optional>

#include "design/ring_design.hpp"
#include "layout/layout.hpp"

namespace pdl::layout {

/// One stripe of a ring layout in "disk list + parity position" form, over
/// the original disk ids of the design.  Used both to build standalone
/// layouts and as the per-copy building block of the stairway
/// transformation (Section 3.2).
struct RingStripeSpec {
  std::vector<DiskId> disks;   ///< member disks, in tuple (generator) order
  std::uint32_t parity_pos = 0;  ///< index into disks
};

/// The stripes of a ring-based layout in canonical block order, optionally
/// with one disk removed per Theorem 8: units on the removed disk are
/// dropped, and stripes whose parity lived on it (blocks (removed, y))
/// move their parity to the tuple's g_1-th element, disk removed+y(g_1-g_0),
/// which restores perfect balance over the survivors.
[[nodiscard]] std::vector<RingStripeSpec> ring_copy_stripes(
    const design::RingDesign& rd,
    std::optional<design::Elem> removed = std::nullopt);

/// The single-copy ring-based layout for the design: v disks of k(v-1)
/// units, parity of stripe (x, y) on disk x.
[[nodiscard]] Layout ring_based_layout(const design::RingDesign& rd);

/// Convenience: ring_based_layout over the canonical ring for (v, k).
[[nodiscard]] Layout ring_based_layout(std::uint32_t v, std::uint32_t k);

}  // namespace pdl::layout
