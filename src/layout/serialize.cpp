#include "layout/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pdl::layout {

namespace {

constexpr int kFormatVersion = 1;

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument("parse_layout: line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

void write_layout(std::ostream& out, const Layout& layout) {
  out << "pdl-layout " << kFormatVersion << "\n";
  out << "disks " << layout.num_disks() << " units "
      << layout.units_per_disk() << "\n";
  out << "stripes " << layout.num_stripes() << "\n";
  for (const Stripe& st : layout.stripes()) {
    out << st.parity_pos;
    for (const StripeUnit& u : st.units) {
      out << ' ' << u.disk << ':' << u.offset;
    }
    out << "\n";
  }
}

std::string serialize_layout(const Layout& layout) {
  std::ostringstream os;
  write_layout(os, layout);
  return os.str();
}

Layout read_layout(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> std::string& {
    if (!std::getline(in, line)) parse_error(line_no + 1, "unexpected EOF");
    ++line_no;
    return line;
  };

  {
    std::istringstream header(next_line());
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "pdl-layout")
      parse_error(line_no, "expected 'pdl-layout <version>'");
    if (version != kFormatVersion)
      parse_error(line_no,
                  "unsupported format version " + std::to_string(version));
  }

  std::uint32_t v = 0, s = 0;
  {
    std::istringstream dims(next_line());
    std::string kw1, kw2;
    if (!(dims >> kw1 >> v >> kw2 >> s) || kw1 != "disks" || kw2 != "units")
      parse_error(line_no, "expected 'disks <v> units <s>'");
  }
  std::uint64_t num_stripes = 0;
  {
    std::istringstream count(next_line());
    std::string kw;
    if (!(count >> kw >> num_stripes) || kw != "stripes")
      parse_error(line_no, "expected 'stripes <n>'");
  }

  Layout layout(v, s);
  for (std::uint64_t i = 0; i < num_stripes; ++i) {
    std::istringstream row(next_line());
    std::uint32_t parity_pos = 0;
    if (!(row >> parity_pos)) parse_error(line_no, "missing parity position");
    std::vector<StripeUnit> units;
    std::string token;
    while (row >> token) {
      const auto colon = token.find(':');
      if (colon == std::string::npos)
        parse_error(line_no, "expected <disk>:<offset>, got '" + token + "'");
      try {
        const auto disk =
            static_cast<DiskId>(std::stoul(token.substr(0, colon)));
        const auto offset = static_cast<std::uint32_t>(
            std::stoul(token.substr(colon + 1)));
        units.push_back({disk, offset});
      } catch (const std::exception&) {
        parse_error(line_no, "bad unit token '" + token + "'");
      }
    }
    if (units.empty()) parse_error(line_no, "stripe has no units");
    try {
      layout.add_stripe_at(std::move(units), parity_pos);
    } catch (const std::invalid_argument& e) {
      parse_error(line_no, e.what());
    }
  }

  const auto errors = layout.validate(/*allow_holes=*/true);
  if (!errors.empty())
    throw std::invalid_argument("parse_layout: invalid layout: " +
                                errors.front());
  return layout;
}

Layout parse_layout(const std::string& text) {
  std::istringstream is(text);
  return read_layout(is);
}

void save_layout(const std::string& path, const Layout& layout) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_layout: cannot open " + path);
  write_layout(out, layout);
  if (!out) throw std::runtime_error("save_layout: write failed: " + path);
}

Layout load_layout(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_layout: cannot open " + path);
  return read_layout(in);
}

}  // namespace pdl::layout
