#include "layout/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pdl::layout {

namespace {

constexpr int kFormatVersion = 1;
constexpr int kSparedFormatVersion = 1;

[[nodiscard]] Status parse_error_at(std::size_t line, const std::string& what) {
  return Status::parse_error("line " + std::to_string(line) + ": " + what);
}

/// Line-counting reader shared by the layout and spared-layout parsers so
/// error messages carry absolute line numbers even for the nested block.
struct LineReader {
  explicit LineReader(std::istream& in) : in(in) {}

  std::istream& in;
  std::string line;
  std::size_t line_no = 0;

  /// The next line, or nullopt at EOF.
  [[nodiscard]] bool next() {
    if (!std::getline(in, line)) return false;
    ++line_no;
    return true;
  }
};

[[nodiscard]] Result<Layout> read_layout_block(LineReader& reader) {
  if (!reader.next())
    return parse_error_at(reader.line_no + 1, "unexpected EOF");
  {
    std::istringstream header(reader.line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "pdl-layout")
      return parse_error_at(reader.line_no, "expected 'pdl-layout <version>'");
    if (version != kFormatVersion)
      return parse_error_at(
          reader.line_no,
          "unsupported format version " + std::to_string(version));
  }

  std::uint32_t v = 0, s = 0;
  if (!reader.next())
    return parse_error_at(reader.line_no + 1, "unexpected EOF");
  {
    std::istringstream dims(reader.line);
    std::string kw1, kw2;
    if (!(dims >> kw1 >> v >> kw2 >> s) || kw1 != "disks" || kw2 != "units")
      return parse_error_at(reader.line_no, "expected 'disks <v> units <s>'");
  }
  std::uint64_t num_stripes = 0;
  if (!reader.next())
    return parse_error_at(reader.line_no + 1, "unexpected EOF");
  {
    std::istringstream count(reader.line);
    std::string kw;
    if (!(count >> kw >> num_stripes) || kw != "stripes")
      return parse_error_at(reader.line_no, "expected 'stripes <n>'");
  }

  Layout layout(v, s);
  for (std::uint64_t i = 0; i < num_stripes; ++i) {
    if (!reader.next())
      return parse_error_at(reader.line_no + 1, "unexpected EOF");
    std::istringstream row(reader.line);
    std::uint32_t parity_pos = 0;
    if (!(row >> parity_pos))
      return parse_error_at(reader.line_no, "missing parity position");
    std::vector<StripeUnit> units;
    std::string token;
    while (row >> token) {
      const auto colon = token.find(':');
      if (colon == std::string::npos)
        return parse_error_at(reader.line_no,
                              "expected <disk>:<offset>, got '" + token + "'");
      try {
        const auto disk =
            static_cast<DiskId>(std::stoul(token.substr(0, colon)));
        const auto offset = static_cast<std::uint32_t>(
            std::stoul(token.substr(colon + 1)));
        units.push_back({disk, offset});
      } catch (const std::exception&) {
        return parse_error_at(reader.line_no, "bad unit token '" + token + "'");
      }
    }
    if (units.empty())
      return parse_error_at(reader.line_no, "stripe has no units");
    try {
      layout.add_stripe_at(std::move(units), parity_pos);
    } catch (const std::invalid_argument& e) {
      return parse_error_at(reader.line_no, e.what());
    }
  }

  const auto errors = layout.validate(/*allow_holes=*/true);
  if (!errors.empty())
    return Status::invalid_argument("invalid layout: " + errors.front());
  return layout;
}

}  // namespace

void write_layout(std::ostream& out, const Layout& layout) {
  out << "pdl-layout " << kFormatVersion << "\n";
  out << "disks " << layout.num_disks() << " units "
      << layout.units_per_disk() << "\n";
  out << "stripes " << layout.num_stripes() << "\n";
  for (const Stripe& st : layout.stripes()) {
    out << st.parity_pos;
    for (const StripeUnit& u : st.units) {
      out << ' ' << u.disk << ':' << u.offset;
    }
    out << "\n";
  }
}

std::string serialize_layout(const Layout& layout) {
  std::ostringstream os;
  write_layout(os, layout);
  return os.str();
}

Result<Layout> read_layout(std::istream& in) {
  LineReader reader{in};
  return read_layout_block(reader);
}

Result<Layout> parse_layout(const std::string& text) {
  std::istringstream is(text);
  return read_layout(is);
}

Status save_layout(const std::string& path, const Layout& layout) {
  std::ofstream out(path);
  if (!out) return Status::io_error("cannot open " + path);
  write_layout(out, layout);
  out.flush();
  if (!out) return Status::io_error("write failed: " + path);
  return OkStatus();
}

Result<Layout> load_layout(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::io_error("cannot open " + path);
  return read_layout(in);
}

void write_spared_layout(std::ostream& out, const SparedLayout& spared) {
  out << "pdl-spared-layout " << kSparedFormatVersion << "\n";
  write_layout(out, spared.layout);
  out << "spares " << spared.spare_pos.size() << "\n";
  for (std::size_t i = 0; i < spared.spare_pos.size(); ++i) {
    out << (i ? " " : "") << spared.spare_pos[i];
  }
  if (!spared.spare_pos.empty()) out << "\n";
}

std::string serialize_spared_layout(const SparedLayout& spared) {
  std::ostringstream os;
  write_spared_layout(os, spared);
  return os.str();
}

Result<SparedLayout> read_spared_layout(std::istream& in) {
  LineReader reader{in};
  if (!reader.next())
    return parse_error_at(reader.line_no + 1, "unexpected EOF");
  {
    std::istringstream header(reader.line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "pdl-spared-layout")
      return parse_error_at(reader.line_no,
                            "expected 'pdl-spared-layout <version>'");
    if (version != kSparedFormatVersion)
      return parse_error_at(
          reader.line_no,
          "unsupported spared format version " + std::to_string(version));
  }

  auto base = read_layout_block(reader);
  if (!base.ok()) return base.status();

  std::uint64_t num_spares = 0;
  if (!reader.next())
    return parse_error_at(reader.line_no + 1, "unexpected EOF");
  {
    std::istringstream count(reader.line);
    std::string kw;
    if (!(count >> kw >> num_spares) || kw != "spares")
      return parse_error_at(reader.line_no, "expected 'spares <n>'");
  }
  if (num_spares != base->num_stripes())
    return Status::invalid_argument(
        "spare map covers " + std::to_string(num_spares) + " stripes, layout has " +
        std::to_string(base->num_stripes()));

  SparedLayout spared{std::move(base).value(), {}};
  spared.spare_pos.reserve(num_spares);
  while (spared.spare_pos.size() < num_spares) {
    std::uint32_t pos = 0;
    if (!(in >> pos))
      return Status::parse_error("truncated or malformed spare map");
    spared.spare_pos.push_back(pos);
  }
  if (Status valid = validate_spare_map(spared); !valid.ok()) return valid;
  return spared;
}

Result<SparedLayout> parse_spared_layout(const std::string& text) {
  std::istringstream is(text);
  return read_spared_layout(is);
}

Status save_spared_layout(const std::string& path,
                          const SparedLayout& spared) {
  std::ofstream out(path);
  if (!out) return Status::io_error("cannot open " + path);
  write_spared_layout(out, spared);
  out.flush();
  if (!out) return Status::io_error("write failed: " + path);
  return OkStatus();
}

Result<SparedLayout> load_spared_layout(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::io_error("cannot open " + path);
  return read_spared_layout(in);
}

}  // namespace pdl::layout
