#pragma once
// Layout (de)serialization: the mapping table must survive restarts (it IS
// the array's metadata), so layouts round-trip through a small, versioned,
// human-readable text format:
//
//   pdl-layout 1
//   disks <v> units <s>
//   stripes <n>
//   <parity_pos> <disk>:<offset> <disk>:<offset> ...    (one line per stripe)
//
// A layout with distributed sparing (SparedLayout) additionally carries its
// spare map, wrapped around the base block:
//
//   pdl-spared-layout 1
//   <base layout block, exactly as above>
//   spares <n>
//   <spare_pos values, whitespace-separated>
//
// All parsing entry points return pdl::Result -- kParseError with a
// line-numbered message for malformed input, kInvalidArgument for inputs
// that parse but violate layout/sparing invariants (Condition 1 clashes,
// spare == parity, ...), kIoError for filesystem failures.

#include <iosfwd>
#include <string>

#include "core/status.hpp"
#include "layout/layout.hpp"
#include "layout/sparing.hpp"

namespace pdl::layout {

/// Serializes a layout to the text format above.
void write_layout(std::ostream& out, const Layout& layout);

/// Convenience: serialize to a string.
[[nodiscard]] std::string serialize_layout(const Layout& layout);

/// Parses a layout, validating it structurally (Condition 1, occupancy)
/// before returning.
[[nodiscard]] Result<Layout> read_layout(std::istream& in);

/// Convenience: parse from a string.
[[nodiscard]] Result<Layout> parse_layout(const std::string& text);

/// File helpers.
[[nodiscard]] Status save_layout(const std::string& path,
                                 const Layout& layout);
[[nodiscard]] Result<Layout> load_layout(const std::string& path);

/// Spared-layout (base layout + spare map) round trip.  Malformed spare
/// maps -- wrong count, position out of range, spare == parity -- are
/// rejected with a typed Status.
void write_spared_layout(std::ostream& out, const SparedLayout& spared);
[[nodiscard]] std::string serialize_spared_layout(const SparedLayout& spared);
[[nodiscard]] Result<SparedLayout> read_spared_layout(std::istream& in);
[[nodiscard]] Result<SparedLayout> parse_spared_layout(
    const std::string& text);
[[nodiscard]] Status save_spared_layout(const std::string& path,
                                        const SparedLayout& spared);
[[nodiscard]] Result<SparedLayout> load_spared_layout(
    const std::string& path);

}  // namespace pdl::layout
