#pragma once
// Layout (de)serialization: the mapping table must survive restarts (it IS
// the array's metadata), so layouts round-trip through a small, versioned,
// human-readable text format:
//
//   pdl-layout 1
//   disks <v> units <s>
//   stripes <n>
//   <parity_pos> <disk>:<offset> <disk>:<offset> ...    (one line per stripe)

#include <iosfwd>
#include <string>

#include "layout/layout.hpp"

namespace pdl::layout {

/// Serializes a layout to the text format above.
void write_layout(std::ostream& out, const Layout& layout);

/// Convenience: serialize to a string.
[[nodiscard]] std::string serialize_layout(const Layout& layout);

/// Parses a layout; throws std::invalid_argument with a line-numbered
/// message on malformed input, and validates the result structurally
/// (Condition 1, occupancy) before returning.
[[nodiscard]] Layout read_layout(std::istream& in);

/// Convenience: parse from a string.
[[nodiscard]] Layout parse_layout(const std::string& text);

/// File helpers.
void save_layout(const std::string& path, const Layout& layout);
[[nodiscard]] Layout load_layout(const std::string& path);

}  // namespace pdl::layout
