#include "layout/sparing.hpp"

#include <stdexcept>
#include <string>

#include "flow/parity_assign.hpp"

namespace pdl::layout {

std::vector<std::uint32_t> SparedLayout::spares_per_disk() const {
  std::vector<std::uint32_t> counts(layout.num_disks(), 0);
  for (std::size_t s = 0; s < layout.num_stripes(); ++s) {
    counts[layout.stripes()[s].units[spare_pos[s]].disk]++;
  }
  return counts;
}

SparedLayout add_distributed_sparing(const Layout& base) {
  // Build the spare-assignment problem over the non-parity units of each
  // stripe, then translate chosen positions back to full-stripe positions.
  std::vector<std::vector<std::uint32_t>> candidates;  // disks, per stripe
  std::vector<std::vector<std::uint32_t>> positions;   // stripe positions
  candidates.reserve(base.num_stripes());
  positions.reserve(base.num_stripes());
  for (const Stripe& st : base.stripes()) {
    if (st.units.size() < 2)
      throw std::invalid_argument(
          "add_distributed_sparing: stripes must have >= 2 units");
    std::vector<std::uint32_t> disks;
    std::vector<std::uint32_t> pos;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (p == st.parity_pos) continue;
      disks.push_back(st.units[p].disk);
      pos.push_back(p);
    }
    candidates.push_back(std::move(disks));
    positions.push_back(std::move(pos));
  }

  const auto assignment =
      flow::assign_parity_balanced(candidates, base.num_disks());

  SparedLayout spared{base, {}};
  spared.spare_pos.reserve(base.num_stripes());
  for (std::size_t s = 0; s < base.num_stripes(); ++s) {
    spared.spare_pos.push_back(
        positions[s][assignment.chosen[s].front()]);
  }
  return spared;
}

std::vector<std::uint32_t> distributed_rebuild_writes(
    const SparedLayout& spared, DiskId failed) {
  const Layout& layout = spared.layout;
  if (failed >= layout.num_disks())
    throw std::invalid_argument("distributed_rebuild_writes: bad disk");
  std::vector<std::uint32_t> writes(layout.num_disks(), 0);
  for (std::size_t s = 0; s < layout.num_stripes(); ++s) {
    const Stripe& st = layout.stripes()[s];
    const StripeUnit& spare = st.units[spared.spare_pos[s]];
    bool lost_non_spare = false;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (st.units[p].disk == failed && p != spared.spare_pos[s]) {
        lost_non_spare = true;
      }
    }
    // If the spare itself was on the failed disk, the stripe lost only
    // (empty) spare capacity; nothing is written.
    if (lost_non_spare && spare.disk != failed) ++writes[spare.disk];
  }
  return writes;
}

Status validate_spare_map(const SparedLayout& spared) {
  if (spared.spare_pos.size() != spared.layout.num_stripes())
    return Status::invalid_argument(
        "spare map covers " + std::to_string(spared.spare_pos.size()) +
        " stripes, layout has " +
        std::to_string(spared.layout.num_stripes()));
  for (std::size_t s = 0; s < spared.spare_pos.size(); ++s) {
    const Stripe& st = spared.layout.stripes()[s];
    if (spared.spare_pos[s] >= st.units.size())
      return Status::invalid_argument(
          "stripe " + std::to_string(s) + ": spare position " +
          std::to_string(spared.spare_pos[s]) + " out of range");
    if (spared.spare_pos[s] == st.parity_pos)
      return Status::invalid_argument(
          "stripe " + std::to_string(s) +
          ": spare position collides with parity");
  }
  return OkStatus();
}

}  // namespace pdl::layout
