#pragma once
// Distributed sparing (Section 5, and the extension after Theorem 14):
// instead of a dedicated spare disk, every stripe designates one of its
// units as a spare, with the spares balanced over disks by the same
// network-flow machinery that balances parity ("selecting some number of
// distinguished units ... from each stripe, and balancing them among the
// disks").  After a failure, each lost unit is rebuilt into its own
// stripe's spare unit, so rebuild WRITES are declustered exactly like
// rebuild reads.
//
// Capacity: one unit per stripe, i.e. a 1/k fraction of the array -- the
// same fraction as parity.  Each stripe then carries k-2 data units, one
// parity unit, and one (empty) spare unit.

#include <vector>

#include "core/status.hpp"
#include "layout/layout.hpp"

namespace pdl::layout {

/// A layout plus a balanced spare-unit designation.
struct SparedLayout {
  Layout layout;
  /// spare_pos[s]: position (index into units) of stripe s's spare unit;
  /// always distinct from the stripe's parity position.
  std::vector<std::uint32_t> spare_pos;

  /// Number of spare units on each disk.
  [[nodiscard]] std::vector<std::uint32_t> spares_per_disk() const;
};

/// Designates one spare unit per stripe (never the parity unit), balanced
/// so that every disk's spare count is within one of the flow bound
/// (floor/ceil of its spare load).  Requires every stripe size >= 2.
[[nodiscard]] SparedLayout add_distributed_sparing(const Layout& base);

/// Structural validation of a spare map against its layout: one spare per
/// stripe, position in range, never the parity unit.  Shared by the
/// spared-layout parser and api::Array::adopt_spared.
[[nodiscard]] Status validate_spare_map(const SparedLayout& spared);

/// Rebuild write targets under distributed sparing: for each stripe
/// crossing the failed disk whose lost unit is NOT the spare, one write
/// lands on the spare unit's disk.  Returns per-disk write counts
/// (the distributed analogue of "the spare disk absorbs everything").
[[nodiscard]] std::vector<std::uint32_t> distributed_rebuild_writes(
    const SparedLayout& spared, DiskId failed);

}  // namespace pdl::layout
