#include "layout/stairway.hpp"

#include <stdexcept>

#include "layout/ring_layout.hpp"

namespace pdl::layout {

double StairwayPlan::parity_overhead_lo() const noexcept {
  const double base = 1.0 / k;
  if (wide_steps == 0) return base;
  return base + static_cast<double>(wide_steps - 1) /
                    (static_cast<double>(k) * (copies - 1) * (q - 1));
}

double StairwayPlan::parity_overhead_hi() const noexcept {
  const double base = 1.0 / k;
  if (wide_steps == 0) return base;
  return base + static_cast<double>(wide_steps) /
                    (static_cast<double>(k) * (copies - 1) * (q - 1));
}

double StairwayPlan::recon_workload_lo() const noexcept {
  return (static_cast<double>(copies) - 2) / (copies - 1) *
         (static_cast<double>(k) - 1) / (q - 1);
}

double StairwayPlan::recon_workload_hi() const noexcept {
  return (static_cast<double>(k) - 1) / (q - 1);
}

namespace {

std::vector<std::uint32_t> make_step_widths(std::uint32_t q, std::uint32_t W,
                                            std::uint32_t c, std::uint32_t w,
                                            WideStepPlacement placement) {
  // c-1 steps, w of width W+1 and c-1-w of width W; sum = (c-1)W + w = q.
  std::vector<std::uint32_t> widths(c - 1, W);
  switch (placement) {
    case WideStepPlacement::kFirst:
      for (std::uint32_t i = 0; i < w; ++i) widths[i] = W + 1;
      break;
    case WideStepPlacement::kLast:
      for (std::uint32_t i = 0; i < w; ++i) widths[c - 2 - i] = W + 1;
      break;
    case WideStepPlacement::kSpread:
      for (std::uint32_t i = 0; i < w; ++i) {
        // Evenly spaced indices in [0, c-1).
        widths[static_cast<std::size_t>(i) * (c - 1) / w] = W + 1;
      }
      break;
  }
  std::uint64_t sum = 0;
  for (const auto x : widths) sum += x;
  if (sum != q) throw std::logic_error("make_step_widths: widths do not sum to q");
  return widths;
}

}  // namespace

std::vector<StairwayPlan> all_stairway_plans(std::uint32_t q, std::uint32_t v,
                                             std::uint32_t k,
                                             WideStepPlacement placement) {
  std::vector<StairwayPlan> plans;
  if (v <= q || q < 2 || k < 2 || k > q) return plans;
  const std::uint32_t W = v - q;
  // v = c*W + w with 0 <= w < c and c >= 2 (c = 1 would give an empty
  // layout).  c ranges over (v/(W+1), v/W].
  for (std::uint32_t c = std::max<std::uint32_t>(2, v / (W + 1)); c <= v / W;
       ++c) {
    const std::int64_t w = static_cast<std::int64_t>(v) -
                           static_cast<std::int64_t>(c) * W;
    if (w < 0 || w >= c) continue;
    StairwayPlan plan;
    plan.q = q;
    plan.v = v;
    plan.k = k;
    plan.width = W;
    plan.copies = c;
    plan.wide_steps = static_cast<std::uint32_t>(w);
    plan.step_widths =
        make_step_widths(q, W, c, plan.wide_steps, placement);
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::optional<StairwayPlan> plan_stairway(std::uint32_t q, std::uint32_t v,
                                          std::uint32_t k,
                                          WideStepPlacement placement) {
  auto plans = all_stairway_plans(q, v, k, placement);
  if (plans.empty()) return std::nullopt;
  return std::move(plans.front());  // smallest c = smallest layout
}

std::optional<StairwayPlan> plan_stairway_perfect_parity(std::uint32_t q,
                                                         std::uint32_t v,
                                                         std::uint32_t k) {
  for (auto& plan : all_stairway_plans(q, v, k)) {
    if (plan.wide_steps == 0) return std::move(plan);
  }
  return std::nullopt;
}

Layout build_stairway_layout(const design::RingDesign& base,
                             const StairwayPlan& plan) {
  const std::uint32_t q = plan.q;
  const std::uint32_t k = plan.k;
  const std::uint32_t W = plan.width;
  const std::uint32_t c = plan.copies;
  if (base.v() != q || base.k() != k)
    throw std::invalid_argument(
        "build_stairway_layout: design does not match plan");
  if (plan.step_widths.size() != c - 1)
    throw std::invalid_argument("build_stairway_layout: bad step widths");

  // cum[i] = total width of steps 0..i; step(col) = least i with col < cum[i].
  std::vector<std::uint32_t> cum(c - 1);
  std::uint32_t acc = 0;
  for (std::uint32_t i = 0; i + 1 < c; ++i) {
    acc += plan.step_widths[i];
    cum[i] = acc;
  }
  std::vector<std::uint32_t> step_of(q);
  {
    std::uint32_t step = 0;
    for (std::uint32_t col = 0; col < q; ++col) {
      while (col >= cum[step]) ++step;
      step_of[col] = step;
    }
  }

  // Wide step i collides at (row i+1, column cum[i]-1); resolve by removing
  // that disk from that copy (Theorem 8).
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> removed_in_row(c, kNone);
  for (std::uint32_t i = 0; i + 1 < c; ++i) {
    if (plan.step_widths[i] == W + 1) removed_in_row[i + 1] = cum[i] - 1;
  }

  // Piece geometry: pieces are h = k(q-1) units tall; each new column holds
  // pieces at slots 1..c-1, compacted to offsets (slot-1)*h.
  const std::uint32_t h = k * (q - 1);
  const std::uint32_t size = (c - 1) * h;
  Layout layout(plan.v, size);

  // new_disk(row, col) and base offset of each piece.
  auto piece_target = [&](std::uint32_t row,
                          std::uint32_t col) -> std::pair<DiskId, std::uint32_t> {
    if (row <= step_of[col]) {
      // Top part: moves right W and down one slot.
      return {col + W, (row + 1 - 1) * h};  // slot = row+1, offset (slot-1)*h
    }
    return {col, (row - 1) * h};  // bottom part stays: slot = row
  };

  // Sanity: every new column receives exactly c-1 pieces at distinct slots.
  {
    std::vector<std::vector<bool>> slot_used(
        plan.v, std::vector<bool>(c - 1, false));
    for (std::uint32_t row = 0; row < c; ++row) {
      for (std::uint32_t col = 0; col < q; ++col) {
        if (removed_in_row[row] == col) continue;
        const auto [disk, offset] = piece_target(row, col);
        const std::uint32_t slot = offset / h;
        if (disk >= plan.v || slot >= c - 1 || slot_used[disk][slot])
          throw std::logic_error(
              "build_stairway_layout: piece collision (internal error)");
        slot_used[disk][slot] = true;
      }
    }
    for (DiskId d = 0; d < plan.v; ++d) {
      for (std::uint32_t slot = 0; slot + 1 < c; ++slot) {
        if (!slot_used[d][slot])
          throw std::logic_error(
              "build_stairway_layout: uncovered slot (internal error)");
      }
    }
  }

  // Emit stripes row by row.  Within a row, each surviving column's piece
  // receives its units in stripe-iteration order.
  std::vector<std::uint32_t> fill(q);
  for (std::uint32_t row = 0; row < c; ++row) {
    const std::optional<design::Elem> removed =
        removed_in_row[row] == kNone
            ? std::nullopt
            : std::optional<design::Elem>(removed_in_row[row]);
    fill.assign(q, 0);
    for (const RingStripeSpec& spec : ring_copy_stripes(base, removed)) {
      std::vector<StripeUnit> units;
      units.reserve(spec.disks.size());
      for (const DiskId col : spec.disks) {
        const auto [disk, base_offset] = piece_target(row, col);
        units.push_back({disk, base_offset + fill[col]++});
      }
      layout.add_stripe_at(std::move(units), spec.parity_pos);
    }
  }
  return layout;
}

Layout stairway_layout(std::uint32_t q, std::uint32_t v, std::uint32_t k) {
  const auto plan = plan_stairway(q, v, k);
  if (!plan)
    throw std::invalid_argument(
        "stairway_layout: no feasible (c, w) for q=" + std::to_string(q) +
        " -> v=" + std::to_string(v));
  return build_stairway_layout(design::make_ring_design(q, k), *plan);
}

}  // namespace pdl::layout
