#pragma once
// The "stairway" transformation (Section 3.2, Theorems 10-12, Figures 4-6):
// turn a ring-based layout for a prime-power q into an approximately
// balanced layout for v > q disks.
//
// Construction: stack c copies of the q-disk ring layout (rows), divide the
// q columns into c-1 steps of width W = v-q (with w of them widened to W+1
// when W does not divide v), and move the "top part" -- the cells above the
// staircase -- right by W columns and down by one row.  Every new column
// then holds exactly c-1 pieces, each piece being one disk's worth
// (k(q-1) units) of one copy.  Wide steps make one top piece and one bottom
// piece collide; the colliding bottom piece is eliminated by removing its
// disk from that copy via Theorem 8, which keeps that copy's parity
// balanced.
//
// Feasibility (conditions (8) and (9) of the paper): nonnegative integers
// c, w with  v = c(v-q) + w  and  w < c.
//
// Resulting guarantees:
//   size = k(c-1)(q-1)
//   stripe sizes in {k-1, k} (k-1 only when w > 0)
//   parity overhead in [1/k + (w-1)/(k(c-1)(q-1)), 1/k + w/(k(c-1)(q-1))]
//   reconstruction workload in [(c-2)/(c-1), 1] * (k-1)/(q-1).

#include <optional>
#include <vector>

#include "design/ring_design.hpp"
#include "layout/layout.hpp"

namespace pdl::layout {

/// Where the w wide steps are placed among the c-1 steps.  The theorem's
/// bounds are placement-invariant; this is exposed for ablation.
enum class WideStepPlacement : std::uint8_t { kFirst, kLast, kSpread };

/// A feasible stairway transformation q -> v.
struct StairwayPlan {
  std::uint32_t q = 0;       ///< base (prime-power) array size
  std::uint32_t v = 0;       ///< target array size
  std::uint32_t k = 0;       ///< stripe size
  std::uint32_t width = 0;   ///< W = v - q
  std::uint32_t copies = 0;  ///< c
  std::uint32_t wide_steps = 0;  ///< w
  std::vector<std::uint32_t> step_widths;  ///< c-1 entries in {W, W+1}

  /// Layout size k(c-1)(q-1).
  [[nodiscard]] std::uint64_t size() const noexcept {
    return static_cast<std::uint64_t>(k) * (copies - 1) * (q - 1);
  }
  /// Theorem 12 parity-overhead interval [lo, hi].
  [[nodiscard]] double parity_overhead_lo() const noexcept;
  [[nodiscard]] double parity_overhead_hi() const noexcept;
  /// Theorem 11/12 reconstruction-workload interval [lo, hi].
  [[nodiscard]] double recon_workload_lo() const noexcept;
  [[nodiscard]] double recon_workload_hi() const noexcept;
};

/// All feasible (c, w) choices for transforming q into v with stripe size k
/// (smaller c = smaller layout but more imbalance), ordered by increasing c.
/// Empty if v <= q or no (c, w) satisfies (8) and (9).
[[nodiscard]] std::vector<StairwayPlan> all_stairway_plans(
    std::uint32_t q, std::uint32_t v, std::uint32_t k,
    WideStepPlacement placement = WideStepPlacement::kFirst);

/// The feasible plan with the smallest c (hence smallest size), if any.
[[nodiscard]] std::optional<StairwayPlan> plan_stairway(
    std::uint32_t q, std::uint32_t v, std::uint32_t k,
    WideStepPlacement placement = WideStepPlacement::kFirst);

/// The feasible plan with perfectly balanced parity (w = 0, Theorems 10/11),
/// if one exists -- requires (v-q) | v.
[[nodiscard]] std::optional<StairwayPlan> plan_stairway_perfect_parity(
    std::uint32_t q, std::uint32_t v, std::uint32_t k);

/// Builds the layout for a plan from the base ring design (which must match
/// the plan's q and k).
[[nodiscard]] Layout build_stairway_layout(const design::RingDesign& base,
                                           const StairwayPlan& plan);

/// Convenience: plan (minimal c) and build for the canonical ring design.
[[nodiscard]] Layout stairway_layout(std::uint32_t q, std::uint32_t v,
                                     std::uint32_t k);

}  // namespace pdl::layout
