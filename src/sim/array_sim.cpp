#include "sim/array_sim.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace pdl::sim {

double RunResult::max_disk_utilization() const {
  if (horizon_ms <= 0.0) return 0.0;
  double max_busy = 0.0;
  for (const double b : disk_busy_ms) max_busy = std::max(max_busy, b);
  return max_busy / horizon_ms;
}

ArraySimulator::ArraySimulator(const layout::Layout& layout,
                               ArrayConfig config)
    : layout_(layout), mapper_(layout), config_(config) {
  if (config_.iterations == 0)
    throw std::invalid_argument("ArraySimulator: iterations >= 1");
  if (config_.rebuild_depth == 0)
    throw std::invalid_argument("ArraySimulator: rebuild_depth >= 1");
}

std::uint64_t ArraySimulator::working_set() const noexcept {
  return mapper_.data_units_per_iteration() * config_.iterations;
}

namespace {

using layout::CompiledMapper;
using layout::DiskId;

// Shared per-run state: the disks, the event queue, result collection, and
// a reusable stripe buffer so the hot path never allocates.
struct RunContext {
  RunContext(std::uint32_t num_disks, std::uint32_t max_stripe_size,
             const ArrayConfig& config)
      : config(config), stripe_scratch(max_stripe_size) {
    disks.reserve(num_disks);
    for (std::uint32_t d = 0; d < num_disks; ++d)
      disks.emplace_back(config.disk);
  }

  const ArrayConfig& config;
  EventQueue queue;
  std::vector<Disk> disks;
  std::vector<CompiledMapper::Physical> stripe_scratch;
  UserStats user;

  void finish(RunResult& result) {
    result.horizon_ms = queue.now();
    result.disk_busy_ms.reserve(disks.size());
    result.disk_accesses.reserve(disks.size());
    for (const Disk& d : disks) {
      result.disk_busy_ms.push_back(d.busy_ms());
      result.disk_accesses.push_back(d.accesses());
    }
  }
};

constexpr DiskId kNoFailure = 0xffffffffu;

// Issues one user request at its arrival time.  `failed` = kNoFailure for
// normal mode.  Latency is recorded when the slowest constituent access
// completes; two-phase writes chain through a scheduled event.
void issue_request(RunContext& ctx, const CompiledMapper& mapper,
                   const Request& req, DiskId failed) {
  const auto record = [&ctx, is_write = req.is_write,
                       arrival = req.arrival_ms](SimTime done) {
    if (is_write) {
      ctx.user.write_latency_ms.add(done - arrival);
    } else {
      ctx.user.read_latency_ms.add(done - arrival);
    }
  };

  const CompiledMapper::Physical data = mapper.map(req.logical);
  const CompiledMapper::Physical parity = mapper.parity_of(req.logical);
  const SimTime now = req.arrival_ms;

  if (!req.is_write) {
    if (data.disk != failed) {
      record(ctx.disks[data.disk].submit(now));
      return;
    }
    // Degraded read: reconstruct from all surviving stripe units.
    const std::uint32_t n =
        mapper.stripe_of(req.logical, ctx.stripe_scratch);
    SimTime done = now;
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto& unit = ctx.stripe_scratch[i];
      if (unit.disk == failed) continue;
      done = std::max(done, ctx.disks[unit.disk].submit(now));
    }
    record(done);
    return;
  }

  // Writes.
  if (data.disk != failed && parity.disk != failed) {
    // Small write: read old data + old parity, then write both.
    const SimTime r1 = ctx.disks[data.disk].submit(now);
    const SimTime r2 = ctx.disks[parity.disk].submit(now);
    const SimTime reads_done = std::max(r1, r2);
    ctx.queue.schedule(reads_done, [&ctx, data, parity, record](SimTime t) {
      const SimTime w1 = ctx.disks[data.disk].submit(t);
      const SimTime w2 = ctx.disks[parity.disk].submit(t);
      record(std::max(w1, w2));
    });
    return;
  }
  if (data.disk == failed) {
    // The data unit is lost: fold the new value into parity by reading all
    // surviving data units of the stripe, then writing the parity unit.
    const std::uint32_t n =
        mapper.stripe_of(req.logical, ctx.stripe_scratch);
    SimTime reads_done = now;
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto& unit = ctx.stripe_scratch[i];
      if (unit.disk == failed || unit == parity) continue;
      reads_done = std::max(reads_done, ctx.disks[unit.disk].submit(now));
    }
    ctx.queue.schedule(reads_done, [&ctx, parity, record](SimTime t) {
      record(ctx.disks[parity.disk].submit(t));
    });
    return;
  }
  // Parity disk failed: the stripe is unprotected; just write the data.
  record(ctx.disks[data.disk].submit(now));
}

}  // namespace

RunResult ArraySimulator::run_normal(std::span<const Request> requests) const {
  RunContext ctx(layout_.num_disks(), mapper_.max_stripe_size(), config_);
  for (const Request& req : requests) {
    if (req.logical >= working_set())
      throw std::invalid_argument("run_normal: request beyond working set");
    ctx.queue.schedule(req.arrival_ms, [&ctx, &req, this](SimTime) {
      issue_request(ctx, mapper_, req, kNoFailure);
    });
  }
  ctx.queue.run();
  RunResult result;
  result.user = std::move(ctx.user);
  ctx.finish(result);
  return result;
}

RunResult ArraySimulator::run_degraded(std::span<const Request> requests,
                                       layout::DiskId failed) const {
  if (failed >= layout_.num_disks())
    throw std::invalid_argument("run_degraded: bad disk");
  RunContext ctx(layout_.num_disks(), mapper_.max_stripe_size(), config_);
  for (const Request& req : requests) {
    if (req.logical >= working_set())
      throw std::invalid_argument("run_degraded: request beyond working set");
    ctx.queue.schedule(req.arrival_ms, [&ctx, &req, failed, this](SimTime) {
      issue_request(ctx, mapper_, req, failed);
    });
  }
  ctx.queue.run();
  RunResult result;
  result.user = std::move(ctx.user);
  ctx.finish(result);
  return result;
}

RebuildResult ArraySimulator::run_rebuild(std::span<const Request> requests,
                                          layout::DiskId failed) const {
  if (failed >= layout_.num_disks())
    throw std::invalid_argument("run_rebuild: bad disk");
  RunContext ctx(layout_.num_disks(), mapper_.max_stripe_size(), config_);
  // The spare is written sequentially (a streaming reconstruction sweep),
  // so it pays transfer time only; survivors pay full random-access cost
  // for their reads, which is where declustering helps.
  Disk spare(DiskParams{0.0, config_.disk.transfer_ms_per_unit});

  // Rebuild jobs: every (stripe crossing the failed disk) x (iteration).
  struct Job {
    std::uint32_t stripe;
    std::uint32_t iteration;
  };
  std::vector<Job> jobs;
  for (std::uint32_t si = 0; si < layout_.num_stripes(); ++si) {
    const layout::Stripe& st = layout_.stripes()[si];
    const bool crosses = std::any_of(
        st.units.begin(), st.units.end(),
        [&](const layout::StripeUnit& u) { return u.disk == failed; });
    if (!crosses) continue;
    for (std::uint32_t it = 0; it < config_.iterations; ++it)
      jobs.push_back({si, it});
  }

  RebuildResult result;
  result.rebuild_reads_per_disk.assign(layout_.num_disks(), 0);
  // The dedicated spare is not an array disk; its writes never land on a
  // surviving disk's counter.
  result.rebuild_writes_per_disk.assign(layout_.num_disks(), 0);

  auto next_job = std::make_shared<std::size_t>(0);
  auto done_jobs = std::make_shared<std::size_t>(0);

  // One stripe-rebuild: read all surviving units (in parallel), then write
  // the reconstructed unit to the spare; on completion, start the next
  // pending job.
  std::function<void(SimTime)> start_job = [&, next_job,
                                            done_jobs](SimTime now) {
    if (*next_job >= jobs.size()) return;
    const Job job = jobs[(*next_job)++];
    const layout::Stripe& st = layout_.stripes()[job.stripe];

    SimTime reads_done = now;
    for (const layout::StripeUnit& u : st.units) {
      if (u.disk == failed) continue;
      reads_done = std::max(reads_done, ctx.disks[u.disk].submit(now));
      ++result.rebuild_reads_per_disk[u.disk];
    }
    ctx.queue.schedule(reads_done, [&, done_jobs](SimTime t) {
      const SimTime written = spare.submit(t);
      ++(*done_jobs);
      ++result.stripes_rebuilt;
      result.rebuild_ms = std::max(result.rebuild_ms, written);
      ctx.queue.schedule(written, start_job);
    });
  };

  // Kick off the initial window of concurrent jobs at t = 0.
  const std::size_t window =
      std::min<std::size_t>(config_.rebuild_depth, jobs.size());
  for (std::size_t i = 0; i < window; ++i) ctx.queue.schedule(0.0, start_job);

  // User traffic runs degraded throughout.
  for (const Request& req : requests) {
    if (req.logical >= working_set())
      throw std::invalid_argument("run_rebuild: request beyond working set");
    ctx.queue.schedule(req.arrival_ms, [&ctx, &req, failed, this](SimTime) {
      issue_request(ctx, mapper_, req, failed);
    });
  }

  ctx.queue.run();
  if (*done_jobs != jobs.size())
    throw std::logic_error("run_rebuild: rebuild did not complete");
  result.run.user = std::move(ctx.user);
  ctx.finish(result.run);
  return result;
}

RebuildResult ArraySimulator::run_rebuild_distributed(
    std::span<const Request> requests, layout::DiskId failed,
    std::span<const std::uint32_t> spare_pos) const {
  if (failed >= layout_.num_disks())
    throw std::invalid_argument("run_rebuild_distributed: bad disk");
  if (spare_pos.size() != layout_.num_stripes())
    throw std::invalid_argument(
        "run_rebuild_distributed: spare_pos size mismatch");
  RunContext ctx(layout_.num_disks(), mapper_.max_stripe_size(), config_);

  // Jobs: stripes that lost a non-spare unit, per iteration.  The spare
  // holds no data, so it is neither read nor lost.
  struct Job {
    std::uint32_t stripe;
    std::uint32_t iteration;
  };
  std::vector<Job> jobs;
  for (std::uint32_t si = 0; si < layout_.num_stripes(); ++si) {
    const layout::Stripe& st = layout_.stripes()[si];
    if (spare_pos[si] >= st.units.size() ||
        spare_pos[si] == st.parity_pos)
      throw std::invalid_argument(
          "run_rebuild_distributed: invalid spare position");
    bool lost_non_spare = false;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (st.units[p].disk == failed && p != spare_pos[si])
        lost_non_spare = true;
    }
    if (!lost_non_spare) continue;
    if (st.units[spare_pos[si]].disk == failed)
      throw std::logic_error(
          "run_rebuild_distributed: spare and lost unit on one disk");
    for (std::uint32_t it = 0; it < config_.iterations; ++it)
      jobs.push_back({si, it});
  }

  RebuildResult result;
  result.rebuild_reads_per_disk.assign(layout_.num_disks(), 0);
  result.rebuild_writes_per_disk.assign(layout_.num_disks(), 0);

  auto next_job = std::make_shared<std::size_t>(0);
  auto done_jobs = std::make_shared<std::size_t>(0);

  std::function<void(SimTime)> start_job = [&, next_job,
                                            done_jobs](SimTime now) {
    if (*next_job >= jobs.size()) return;
    const Job job = jobs[(*next_job)++];
    const layout::Stripe& st = layout_.stripes()[job.stripe];
    const std::uint32_t spare = spare_pos[job.stripe];

    SimTime reads_done = now;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      const layout::StripeUnit& u = st.units[p];
      if (u.disk == failed || p == spare) continue;
      reads_done = std::max(reads_done, ctx.disks[u.disk].submit(now));
      ++result.rebuild_reads_per_disk[u.disk];
    }
    const layout::DiskId spare_disk = st.units[spare].disk;
    ctx.queue.schedule(reads_done, [&, spare_disk, done_jobs](SimTime t) {
      const SimTime written = ctx.disks[spare_disk].submit(t);
      ++result.rebuild_writes_per_disk[spare_disk];
      ++(*done_jobs);
      ++result.stripes_rebuilt;
      result.rebuild_ms = std::max(result.rebuild_ms, written);
      ctx.queue.schedule(written, start_job);
    });
  };

  const std::size_t window =
      std::min<std::size_t>(config_.rebuild_depth, jobs.size());
  for (std::size_t i = 0; i < window; ++i) ctx.queue.schedule(0.0, start_job);

  for (const Request& req : requests) {
    if (req.logical >= working_set())
      throw std::invalid_argument(
          "run_rebuild_distributed: request beyond working set");
    ctx.queue.schedule(req.arrival_ms, [&ctx, &req, failed, this](SimTime) {
      issue_request(ctx, mapper_, req, failed);
    });
  }

  ctx.queue.run();
  if (*done_jobs != jobs.size())
    throw std::logic_error("run_rebuild_distributed: rebuild incomplete");
  result.run.user = std::move(ctx.user);
  ctx.finish(result.run);
  return result;
}

}  // namespace pdl::sim
