#pragma once
// Event-driven disk-array simulator.  Drives a Layout (through its
// CompiledMapper) under synthetic workloads in three modes:
//
//  * normal    -- reads are 1 access; writes are small read-modify-writes
//                 (read data + read parity, then write data + write parity);
//  * degraded  -- one disk has failed: reads of lost units reconstruct
//                 on the fly from the k-1 surviving stripe units; writes
//                 touching the failed disk degrade accordingly;
//  * rebuild   -- degraded plus a background reconstruction sweep that
//                 reads every surviving unit of every stripe crossing the
//                 failed disk and writes the lost unit to a spare.
//
// This reproduces the experimental substrate of Holland & Gibson [6] that
// the paper's Section 5 experiments rely on.

#include <span>

#include "layout/compiled_mapper.hpp"
#include "layout/layout.hpp"
#include "sim/disk.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"

namespace pdl::sim {

/// Array-level simulation parameters.
struct ArrayConfig {
  DiskParams disk;
  /// Concurrent outstanding stripe-rebuild jobs during reconstruction.
  std::uint32_t rebuild_depth = 4;
  /// Number of vertical repetitions of the layout on each disk: the
  /// simulated disk holds iterations * units_per_disk units.
  std::uint32_t iterations = 1;
};

/// Latency statistics for user requests.
struct UserStats {
  SampleStats read_latency_ms;
  SampleStats write_latency_ms;
};

/// Result of a normal- or degraded-mode run.
struct RunResult {
  UserStats user;
  double horizon_ms = 0.0;             ///< completion time of the last event
  std::vector<double> disk_busy_ms;    ///< per disk
  std::vector<std::uint64_t> disk_accesses;

  [[nodiscard]] double max_disk_utilization() const;
};

/// Result of a rebuild-mode run.  Read and write traffic are accounted
/// separately: `rebuild_reads_per_disk` counts ONLY the survivor reads of
/// the reconstruction sweep (never rebuild writes, never user traffic), and
/// `rebuild_writes_per_disk` counts the rebuilt-unit writes landing on each
/// array disk.  Under a dedicated spare the writes leave the array (the
/// spare is not an array disk), so `rebuild_writes_per_disk` is all zero
/// and the per-disk split of `RunResult::disk_accesses` into user traffic
/// plus rebuild reads plus rebuild writes stays exact in both modes --
/// previously a distributed-sparing run folded the spare's writes into the
/// same per-disk access totals that user traffic lands in, with no way to
/// separate them.
struct RebuildResult {
  RunResult run;
  double rebuild_ms = 0.0;  ///< failure (t = 0) to last rebuilt unit
  std::vector<std::uint64_t> rebuild_reads_per_disk;  ///< surviving disks
  std::vector<std::uint64_t> rebuild_writes_per_disk; ///< spare-unit writes
  std::uint64_t stripes_rebuilt = 0;
};

/// Simulates one layout instance.  The simulator is stateless across runs;
/// each run_* call replays the given request stream from time zero.
class ArraySimulator {
 public:
  ArraySimulator(const layout::Layout& layout, ArrayConfig config);

  /// Logical data units addressable by workloads for this configuration.
  [[nodiscard]] std::uint64_t working_set() const noexcept;

  [[nodiscard]] const layout::CompiledMapper& mapper() const noexcept {
    return mapper_;
  }

  [[nodiscard]] RunResult run_normal(std::span<const Request> requests) const;

  [[nodiscard]] RunResult run_degraded(std::span<const Request> requests,
                                       layout::DiskId failed) const;

  /// Failure at t = 0 with an immediate background rebuild onto a dedicated
  /// spare; user requests are served in degraded mode throughout.
  [[nodiscard]] RebuildResult run_rebuild(std::span<const Request> requests,
                                          layout::DiskId failed) const;

  /// Rebuild under distributed sparing (Section 5 / layout::SparedLayout):
  /// each lost non-spare unit is rebuilt into its own stripe's spare unit
  /// on a surviving disk -- rebuild writes are declustered like the reads,
  /// and there is no dedicated spare.  spare_pos[s] is stripe s's spare
  /// position and must not collide with its parity position.
  [[nodiscard]] RebuildResult run_rebuild_distributed(
      std::span<const Request> requests, layout::DiskId failed,
      std::span<const std::uint32_t> spare_pos) const;

 private:
  layout::Layout layout_;
  layout::CompiledMapper mapper_;
  ArrayConfig config_;
};

}  // namespace pdl::sim
