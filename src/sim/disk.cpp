// Disk is header-only; this translation unit anchors the library target.
#include "sim/disk.hpp"
