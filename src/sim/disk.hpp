#pragma once
// A simple magnetic-disk service model: each access pays a positioning time
// (seek + rotational latency) plus a per-unit transfer time, and disks
// serve one request at a time in FCFS order.  All paper claims under test
// are ratios of unit counts, which any work-conserving model preserves; see
// DESIGN.md (substitutions).

#include <cstdint>

#include "sim/event_queue.hpp"

namespace pdl::sim {

/// Disk timing parameters (defaults roughly match an early-90s 3.5" drive,
/// the hardware context of the paper: ~10 ms positioning, ~2 ms to transfer
/// one stripe unit).
struct DiskParams {
  double positioning_ms = 10.0;
  double transfer_ms_per_unit = 2.0;

  [[nodiscard]] double access_ms(std::uint32_t units) const noexcept {
    return positioning_ms + transfer_ms_per_unit * units;
  }
};

/// One disk: a FCFS queue in closed form.  submit() returns the completion
/// time of an access issued at `now`; the disk is busy until then.
class Disk {
 public:
  explicit Disk(DiskParams params) : params_(params) {}

  /// Issues an access of `units` contiguous units at time `now` (must be
  /// non-decreasing across calls, which event-ordered callers guarantee).
  SimTime submit(SimTime now, std::uint32_t units = 1) {
    const SimTime start = now > busy_until_ ? now : busy_until_;
    const double service = params_.access_ms(units);
    busy_until_ = start + service;
    busy_ms_ += service;
    ++accesses_;
    units_transferred_ += units;
    return busy_until_;
  }

  [[nodiscard]] SimTime busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] double busy_ms() const noexcept { return busy_ms_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t units_transferred() const noexcept {
    return units_transferred_;
  }

 private:
  DiskParams params_;
  SimTime busy_until_ = 0.0;
  double busy_ms_ = 0.0;
  std::uint64_t accesses_ = 0;
  std::uint64_t units_transferred_ = 0;
};

}  // namespace pdl::sim
