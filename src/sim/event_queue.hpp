#pragma once
// A minimal discrete-event engine.  Events fire in (time, insertion order);
// callbacks may schedule further events.  This is the substrate for the
// disk-array simulator that stands in for Holland & Gibson's simulator [6]
// (see DESIGN.md, substitutions).

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace pdl::sim {

/// Simulated time in milliseconds.
using SimTime = double;

/// A time-ordered event queue with deterministic tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules a callback at an absolute time >= now().
  void schedule(SimTime time, Callback callback) {
    if (time < now_)
      throw std::invalid_argument("EventQueue: scheduling into the past");
    heap_.push(Event{time, next_seq_++, std::move(callback)});
  }

  /// Runs until no events remain (or max_events fire, as a runaway guard).
  void run(std::uint64_t max_events = 500'000'000) {
    std::uint64_t fired = 0;
    while (!heap_.empty()) {
      if (++fired > max_events)
        throw std::runtime_error("EventQueue: event budget exhausted");
      Event event = heap_.top();
      heap_.pop();
      now_ = event.time;
      event.callback(now_);
    }
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback callback;

    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0.0;
};

}  // namespace pdl::sim
