#include "sim/fault_timeline.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace pdl::sim {

FaultTimeline FaultTimeline::scripted(std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_ms < b.time_ms;
                   });
  std::unordered_set<layout::DiskId> seen;
  for (const FaultEvent& e : events) {
    if (e.time_ms < 0.0)
      throw std::invalid_argument("FaultTimeline: negative failure time");
    if (!seen.insert(e.disk).second)
      throw std::invalid_argument("FaultTimeline: disk fails twice");
  }
  return FaultTimeline(std::move(events));
}

FaultTimeline FaultTimeline::random(const RandomFaultConfig& config) {
  if (config.num_disks == 0)
    throw std::invalid_argument("FaultTimeline: num_disks >= 1");
  if (config.mean_arrival_ms <= 0.0)
    throw std::invalid_argument("FaultTimeline: mean_arrival_ms > 0");

  std::mt19937_64 rng(config.seed);
  std::exponential_distribution<double> gap(1.0 / config.mean_arrival_ms);

  std::vector<layout::DiskId> pool(config.num_disks);
  for (std::uint32_t d = 0; d < config.num_disks; ++d) pool[d] = d;

  std::vector<FaultEvent> events;
  double t = 0.0;
  while (!pool.empty()) {
    if (config.max_failures != 0 && events.size() >= config.max_failures)
      break;
    t += gap(rng);
    if (t > config.horizon_ms) break;
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    const std::size_t i = pick(rng);
    events.push_back({t, pool[i]});
    pool[i] = pool.back();
    pool.pop_back();
  }
  return FaultTimeline(std::move(events));
}

}  // namespace pdl::sim
