#pragma once
// Fault timelines for multi-failure scenarios: the sequence of disk
// failures injected into a ScenarioSimulator run.  A timeline carries the
// failure *arrivals* only -- scripted explicitly or drawn from a seeded
// Poisson process; the matching repair completions are produced by the
// rebuild engine during the run and reported back in the scenario's event
// log (ScenarioEventKind::kRepairComplete).
//
// Each disk fails at most once per timeline: the regime of interest is a
// burst of failures racing one or more rebuilds (the second failure
// mid-rebuild is what turns balanced-rebuild guarantees into data-loss
// probabilities), not a renewal process over repaired disks.

#include <cstdint>
#include <vector>

#include "layout/layout.hpp"

namespace pdl::sim {

/// One failure arrival.
struct FaultEvent {
  double time_ms = 0.0;
  layout::DiskId disk = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Parameters of a random (Poisson) failure process.
struct RandomFaultConfig {
  std::uint32_t num_disks = 0;
  /// Mean time between array-wide failure arrivals (exponential).
  double mean_arrival_ms = 10'000.0;
  /// Arrivals past the horizon are discarded.
  double horizon_ms = 10'000.0;
  /// Hard cap on the number of failures (0 = horizon only).
  std::uint32_t max_failures = 2;
  std::uint64_t seed = 1;
};

/// An immutable, time-sorted failure sequence with distinct disks.
class FaultTimeline {
 public:
  /// A timeline from explicit events (sorted on construction).  Throws
  /// std::invalid_argument on negative times or repeated disks.
  [[nodiscard]] static FaultTimeline scripted(std::vector<FaultEvent> events);

  /// A seeded Poisson failure process: exponential inter-arrival times with
  /// the configured mean, each failure hitting a uniformly random
  /// not-yet-failed disk.  Deterministic in the seed.
  [[nodiscard]] static FaultTimeline random(const RandomFaultConfig& config);

  [[nodiscard]] const std::vector<FaultEvent>& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] bool empty() const noexcept { return failures_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return failures_.size(); }

 private:
  explicit FaultTimeline(std::vector<FaultEvent> failures)
      : failures_(std::move(failures)) {}

  std::vector<FaultEvent> failures_;
};

}  // namespace pdl::sim
