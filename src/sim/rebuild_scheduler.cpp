#include "sim/rebuild_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace pdl::sim {

namespace {

class FifoScheduler final : public RebuildScheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fifo";
  }

  void order(const layout::Layout&, layout::DiskId,
             std::vector<RebuildJob>& jobs) const override {
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const RebuildJob& a, const RebuildJob& b) {
                       if (a.iteration != b.iteration)
                         return a.iteration < b.iteration;
                       return a.stripe < b.stripe;
                     });
  }
};

// Greedy anti-affinity ordering: repeatedly pick the pending job whose
// survivor disks are least loaded by the jobs already scheduled, so a
// dispatch window of consecutive jobs spreads its reads over as many
// distinct disks as the layout allows (the rebuild-side analogue of
// Condition 6's window parallelism).
class MaxParallelismScheduler final : public RebuildScheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "max-parallelism";
  }

  void order(const layout::Layout& layout, layout::DiskId failed,
             std::vector<RebuildJob>& jobs) const override {
    // Deterministic starting point regardless of how the batch was built.
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const RebuildJob& a, const RebuildJob& b) {
                       if (a.iteration != b.iteration)
                         return a.iteration < b.iteration;
                       return a.stripe < b.stripe;
                     });

    const auto& stripes = layout.stripes();
    std::vector<std::uint32_t> load(layout.num_disks(), 0);
    for (std::size_t next = 0; next + 1 < jobs.size(); ++next) {
      std::size_t best = next;
      std::uint64_t best_max = std::numeric_limits<std::uint64_t>::max();
      std::uint64_t best_sum = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t j = next; j < jobs.size(); ++j) {
        std::uint64_t max_load = 0, sum = 0;
        for (const layout::StripeUnit& u : stripes[jobs[j].stripe].units) {
          if (u.disk == failed) continue;
          max_load = std::max<std::uint64_t>(max_load, load[u.disk]);
          sum += load[u.disk];
        }
        if (max_load < best_max || (max_load == best_max && sum < best_sum)) {
          best = j;
          best_max = max_load;
          best_sum = sum;
        }
      }
      std::swap(jobs[next], jobs[best]);
      for (const layout::StripeUnit& u : stripes[jobs[next].stripe].units) {
        if (u.disk != failed) ++load[u.disk];
      }
    }
  }
};

class ThrottledScheduler final : public RebuildScheduler {
 public:
  explicit ThrottledScheduler(double target) : target_(target) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "throttled";
  }

  void order(const layout::Layout& layout, layout::DiskId failed,
             std::vector<RebuildJob>& jobs) const override {
    FifoScheduler().order(layout, failed, jobs);
  }

  [[nodiscard]] double pacing_delay_ms(
      double job_elapsed_ms) const noexcept override {
    // A job that ran e ms is followed by e*(1-u)/u ms of idle time, so the
    // rebuild stream occupies a u fraction of time in steady state.
    if (target_ >= 1.0) return 0.0;
    return job_elapsed_ms * (1.0 - target_) / target_;
  }

 private:
  double target_;
};

}  // namespace

std::unique_ptr<RebuildScheduler> make_fifo_scheduler() {
  return std::make_unique<FifoScheduler>();
}

std::unique_ptr<RebuildScheduler> make_max_parallelism_scheduler() {
  return std::make_unique<MaxParallelismScheduler>();
}

std::unique_ptr<RebuildScheduler> make_throttled_scheduler(
    double target_utilization) {
  if (!(target_utilization > 0.0) || target_utilization > 1.0)
    throw std::invalid_argument(
        "make_throttled_scheduler: target in (0, 1] required");
  return std::make_unique<ThrottledScheduler>(target_utilization);
}

std::unique_ptr<RebuildScheduler> make_scheduler(std::string_view name) {
  if (name == "fifo") return make_fifo_scheduler();
  if (name == "max-parallelism") return make_max_parallelism_scheduler();
  if (name == "throttled") return make_throttled_scheduler(0.5);
  throw std::invalid_argument("make_scheduler: unknown policy '" +
                              std::string(name) + "'");
}

std::vector<std::string_view> scheduler_names() {
  return {"fifo", "max-parallelism", "throttled"};
}

}  // namespace pdl::sim
