#pragma once
// Pluggable rebuild scheduling.  When a disk fails, the scenario engine
// derives one rebuild job per lost stripe instance (core::plan_recovery
// gives the per-stripe repair sets) and hands the batch to a
// RebuildScheduler, which decides (a) the dispatch ORDER of the jobs and
// (b) an optional PACING delay between jobs.  Three policies ship:
//
//  * fifo             -- sweep the failed disk in stripe order (the
//                        Holland & Gibson baseline the seed hard-coded);
//  * max-parallelism  -- greedy reorder so consecutive jobs touch disjoint
//                        survivor sets, the Condition 6 idea from
//                        layout/parallelism applied to rebuild traffic:
//                        with rebuild_depth > 1, concurrent jobs then queue
//                        on different disks instead of serializing;
//  * throttled        -- FIFO order, but after each job sleeps long enough
//                        that rebuild occupies at most a target fraction of
//                        time, leaving headroom for user traffic.

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "layout/layout.hpp"

namespace pdl::sim {

/// One rebuild job: restore the lost unit of `stripe` in vertical
/// repetition `iteration`.
struct RebuildJob {
  std::uint32_t stripe = 0;
  std::uint32_t iteration = 0;

  friend bool operator==(const RebuildJob&, const RebuildJob&) = default;
};

/// Rebuild policy interface.  Implementations must be deterministic and
/// stateless across runs (the same inputs must yield the same order), so
/// scenario results are reproducible.
class RebuildScheduler {
 public:
  virtual ~RebuildScheduler() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Reorders the batch of jobs created by the failure of `failed`.  The
  /// engine dispatches from the front, rebuild_depth jobs at a time.
  virtual void order(const layout::Layout& layout, layout::DiskId failed,
                     std::vector<RebuildJob>& jobs) const = 0;

  /// Delay inserted between a job's completion and the dispatch of its
  /// successor, given how long the job took.  Default: none (rebuild at
  /// full speed).
  [[nodiscard]] virtual double pacing_delay_ms(
      double job_elapsed_ms) const noexcept {
    (void)job_elapsed_ms;
    return 0.0;
  }
};

/// FIFO sweep in stripe order.
[[nodiscard]] std::unique_ptr<RebuildScheduler> make_fifo_scheduler();

/// Greedy survivor-disjoint ordering (see header comment).  O(n^2 k) in the
/// batch size n; intended for the scenario scales the simulator targets.
[[nodiscard]] std::unique_ptr<RebuildScheduler> make_max_parallelism_scheduler();

/// FIFO order with pacing so rebuild occupies at most `target_utilization`
/// of wall-clock time (0 < target <= 1; 1 disables pacing).
[[nodiscard]] std::unique_ptr<RebuildScheduler> make_throttled_scheduler(
    double target_utilization);

/// Scheduler by name: "fifo", "max-parallelism", or "throttled" (target
/// 0.5).  Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<RebuildScheduler> make_scheduler(
    std::string_view name);

/// The names make_scheduler accepts, for bench/CLI enumeration.
[[nodiscard]] std::vector<std::string_view> scheduler_names();

}  // namespace pdl::sim
