#include "sim/reconstruction.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "layout/metrics.hpp"

namespace pdl::sim {

ReconstructionAnalysis analyze_reconstruction(const layout::Layout& layout,
                                              layout::DiskId failed) {
  const std::uint32_t v = layout.num_disks();
  if (failed >= v)
    throw std::invalid_argument("analyze_reconstruction: bad disk");

  ReconstructionAnalysis analysis;
  analysis.failed = failed;
  analysis.units_per_disk = layout.units_per_disk();
  analysis.units_to_read.assign(v, 0);

  for (const layout::Stripe& st : layout.stripes()) {
    const bool crosses = std::any_of(
        st.units.begin(), st.units.end(),
        [&](const layout::StripeUnit& u) { return u.disk == failed; });
    if (!crosses) continue;
    for (const layout::StripeUnit& u : st.units) {
      if (u.disk != failed) ++analysis.units_to_read[u.disk];
    }
  }

  analysis.min_units = std::numeric_limits<std::uint32_t>::max();
  for (layout::DiskId d = 0; d < v; ++d) {
    if (d == failed) continue;
    analysis.min_units = std::min(analysis.min_units, analysis.units_to_read[d]);
    analysis.max_units = std::max(analysis.max_units, analysis.units_to_read[d]);
    analysis.total_units += analysis.units_to_read[d];
  }
  return analysis;
}

double worst_case_reconstruction_fraction(const layout::Layout& layout) {
  double worst = 0.0;
  for (layout::DiskId f = 0; f < layout.num_disks(); ++f) {
    worst = std::max(worst, analyze_reconstruction(layout, f).max_fraction());
  }
  return worst;
}

}  // namespace pdl::sim
