#pragma once
// Offline reconstruction-workload analysis: exact unit counts each
// surviving disk must read to rebuild a failed disk, straight from the
// layout structure (no simulation).  This is the quantity Condition 3
// bounds, and the denominator of the paper's reconstruction-workload
// fractions.

#include <cstdint>
#include <vector>

#include "layout/layout.hpp"
#include "sim/disk.hpp"

namespace pdl::sim {

/// Exact per-disk read load for rebuilding one failed disk.
struct ReconstructionAnalysis {
  layout::DiskId failed = 0;
  std::uint32_t units_per_disk = 0;
  /// units_to_read[d]: stripe units disk d contributes to the rebuild
  /// (0 for the failed disk itself).
  std::vector<std::uint32_t> units_to_read;
  std::uint32_t min_units = 0;  ///< over surviving disks
  std::uint32_t max_units = 0;
  std::uint64_t total_units = 0;

  /// Fraction of the busiest surviving disk that must be read.
  [[nodiscard]] double max_fraction() const {
    return static_cast<double>(max_units) / units_per_disk;
  }
  [[nodiscard]] double min_fraction() const {
    return static_cast<double>(min_units) / units_per_disk;
  }

  /// Time to read the busiest disk's share back-to-back: a lower bound on
  /// rebuild time when reads are the bottleneck and perfectly overlapped.
  [[nodiscard]] double read_bound_ms(const DiskParams& disk) const {
    return max_units * disk.access_ms(1);
  }
};

/// Analyzes reconstruction of `failed` under the layout.
[[nodiscard]] ReconstructionAnalysis analyze_reconstruction(
    const layout::Layout& layout, layout::DiskId failed);

/// max_fraction over all possible failed disks (the array's worst case).
[[nodiscard]] double worst_case_reconstruction_fraction(
    const layout::Layout& layout);

}  // namespace pdl::sim
