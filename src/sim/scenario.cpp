#include "sim/scenario.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <stdexcept>

#include "api/array.hpp"
#include "core/recovery.hpp"
#include "sim/event_queue.hpp"

namespace pdl::sim {

std::string_view phase_name(ScenarioPhase phase) noexcept {
  switch (phase) {
    case ScenarioPhase::kNormal: return "normal";
    case ScenarioPhase::kDegraded: return "degraded";
    case ScenarioPhase::kRebuilding: return "rebuilding";
    case ScenarioPhase::kRestored: return "restored";
  }
  return "?";
}

std::string_view event_kind_name(ScenarioEventKind kind) noexcept {
  switch (kind) {
    case ScenarioEventKind::kFailure: return "failure";
    case ScenarioEventKind::kRebuildStart: return "rebuild_start";
    case ScenarioEventKind::kRepairComplete: return "repair_complete";
    case ScenarioEventKind::kDataLoss: return "data_loss";
  }
  return "?";
}

double PhaseRecord::utilization(layout::DiskId disk) const {
  const double span = duration_ms();
  if (span <= 0.0) return 0.0;
  return disk_busy_ms[disk] / span;
}

double PhaseRecord::max_disk_utilization() const {
  const double span = duration_ms();
  if (span <= 0.0) return 0.0;
  double max_busy = 0.0;
  for (const double b : disk_busy_ms) max_busy = std::max(max_busy, b);
  return max_busy / span;
}

ScenarioSimulator::ScenarioSimulator(const layout::Layout& layout,
                                     ScenarioConfig config)
    : layout_(layout), config_(config) {
  compile_tables();
}

ScenarioSimulator::ScenarioSimulator(const layout::SparedLayout& spared,
                                     ScenarioConfig config)
    : layout_(spared.layout), spare_pos_(spared.spare_pos), config_(config) {
  if (spare_pos_.size() != layout_.num_stripes())
    throw std::invalid_argument("ScenarioSimulator: spare_pos size mismatch");
  compile_tables();
}

ScenarioSimulator::ScenarioSimulator(const api::Array& array,
                                     ScenarioConfig config)
    : layout_(array.layout()),
      spare_pos_(array.spare_positions()),
      config_(config) {
  compile_tables();
}

void ScenarioSimulator::compile_tables() {
  if (config_.iterations == 0)
    throw std::invalid_argument("ScenarioSimulator: iterations >= 1");
  if (config_.rebuild_depth == 0)
    throw std::invalid_argument("ScenarioSimulator: rebuild_depth >= 1");
  if (config_.rebuild_delay_ms < 0.0)
    throw std::invalid_argument("ScenarioSimulator: rebuild_delay_ms >= 0");
  const auto errors = layout_.validate();
  if (!errors.empty())
    throw std::invalid_argument("ScenarioSimulator: invalid layout: " +
                                errors.front());

  for (std::uint32_t s = 0; s < layout_.num_stripes(); ++s) {
    const layout::Stripe& st = layout_.stripes()[s];
    if (st.units.size() < 2 || st.units.size() > 64)
      throw std::invalid_argument(
          "ScenarioSimulator: stripe sizes must be in [2, 64]");
    if (!spare_pos_.empty()) {
      if (spare_pos_[s] >= st.units.size() || spare_pos_[s] == st.parity_pos)
        throw std::invalid_argument(
            "ScenarioSimulator: invalid spare position");
    }
  }

  // Logical numbering matches AddressMapper (stripe-major, parity skipped)
  // except that spare units, which hold no data, are skipped too.
  for (std::uint32_t s = 0; s < layout_.num_stripes(); ++s) {
    const layout::Stripe& st = layout_.stripes()[s];
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (p == st.parity_pos) continue;
      if (!spare_pos_.empty() && p == spare_pos_[s]) continue;
      data_units_.push_back({s, p});
    }
  }
  if (data_units_.empty())
    throw std::invalid_argument("ScenarioSimulator: layout holds no data");
}

std::uint64_t ScenarioSimulator::working_set() const noexcept {
  return data_units_.size() * static_cast<std::uint64_t>(config_.iterations);
}

namespace {

using layout::DiskId;

constexpr std::uint32_t kNone = 0xffffffffu;

/// All mutable state of one scenario run.
struct Runner {
  // -- immutable inputs ---------------------------------------------------
  const layout::Layout& layout;
  const std::vector<std::uint32_t>& spare_pos;  // empty = dedicated mode
  const ScenarioConfig& config;
  const RebuildScheduler& scheduler;
  const std::uint32_t num_stripes;
  const std::uint32_t num_disks;

  // -- array state --------------------------------------------------------
  EventQueue queue;
  std::vector<Disk> disks;
  std::vector<std::uint8_t> alive;
  // Per stripe instance si = iteration * num_stripes + stripe:
  std::vector<std::uint64_t> lost_mask;     // bit per lost content position
  std::vector<std::uint8_t> unrecoverable;  // >= 2 units lost at once
  std::vector<std::uint32_t> redirect;      // position living in the spare
  std::vector<std::uint8_t> job_pending;    // rebuild queued or in flight

  // -- rebuild machinery --------------------------------------------------
  struct QueuedJob {
    RebuildJob job;
    DiskId failed;  ///< failure this job belongs to
  };
  std::deque<QueuedJob> pending;
  std::uint32_t in_flight = 0;
  double dispatch_gate_ms = 0.0;  ///< pacing: no dispatch before this time
  std::vector<double> ready_ms;            // per disk: dispatch-eligible time
  std::vector<std::int64_t> jobs_open;     // per disk: queued + in-flight
  std::vector<std::int32_t> span_index;    // per disk: index into rebuilds
  std::uint32_t failed_unrepaired = 0;
  bool any_failure = false;

  // -- phase machinery ----------------------------------------------------
  ScenarioPhase cur_phase = ScenarioPhase::kNormal;
  std::vector<double> snap_busy;
  std::vector<std::uint64_t> snap_acc;

  ScenarioResult result;

  Runner(const layout::Layout& layout,
         const std::vector<std::uint32_t>& spare_pos,
         const ScenarioConfig& config, const RebuildScheduler& scheduler)
      : layout(layout),
        spare_pos(spare_pos),
        config(config),
        scheduler(scheduler),
        num_stripes(static_cast<std::uint32_t>(layout.num_stripes())),
        num_disks(layout.num_disks()) {
    disks.reserve(num_disks);
    for (std::uint32_t d = 0; d < num_disks; ++d)
      disks.emplace_back(config.disk);
    alive.assign(num_disks, 1);
    const std::size_t instances =
        static_cast<std::size_t>(num_stripes) * config.iterations;
    lost_mask.assign(instances, 0);
    unrecoverable.assign(instances, 0);
    redirect.assign(instances, kNone);
    job_pending.assign(instances, 0);
    ready_ms.assign(num_disks, 0.0);
    jobs_open.assign(num_disks, -1);
    span_index.assign(num_disks, -1);
    result.rebuild_reads_per_disk.assign(num_disks, 0);
    result.rebuild_writes_per_disk.assign(num_disks, 0);
    snap_busy.assign(num_disks, 0.0);
    snap_acc.assign(num_disks, 0);
    open_phase(ScenarioPhase::kNormal, 0.0);
  }

  [[nodiscard]] bool spared() const noexcept { return !spare_pos.empty(); }

  [[nodiscard]] std::size_t instance(std::uint32_t stripe,
                                     std::uint32_t iteration) const noexcept {
    return static_cast<std::size_t>(iteration) * num_stripes + stripe;
  }

  [[nodiscard]] bool is_lost(std::size_t si, std::uint32_t pos) const {
    return (lost_mask[si] >> pos) & 1u;
  }

  /// True when position `pos` of the stripe can hold content (everything
  /// but an unconsumed spare slot; a consumed spare slot hosts the
  /// redirected unit, which is enumerated under its own position).
  [[nodiscard]] bool is_content(std::uint32_t stripe,
                                std::uint32_t pos) const {
    return spare_pos.empty() || pos != spare_pos[stripe];
  }

  /// The disk currently holding content position `pos` of instance `si`.
  [[nodiscard]] DiskId cur_disk(std::uint32_t stripe, std::size_t si,
                                std::uint32_t pos) const {
    if (spared() && redirect[si] == pos)
      return layout.stripes()[stripe].units[spare_pos[stripe]].disk;
    return layout.stripes()[stripe].units[pos].disk;
  }

  // ---------------------------------------------------------------- phases

  void open_phase(ScenarioPhase phase, SimTime t) {
    PhaseRecord rec;
    rec.phase = phase;
    rec.start_ms = t;
    rec.end_ms = t;
    rec.failed_disks = failed_unrepaired;
    result.phases.push_back(std::move(rec));
    for (std::uint32_t d = 0; d < num_disks; ++d) {
      snap_busy[d] = disks[d].busy_ms();
      snap_acc[d] = disks[d].accesses();
    }
    cur_phase = phase;
  }

  void close_phase(SimTime t) {
    PhaseRecord& rec = result.phases.back();
    rec.end_ms = t;
    rec.disk_busy_ms.resize(num_disks);
    rec.disk_accesses.resize(num_disks);
    for (std::uint32_t d = 0; d < num_disks; ++d) {
      rec.disk_busy_ms[d] = disks[d].busy_ms() - snap_busy[d];
      rec.disk_accesses[d] = disks[d].accesses() - snap_acc[d];
    }
  }

  [[nodiscard]] bool any_ready_job(SimTime now) const {
    for (const QueuedJob& q : pending) {
      if (!unrecoverable[instance(q.job.stripe, q.job.iteration)] &&
          ready_ms[q.failed] <= now)
        return true;
    }
    return false;
  }

  [[nodiscard]] ScenarioPhase current_label(SimTime now) const {
    if (failed_unrepaired == 0)
      return any_failure ? ScenarioPhase::kRestored : ScenarioPhase::kNormal;
    if (in_flight > 0 || any_ready_job(now)) return ScenarioPhase::kRebuilding;
    return ScenarioPhase::kDegraded;
  }

  void maybe_transition(SimTime t) {
    const ScenarioPhase want = current_label(t);
    if (want == cur_phase) return;
    close_phase(t);
    open_phase(want, t);
  }

  // ----------------------------------------------------------- user serving

  void record_latency(bool is_write, std::size_t phase_idx, double arrival,
                      SimTime done) {
    UserStats& phase_user = result.phases[phase_idx].user;
    if (is_write) {
      result.user.write_latency_ms.add(done - arrival);
      phase_user.write_latency_ms.add(done - arrival);
    } else {
      result.user.read_latency_ms.add(done - arrival);
      phase_user.read_latency_ms.add(done - arrival);
    }
  }

  void serve(const Request& req, std::uint32_t stripe, std::uint32_t pos,
             std::uint32_t iteration) {
    const SimTime now = req.arrival_ms;
    const std::size_t si = instance(stripe, iteration);
    const std::size_t phase_idx = result.phases.size() - 1;
    const layout::Stripe& st = layout.stripes()[stripe];
    const std::uint32_t parity = st.parity_pos;

    if (!req.is_write) {
      if (!is_lost(si, pos)) {
        record_latency(false, phase_idx, now,
                       disks[cur_disk(stripe, si, pos)].submit(now));
        return;
      }
      if (unrecoverable[si]) {
        ++result.unserved_reads;
        return;
      }
      // Degraded read: reconstruct from the surviving stripe content.
      SimTime done = now;
      for (std::uint32_t p = 0; p < st.units.size(); ++p) {
        if (p == pos || !is_content(stripe, p)) continue;
        done = std::max(done, disks[cur_disk(stripe, si, p)].submit(now));
      }
      record_latency(false, phase_idx, now, done);
      return;
    }

    // Writes.
    const bool data_lost = is_lost(si, pos);
    const bool parity_lost = is_lost(si, parity);
    if (data_lost && unrecoverable[si]) {
      ++result.unserved_writes;
      return;
    }
    const auto arrival = req.arrival_ms;
    if (!data_lost && !parity_lost) {
      // Small write: read old data + old parity, then write both.
      const DiskId dd = cur_disk(stripe, si, pos);
      const DiskId pd = cur_disk(stripe, si, parity);
      const SimTime reads_done =
          std::max(disks[dd].submit(now), disks[pd].submit(now));
      queue.schedule(reads_done, [this, dd, pd, phase_idx, arrival](SimTime t) {
        record_latency(true, phase_idx, arrival,
                       std::max(disks[dd].submit(t), disks[pd].submit(t)));
      });
      return;
    }
    if (data_lost) {
      // Fold the new value into parity: read the other surviving content,
      // then write the parity unit.
      SimTime reads_done = now;
      for (std::uint32_t p = 0; p < st.units.size(); ++p) {
        if (p == pos || p == parity || !is_content(stripe, p)) continue;
        reads_done =
            std::max(reads_done, disks[cur_disk(stripe, si, p)].submit(now));
      }
      const DiskId pd = cur_disk(stripe, si, parity);
      queue.schedule(reads_done, [this, pd, phase_idx, arrival](SimTime t) {
        record_latency(true, phase_idx, arrival, disks[pd].submit(t));
      });
      return;
    }
    // Parity lost, data intact: the stripe is unprotected; write the data.
    record_latency(true, phase_idx, now,
                   disks[cur_disk(stripe, si, pos)].submit(now));
  }

  // -------------------------------------------------------------- failures

  void mark_lost(std::uint32_t stripe, std::uint32_t iteration,
                 std::uint32_t pos, DiskId failed, SimTime t,
                 bool& caused_data_loss) {
    const std::size_t si = instance(stripe, iteration);
    lost_mask[si] |= 1ull << pos;
    if (std::popcount(lost_mask[si]) >= 2) {
      if (!unrecoverable[si]) {
        unrecoverable[si] = 1;
        ++result.stripe_instances_lost;
        if (!result.data_loss) {
          result.data_loss = true;
          result.first_data_loss_ms = t;
        }
        caused_data_loss = true;
      }
      return;
    }
    if (!job_pending[si]) {
      job_pending[si] = 1;
      ++jobs_open[failed];
      pending.push_back({{stripe, iteration}, failed});
    }
  }

  void on_failure(SimTime t, DiskId failed) {
    if (!alive[failed]) return;  // FaultTimeline forbids this; be safe
    alive[failed] = 0;
    any_failure = true;
    ++failed_unrepaired;
    jobs_open[failed] = 0;
    ready_ms[failed] = t + config.rebuild_delay_ms;
    result.events.push_back({t, ScenarioEventKind::kFailure, failed});

    // plan_recovery enumerates exactly the stripes with a unit on the
    // failed disk, one (stripe, position) each; instances then classify the
    // loss against their current content placement (redirects, spares).
    const core::RecoveryPlan plan = core::plan_recovery(layout, failed);
    const std::size_t batch_start = pending.size();
    bool caused_data_loss = false;
    for (const core::StripeRepair& repair : plan.repairs) {
      const layout::Occupant& occ =
          layout.at(failed, repair.lost.offset);
      const std::uint32_t stripe = repair.stripe;
      const std::uint32_t pos = occ.pos;
      for (std::uint32_t it = 0; it < config.iterations; ++it) {
        const std::size_t si = instance(stripe, it);
        if (spared() && pos == spare_pos[stripe]) {
          // The stripe's unit on the failed disk is its spare slot.  If a
          // rebuilt unit lived there, that content is lost again; an empty
          // spare costs only capacity.
          if (redirect[si] != kNone) {
            const std::uint32_t q = redirect[si];
            redirect[si] = kNone;
            mark_lost(stripe, it, q, failed, t, caused_data_loss);
          }
          continue;
        }
        if (spared() && redirect[si] == pos)
          continue;  // content moved to the spare earlier; home slot empty
        mark_lost(stripe, it, pos, failed, t, caused_data_loss);
      }
    }
    if (caused_data_loss)
      result.events.push_back({t, ScenarioEventKind::kDataLoss, failed});

    // Order this failure's batch, in place, via the pluggable policy.
    if (pending.size() > batch_start) {
      std::vector<RebuildJob> batch;
      batch.reserve(pending.size() - batch_start);
      for (std::size_t i = batch_start; i < pending.size(); ++i)
        batch.push_back(pending[i].job);
      scheduler.order(layout, failed, batch);
      for (std::size_t i = 0; i < batch.size(); ++i)
        pending[batch_start + i] = {batch[i], failed};
    }

    queue.schedule(ready_ms[failed], [this, failed](SimTime now) {
      dispatch(now);
      if (jobs_open[failed] == 0) repair_complete(failed, now);
      maybe_transition(now);
    });
    maybe_transition(t);
  }

  // --------------------------------------------------------------- rebuild

  void job_done(const QueuedJob& q, SimTime t) {
    --jobs_open[q.failed];
    job_pending[instance(q.job.stripe, q.job.iteration)] = 0;
    if (jobs_open[q.failed] == 0 && t >= ready_ms[q.failed])
      repair_complete(q.failed, t);
  }

  void repair_complete(DiskId disk, SimTime t) {
    if (alive[disk]) return;  // already repaired (job drop raced the check)
    alive[disk] = 1;
    --failed_unrepaired;
    result.events.push_back({t, ScenarioEventKind::kRepairComplete, disk});
    if (span_index[disk] >= 0) result.rebuilds[span_index[disk]].end_ms = t;
  }

  void dispatch(SimTime now) {
    // The pacing gate is global: a throttled scheduler must slow the whole
    // rebuild stream, not just each job's immediate successor (with
    // rebuild_depth > 1 any other completion would otherwise refill the
    // window instantly and nullify the throttle).
    if (now < dispatch_gate_ms) {
      if (!pending.empty()) {
        queue.schedule(dispatch_gate_ms, [this](SimTime t) {
          dispatch(t);
          maybe_transition(t);
        });
      }
      return;
    }
    while (in_flight < config.rebuild_depth) {
      bool started = false;
      for (auto it = pending.begin(); it != pending.end();) {
        const QueuedJob q = *it;
        if (unrecoverable[instance(q.job.stripe, q.job.iteration)]) {
          it = pending.erase(it);
          job_done(q, now);
          continue;
        }
        if (ready_ms[q.failed] <= now) {
          pending.erase(it);
          start_job(q, now);
          started = true;
          break;
        }
        ++it;
      }
      if (!started) break;
    }
  }

  void start_job(const QueuedJob& q, SimTime now) {
    ++in_flight;
    if (span_index[q.failed] < 0) {
      span_index[q.failed] = static_cast<std::int32_t>(result.rebuilds.size());
      result.rebuilds.push_back({q.failed, now, now, 0});
      result.events.push_back(
          {now, ScenarioEventKind::kRebuildStart, q.failed});
    }

    const std::uint32_t stripe = q.job.stripe;
    const std::size_t si = instance(stripe, q.job.iteration);
    const std::uint32_t lost_pos =
        static_cast<std::uint32_t>(std::countr_zero(lost_mask[si]));
    const layout::Stripe& st = layout.stripes()[stripe];

    SimTime reads_done = now;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (p == lost_pos || !is_content(stripe, p)) continue;
      const DiskId d = cur_disk(stripe, si, p);
      reads_done = std::max(reads_done, disks[d].submit(now));
      ++result.rebuild_reads_per_disk[d];
    }

    queue.schedule(reads_done, [this, q, si, stripe, lost_pos,
                                now](SimTime t) {
      if (unrecoverable[si]) {  // second loss raced the reads
        finish_job(q, t, now);
        return;
      }
      // Target: the stripe's own spare when it is usable, the failed
      // disk's in-place replacement otherwise.
      bool to_spare = false;
      DiskId target = layout.stripes()[stripe].units[lost_pos].disk;
      if (spared()) {
        const std::uint32_t sp = spare_pos[stripe];
        const DiskId spare_disk = layout.stripes()[stripe].units[sp].disk;
        if (redirect[si] == kNone && alive[spare_disk]) {
          to_spare = true;
          target = spare_disk;
        }
      }
      const SimTime written = disks[target].submit(t);
      ++result.rebuild_writes_per_disk[target];
      queue.schedule(written, [this, q, si, stripe, lost_pos, to_spare,
                               target, now](SimTime w) {
        if (unrecoverable[si]) {
          finish_job(q, w, now);
          return;
        }
        if (to_spare && !alive[target]) {
          // The spare's disk failed while the write was in flight; the
          // rebuilt copy died with it.  Retry the job.
          --in_flight;
          pending.push_back(q);
          queue.schedule(w, [this](SimTime t2) {
            dispatch(t2);
            maybe_transition(t2);
          });
          maybe_transition(w);
          return;
        }
        lost_mask[si] &= ~(1ull << lost_pos);
        if (to_spare) redirect[si] = lost_pos;
        ++result.rebuilds[span_index[q.failed]].stripes_rebuilt;
        finish_job(q, w, now);
      });
    });
  }

  void finish_job(const QueuedJob& q, SimTime t, SimTime started) {
    --in_flight;
    job_done(q, t);
    const double pace = scheduler.pacing_delay_ms(t - started);
    if (pace > 0.0)
      dispatch_gate_ms = std::max(dispatch_gate_ms, t + pace);
    queue.schedule(t, [this](SimTime t2) {
      dispatch(t2);
      maybe_transition(t2);
    });
    maybe_transition(t);
  }

  // ------------------------------------------------------------------- run

  void finalize() {
    result.horizon_ms = queue.now();
    close_phase(result.horizon_ms);
    // Drop inert zero-duration records (cuts where several transitions
    // fired at one instant); labels may legitimately repeat afterwards.
    std::vector<PhaseRecord> kept;
    kept.reserve(result.phases.size());
    for (PhaseRecord& rec : result.phases) {
      bool inert = rec.duration_ms() == 0.0 &&
                   rec.user.read_latency_ms.count() == 0 &&
                   rec.user.write_latency_ms.count() == 0;
      if (inert) {
        for (const std::uint64_t a : rec.disk_accesses) inert = inert && a == 0;
      }
      if (!inert) kept.push_back(std::move(rec));
    }
    result.phases = std::move(kept);
    result.disk_busy_ms.reserve(num_disks);
    result.disk_accesses.reserve(num_disks);
    for (const Disk& d : disks) {
      result.disk_busy_ms.push_back(d.busy_ms());
      result.disk_accesses.push_back(d.accesses());
    }
  }
};

}  // namespace

ScenarioResult ScenarioSimulator::run(const FaultTimeline& timeline,
                                      std::span<const Request> requests,
                                      const RebuildScheduler& scheduler) const {
  for (const FaultEvent& e : timeline.failures()) {
    if (e.disk >= layout_.num_disks())
      throw std::invalid_argument("ScenarioSimulator::run: bad failed disk");
  }
  const std::uint64_t ws = working_set();
  const std::uint64_t per_iter = data_units_.size();

  Runner runner(layout_, spare_pos_, config_, scheduler);
  for (const FaultEvent& e : timeline.failures()) {
    runner.queue.schedule(e.time_ms, [&runner, e](SimTime t) {
      runner.on_failure(t, e.disk);
    });
  }
  for (const Request& req : requests) {
    if (req.logical >= ws)
      throw std::invalid_argument(
          "ScenarioSimulator::run: request beyond working set");
    const UnitRef ref = data_units_[req.logical % per_iter];
    const auto iteration =
        static_cast<std::uint32_t>(req.logical / per_iter);
    runner.queue.schedule(req.arrival_ms,
                          [&runner, &req, ref, iteration](SimTime) {
                            runner.serve(req, ref.stripe, ref.pos, iteration);
                          });
  }
  runner.queue.run();
  runner.finalize();
  return std::move(runner.result);
}

}  // namespace pdl::sim
