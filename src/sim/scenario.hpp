#pragma once
// Multi-failure scenario simulation: the generalization of ArraySimulator
// from "one failed disk, one hard-coded rebuild sweep" to an arbitrary
// FaultTimeline served by a pluggable RebuildScheduler.
//
// The engine tracks unit state at (stripe, iteration, position)
// granularity.  Reads and writes are served correctly with ANY set of
// failed disks: intact units are one access, units lost from a
// single-degraded stripe are reconstructed on the fly from the survivors,
// and a stripe instance that has lost two units (e.g. a second failure
// arriving mid-rebuild) is unrecoverable -- the scenario flags data loss,
// counts the lost stripe instances, and tallies requests that addressed
// them.
//
// Rebuild targets:
//  * dedicated replacement (Layout constructor): lost units are rewritten
//    in place on the failed disk's hot-swapped replacement, which serves
//    rebuilt units immediately and returns the disk to service when its
//    last job completes;
//  * distributed sparing (SparedLayout constructor): each lost unit is
//    rebuilt into its own stripe's spare unit on a surviving disk
//    (layout/sparing), so rebuild writes are declustered like the reads;
//    subsequent accesses follow the unit to its new home.  If a stripe's
//    spare is gone (consumed by an earlier rebuild, or it sat on a failed
//    disk), the engine falls back to in-place replacement for that stripe.
//
// The run is cut into phases at every service-state transition
// (normal -> degraded -> rebuilding -> restored; a later failure reenters
// degraded/rebuilding).  Each PhaseRecord carries the per-disk busy time
// and access counts accrued in the phase (attributed at submit time) and
// the latency of user requests that ARRIVED in the phase.  Results are
// bit-identical across runs for the same inputs: the engine draws no
// randomness and never reads the clock.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "layout/layout.hpp"
#include "layout/sparing.hpp"
#include "sim/array_sim.hpp"
#include "sim/disk.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/rebuild_scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"

namespace pdl::api {
class Array;
}

namespace pdl::sim {

/// Service state of the array during a phase.
enum class ScenarioPhase : std::uint8_t {
  kNormal = 0,      ///< no failures so far
  kDegraded = 1,    ///< >= 1 failed disk, rebuild not dispatching
  kRebuilding = 2,  ///< >= 1 failed disk, rebuild jobs in flight or queued
  kRestored = 3,    ///< all failures repaired (recoverable data rebuilt)
};

[[nodiscard]] std::string_view phase_name(ScenarioPhase phase) noexcept;

/// One contiguous span of a single service state.
struct PhaseRecord {
  ScenarioPhase phase = ScenarioPhase::kNormal;
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::uint32_t failed_disks = 0;  ///< unrepaired failures when it opened
  UserStats user;                  ///< requests that arrived in this phase
  std::vector<double> disk_busy_ms;            ///< accrued within the phase
  std::vector<std::uint64_t> disk_accesses;    ///< accrued within the phase

  [[nodiscard]] double duration_ms() const noexcept {
    return end_ms - start_ms;
  }
  /// Busy fraction of one disk over the phase (0 for empty phases).
  [[nodiscard]] double utilization(layout::DiskId disk) const;
  [[nodiscard]] double max_disk_utilization() const;
};

enum class ScenarioEventKind : std::uint8_t {
  kFailure = 0,
  kRebuildStart = 1,    ///< first job of a failure's batch dispatched
  kRepairComplete = 2,  ///< last job of a failure's batch finished
  kDataLoss = 3,        ///< a stripe instance lost its second unit
};

[[nodiscard]] std::string_view event_kind_name(
    ScenarioEventKind kind) noexcept;

struct ScenarioEvent {
  double time_ms = 0.0;
  ScenarioEventKind kind = ScenarioEventKind::kFailure;
  layout::DiskId disk = 0;

  friend bool operator==(const ScenarioEvent&, const ScenarioEvent&) = default;
};

/// One failure's rebuild, start of first job to completion of the last.
struct RebuildSpan {
  layout::DiskId disk = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::uint64_t stripes_rebuilt = 0;  ///< stripe instances restored
};

/// Everything a scenario run produced.
struct ScenarioResult {
  std::vector<PhaseRecord> phases;    ///< the normal->...->restored timeline
  std::vector<ScenarioEvent> events;  ///< time-ordered state transitions
  std::vector<RebuildSpan> rebuilds;  ///< one per failure with lost data

  UserStats user;          ///< all phases together
  double horizon_ms = 0.0; ///< completion time of the last event

  bool data_loss = false;
  double first_data_loss_ms = 0.0;
  std::uint64_t stripe_instances_lost = 0;  ///< unrecoverable (stripe, iter)s
  std::uint64_t unserved_reads = 0;   ///< reads addressing unrecoverable data
  std::uint64_t unserved_writes = 0;  ///< writes addressing unrecoverable data

  std::vector<std::uint64_t> rebuild_reads_per_disk;
  std::vector<std::uint64_t> rebuild_writes_per_disk;
  std::vector<double> disk_busy_ms;          ///< whole run
  std::vector<std::uint64_t> disk_accesses;  ///< whole run
};

/// Scenario parameters.  `rebuild_delay_ms` models failure detection plus
/// replacement hot-swap: the window between a failure and its first rebuild
/// job, during which the array serves purely degraded (the kDegraded
/// phase).
struct ScenarioConfig {
  DiskParams disk;
  std::uint32_t rebuild_depth = 4;
  std::uint32_t iterations = 1;
  double rebuild_delay_ms = 0.0;
};

/// Simulates fault/rebuild scenarios over one layout.  Stateless across
/// runs; each run() replays its inputs from time zero.
class ScenarioSimulator {
 public:
  /// Dedicated-replacement mode over a plain layout.
  ScenarioSimulator(const layout::Layout& layout, ScenarioConfig config);

  /// Distributed-sparing mode: spare units (which hold no data and are
  /// excluded from the logical address space) absorb rebuild writes.
  ScenarioSimulator(const layout::SparedLayout& spared, ScenarioConfig config);

  /// The front-door form: simulate an api::Array's layout, honoring its
  /// sparing mode.  The simulator's logical numbering matches the array's
  /// (same working set, same (stripe, position) decomposition), so
  /// Array::locate and the simulator resolve identical survivor sets.
  ScenarioSimulator(const api::Array& array, ScenarioConfig config);

  /// Logical data units addressable by workloads (excludes parity and, in
  /// distributed-sparing mode, spare units).
  [[nodiscard]] std::uint64_t working_set() const noexcept;

  [[nodiscard]] bool distributed_sparing() const noexcept {
    return !spare_pos_.empty();
  }
  [[nodiscard]] const layout::Layout& layout() const noexcept {
    return layout_;
  }

  /// Runs the scenario: user requests served under the failure timeline,
  /// with every failure's rebuild batch ordered and paced by `scheduler`.
  [[nodiscard]] ScenarioResult run(const FaultTimeline& timeline,
                                   std::span<const Request> requests,
                                   const RebuildScheduler& scheduler) const;

 private:
  void compile_tables();

  layout::Layout layout_;
  std::vector<std::uint32_t> spare_pos_;  ///< empty = dedicated replacement
  ScenarioConfig config_;

  /// logical (mod data units per iteration) -> (stripe, position).
  struct UnitRef {
    std::uint32_t stripe = 0;
    std::uint32_t pos = 0;
  };
  std::vector<UnitRef> data_units_;
};

}  // namespace pdl::sim
