#pragma once
// Small statistics collectors for simulation results.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace pdl::sim {

/// Accumulates samples and reports mean / min / max / percentiles.
class SampleStats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const double x : samples_) sum += x;
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0, 1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(rank, samples_.size() - 1)];
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace pdl::sim
