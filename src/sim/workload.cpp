#include "sim/workload.hpp"

#include <stdexcept>

namespace pdl::sim {

std::vector<Request> generate_workload(const WorkloadConfig& config) {
  if (config.working_set == 0)
    throw std::invalid_argument("generate_workload: empty working set");
  if (config.arrival_per_ms <= 0.0)
    throw std::invalid_argument("generate_workload: arrival rate must be > 0");

  std::mt19937_64 rng(config.seed);
  std::exponential_distribution<double> interarrival(config.arrival_per_ms);
  std::uniform_int_distribution<std::uint64_t> address(
      0, config.working_set - 1);
  std::bernoulli_distribution is_write(config.write_fraction);

  std::vector<Request> requests;
  double t = 0.0;
  while (true) {
    t += interarrival(rng);
    if (t >= config.duration_ms) break;
    requests.push_back({t, address(rng), is_write(rng)});
  }
  return requests;
}

}  // namespace pdl::sim
