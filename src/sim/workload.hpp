#pragma once
// Synthetic open-loop workloads: Poisson arrivals of single-unit reads and
// writes over a uniformly random working set, the OLTP-style small-access
// pattern Holland & Gibson evaluate declustering under.

#include <cstdint>
#include <random>
#include <vector>

namespace pdl::sim {

/// One user request.
struct Request {
  double arrival_ms = 0.0;
  std::uint64_t logical = 0;  ///< logical data-unit address
  bool is_write = false;
};

/// Workload parameters.
struct WorkloadConfig {
  double arrival_per_ms = 0.1;     ///< Poisson arrival rate (requests/ms)
  double write_fraction = 0.5;     ///< fraction of requests that are writes
  std::uint64_t working_set = 0;   ///< addresses drawn from [0, working_set)
  double duration_ms = 10'000.0;   ///< generation horizon
  std::uint64_t seed = 42;
};

/// Generates the full arrival sequence for a config (deterministic in the
/// seed).
[[nodiscard]] std::vector<Request> generate_workload(
    const WorkloadConfig& config);

}  // namespace pdl::sim
