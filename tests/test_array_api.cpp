// pdl::api::Array front-door tests: creation and the typed error model,
// address ops against the reference mappers, the online failure/rebuild
// state machine, persistence, and the headline differential suite proving
// that Array::locate under failures resolves exactly the survivor sets
// ScenarioSimulator reads (across >= 3 constructions and 1-2 failed
// disks, in both dedicated-replacement and distributed-sparing modes).

#include "api/array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "engine/engine.hpp"
#include "layout/mapping.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/serialize.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/rebuild_scheduler.hpp"
#include "sim/scenario.hpp"

namespace pdl::api {
namespace {

using core::ArraySpec;
using core::Construction;

// ----------------------------------------------------------- construction

TEST(ArrayCreate, BuildsAndExposesProvenance) {
  const auto array = Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok()) << array.status().to_string();
  EXPECT_EQ(array->num_disks(), 17u);
  EXPECT_GT(array->units_per_disk(), 0u);
  EXPECT_GT(array->data_units_per_iteration(), 0u);
  EXPECT_FALSE(array->description().empty());
  EXPECT_TRUE(array->healthy());
  EXPECT_EQ(array->sparing(), SparingMode::kNone);
  EXPECT_EQ(array->spared_layout(), nullptr);
}

TEST(ArrayCreate, InvalidSpecIsTypedError) {
  const auto array = Array::create({.num_disks = 4, .stripe_size = 5});
  ASSERT_FALSE(array.ok());
  EXPECT_EQ(array.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArrayCreate, StripesWiderThan64AreRejected) {
  // The online state machine keeps one 64-bit lost mask per stripe.
  const auto created = Array::create({.num_disks = 70, .stripe_size = 70});
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);

  const auto adopted = Array::adopt(layout::raid5_layout(70, 70));
  ASSERT_FALSE(adopted.ok());
  EXPECT_EQ(adopted.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArrayCreate, NoFitIsUnsupported) {
  const auto array = Array::create({.num_disks = 100, .stripe_size = 5},
                                   {.unit_budget = 10});
  ASSERT_FALSE(array.ok());
  EXPECT_EQ(array.status().code(), StatusCode::kUnsupported);
}

TEST(ArrayCreate, PinnedConstructionIsHonored) {
  const auto array =
      Array::create({.num_disks = 17, .stripe_size = 5}, {},
                    {.construction = Construction::kRingLayout});
  ASSERT_TRUE(array.ok()) << array.status().to_string();
  EXPECT_EQ(array->construction(), Construction::kRingLayout);

  // Ring layout does not apply at (33, 5).
  const auto inapplicable =
      Array::create({.num_disks = 33, .stripe_size = 5}, {},
                    {.construction = Construction::kRingLayout});
  ASSERT_FALSE(inapplicable.ok());
  EXPECT_EQ(inapplicable.status().code(), StatusCode::kUnsupported);
}

TEST(ArrayCreate, DistributedSparingNeedsRoomForData) {
  const auto too_small =
      Array::create({.num_disks = 9, .stripe_size = 2}, {},
                    {.sparing = SparingMode::kDistributed});
  ASSERT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.status().code(), StatusCode::kInvalidArgument);

  const auto spared =
      Array::create({.num_disks = 17, .stripe_size = 5}, {},
                    {.sparing = SparingMode::kDistributed});
  ASSERT_TRUE(spared.ok());
  EXPECT_EQ(spared->sparing(), SparingMode::kDistributed);
  ASSERT_NE(spared->spared_layout(), nullptr);
  EXPECT_EQ(spared->spare_positions().size(),
            spared->layout().num_stripes());
}

// ------------------------------------------------------------- address ops

TEST(ArrayAddress, MapAgreesWithAddressMapper) {
  const auto array = Array::create({.num_disks = 16, .stripe_size = 4});
  ASSERT_TRUE(array.ok());
  const layout::AddressMapper reference(array->layout());
  ASSERT_EQ(array->data_units_per_iteration(),
            reference.data_units_per_iteration());
  for (std::uint64_t logical = 0;
       logical < 2 * reference.data_units_per_iteration(); ++logical) {
    EXPECT_EQ(array->map(logical), reference.map(logical));
    EXPECT_EQ(array->parity_of(logical), reference.parity_of(logical));
  }
}

TEST(ArrayAddress, SparedNumberingSkipsSpareUnits) {
  const auto array =
      Array::create({.num_disks = 17, .stripe_size = 5}, {},
                    {.sparing = SparingMode::kDistributed});
  ASSERT_TRUE(array.ok());
  const layout::AddressMapper reference(array->layout(),
                                        array->spare_positions());
  ASSERT_EQ(array->data_units_per_iteration(),
            reference.data_units_per_iteration());
  // Each stripe contributes k-2 data units (one parity, one spare).
  EXPECT_EQ(array->data_units_per_iteration(),
            array->layout().num_stripes() * (5u - 2u));
  for (std::uint64_t logical = 0;
       logical < reference.data_units_per_iteration(); ++logical) {
    EXPECT_EQ(array->map(logical), reference.map(logical));
  }
  // No data unit maps onto a spare slot.
  for (std::uint32_t s = 0; s < array->layout().num_stripes(); ++s) {
    const auto& st = array->layout().stripes()[s];
    const auto& spare = st.units[array->spare_positions()[s]];
    EXPECT_EQ(array->mapper().logical_at({spare.disk, spare.offset}),
              layout::CompiledMapper::kSpare);
  }
}

TEST(ArrayAddress, MapBatchMatchesScalarAndChecksSpan) {
  const auto array = Array::create({.num_disks = 13, .stripe_size = 4});
  ASSERT_TRUE(array.ok());
  std::vector<std::uint64_t> logicals;
  for (std::uint64_t l = 0; l < 100; ++l) logicals.push_back(l * 37 + 5);
  std::vector<Physical> out(logicals.size());
  ASSERT_TRUE(array->map_batch(logicals, out).ok());
  for (std::size_t i = 0; i < logicals.size(); ++i)
    EXPECT_EQ(out[i], array->map(logicals[i]));

  std::vector<Physical> tiny(3);
  const Status too_small = array->map_batch(logicals, tiny);
  ASSERT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ state transitions

TEST(ArrayState, FailReplaceRebuildRoundTrip) {
  auto array_result = Array::create({.num_disks = 16, .stripe_size = 4});
  ASSERT_TRUE(array_result.ok());
  Array& array = *array_result;

  EXPECT_EQ(array.fail_disk(99).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(array.fail_disk(3).ok());
  EXPECT_EQ(array.fail_disk(3).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(array.disk_state(3).value(), DiskState::kFailed);
  EXPECT_EQ(array.num_failed(), 1u);
  EXPECT_EQ(array.lost_units(), array.units_per_disk());
  EXPECT_FALSE(array.data_loss());

  // Without a replacement every rebuild is blocked in dedicated mode.
  const auto blocked_plan = array.plan_rebuild();
  ASSERT_TRUE(blocked_plan.ok());
  EXPECT_TRUE(blocked_plan->steps.empty());
  EXPECT_EQ(blocked_plan->blocked, array.lost_units());

  ASSERT_TRUE(array.replace_disk(3).ok());
  EXPECT_EQ(array.disk_state(3).value(), DiskState::kRebuilding);
  const auto plan = array.plan_rebuild();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), array.units_per_disk());
  EXPECT_EQ(plan->blocked, 0u);
  // Every step writes the failed disk's replacement; reads spread over the
  // survivors.
  for (const RebuildStep& step : plan->steps) {
    EXPECT_FALSE(step.to_spare);
    EXPECT_EQ(step.target.disk, 3u);
  }

  const auto outcome = array.rebuild();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied, array.units_per_disk());
  EXPECT_EQ(outcome->blocked, 0u);
  EXPECT_TRUE(array.healthy());
  EXPECT_EQ(array.disk_state(3).value(), DiskState::kHealthy);
}

TEST(ArrayState, StaleStepsAreRejected) {
  auto array_result = Array::create({.num_disks = 9, .stripe_size = 3});
  ASSERT_TRUE(array_result.ok());
  Array& array = *array_result;
  ASSERT_TRUE(array.fail_disk(0).ok());
  ASSERT_TRUE(array.replace_disk(0).ok());
  const auto plan = array.plan_rebuild();
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->steps.empty());
  const RebuildStep step = plan->steps.front();
  ASSERT_TRUE(array.apply_rebuild_step(step).ok());
  // Applying the same step twice is a stale-step error.
  EXPECT_EQ(array.apply_rebuild_step(step).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ArrayState, DoubleFailureIsDataLoss) {
  // RAID5 at k = v: every stripe spans all disks, so any two failures
  // lose every stripe.
  auto array_result = Array::create({.num_disks = 5, .stripe_size = 5});
  ASSERT_TRUE(array_result.ok());
  Array& array = *array_result;
  ASSERT_TRUE(array.fail_disk(1).ok());
  ASSERT_TRUE(array.fail_disk(2).ok());
  EXPECT_TRUE(array.data_loss());
  EXPECT_EQ(array.stripes_lost(), array.layout().num_stripes());
  EXPECT_EQ(array.lost_units(), 0u);  // nothing recoverable remains

  // A unit homed on a failed disk is gone; a unit on a surviving disk of
  // the same (unrecoverable) stripe still serves directly, exactly like
  // the simulator.
  std::uint64_t gone = 0, direct = 0;
  std::vector<Physical> survivors(array.max_stripe_size());
  for (std::uint64_t l = 0; l < array.data_units_per_iteration(); ++l) {
    const bool on_failed =
        array.map(l).disk == 1 || array.map(l).disk == 2;
    const auto read = array.locate(l, survivors);
    ASSERT_TRUE(read.ok());
    if (on_failed) {
      EXPECT_EQ(read->kind, ReadPlan::Kind::kUnrecoverable);
      const auto write = array.plan_write(l, survivors);
      ASSERT_TRUE(write.ok());
      EXPECT_EQ(write->kind, WritePlan::Kind::kUnrecoverable);
      ++gone;
    } else {
      EXPECT_EQ(read->kind, ReadPlan::Kind::kDirect);
      ++direct;
    }
  }
  EXPECT_GT(gone, 0u);
  EXPECT_GT(direct, 0u);

  const auto plan = array.plan_rebuild();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->steps.empty());
  EXPECT_EQ(plan->unrecoverable, array.layout().num_stripes());
}

TEST(ArrayState, DegradedWritePlansResolveParityPeers) {
  auto array_result = Array::create({.num_disks = 13, .stripe_size = 4});
  ASSERT_TRUE(array_result.ok());
  Array& array = *array_result;
  const std::uint32_t k = 4;

  // Healthy: read-modify-write touches the data unit and its parity.
  std::vector<Physical> peers(array.max_stripe_size());
  auto write = array.plan_write(0, peers);
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->kind, WritePlan::Kind::kReadModifyWrite);
  EXPECT_EQ(write->data, array.map(0));
  EXPECT_EQ(write->parity, array.parity_of(0));

  // Fail the data unit's disk: the write folds into parity through the
  // k-2 surviving data peers.
  ASSERT_TRUE(array.fail_disk(array.map(0).disk).ok());
  write = array.plan_write(0, peers);
  ASSERT_TRUE(write.ok());
  ASSERT_EQ(write->kind, WritePlan::Kind::kReconstructWrite);
  EXPECT_EQ(write->num_peer_reads, k - 2);
  EXPECT_EQ(write->parity, array.parity_of(0));

  // A logical whose parity (but not data) died gets an unprotected write.
  const std::uint32_t failed = array.map(0).disk;
  bool checked_unprotected = false;
  for (std::uint64_t l = 0; l < array.data_units_per_iteration(); ++l) {
    if (array.parity_of(l).disk == failed && array.map(l).disk != failed) {
      write = array.plan_write(l, peers);
      ASSERT_TRUE(write.ok());
      EXPECT_EQ(write->kind, WritePlan::Kind::kUnprotectedWrite);
      EXPECT_EQ(write->data, array.map(l));
      checked_unprotected = true;
      break;
    }
  }
  EXPECT_TRUE(checked_unprotected);
}

TEST(ArrayState, DistributedSparingRebuildsWithoutReplacement) {
  auto array_result =
      Array::create({.num_disks = 17, .stripe_size = 5}, {},
                    {.sparing = SparingMode::kDistributed});
  ASSERT_TRUE(array_result.ok());
  Array& array = *array_result;

  ASSERT_TRUE(array.fail_disk(0).ok());
  const std::uint64_t lost = array.lost_units();
  ASSERT_GT(lost, 0u);

  const auto plan = array.plan_rebuild();
  ASSERT_TRUE(plan.ok());
  // Stripes whose own spare sat on disk 0 (or whose spare disk died) fall
  // back to in-place and are blocked until a replacement arrives; the rest
  // rebuild straight into spares on surviving disks.
  EXPECT_EQ(plan->steps.size() + plan->blocked, lost);
  for (const RebuildStep& step : plan->steps) {
    EXPECT_TRUE(step.to_spare);
    EXPECT_NE(step.target.disk, 0u);
  }

  const auto outcome = array.rebuild();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied + outcome->blocked, lost);

  // Rebuilt units now serve from their spare homes: locate resolves them
  // as direct reads on surviving disks.  (applied also covers rebuilt
  // parity units, so redirected data units are a subset of it.)
  std::vector<Physical> survivors(array.max_stripe_size());
  std::uint64_t redirected = 0, still_degraded = 0, on_disk0 = 0;
  for (std::uint64_t l = 0; l < array.data_units_per_iteration(); ++l) {
    if (array.map(l).disk != 0) continue;
    ++on_disk0;
    const auto read = array.locate(l, survivors);
    ASSERT_TRUE(read.ok());
    if (read->kind == ReadPlan::Kind::kDirect) {
      EXPECT_NE(read->target.disk, 0u);
      EXPECT_NE(read->target, array.map(l));  // moved off its home slot
      ++redirected;
    } else {
      EXPECT_EQ(read->kind, ReadPlan::Kind::kDegraded);  // blocked stripe
      ++still_degraded;
    }
  }
  EXPECT_GT(redirected, 0u);
  EXPECT_EQ(redirected + still_degraded, on_disk0);
  EXPECT_LE(redirected, outcome->applied);
  // Unredirected data units belong to blocked stripes (their spare was on
  // the failed disk); blocked also covers stripes whose lost unit was
  // parity.
  EXPECT_LE(still_degraded, outcome->blocked);
}

// -------------------------------------------------------------- persistence

TEST(ArrayPersistence, RoundTripsPlainAndSpared) {
  const auto original = Array::create({.num_disks = 13, .stripe_size = 4});
  ASSERT_TRUE(original.ok());
  const auto restored = Array::deserialize(original->serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  EXPECT_EQ(restored->construction(), Construction::kExternal);
  EXPECT_EQ(restored->num_disks(), original->num_disks());
  EXPECT_EQ(restored->data_units_per_iteration(),
            original->data_units_per_iteration());
  for (std::uint64_t l = 0; l < original->data_units_per_iteration(); ++l)
    EXPECT_EQ(restored->map(l), original->map(l));

  const auto spared =
      Array::create({.num_disks = 17, .stripe_size = 5}, {},
                    {.sparing = SparingMode::kDistributed});
  ASSERT_TRUE(spared.ok());
  const std::string path = ::testing::TempDir() + "/pdl_array_test.txt";
  ASSERT_TRUE(spared->save(path).ok());
  const auto reloaded = Array::load(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().to_string();
  EXPECT_EQ(reloaded->sparing(), SparingMode::kDistributed);
  EXPECT_EQ(reloaded->spare_positions(), spared->spare_positions());
  EXPECT_EQ(reloaded->data_units_per_iteration(),
            spared->data_units_per_iteration());
  std::remove(path.c_str());
}

TEST(ArrayPersistence, CodecSurvivesSerializeRoundTrip) {
  const auto rs =
      Array::create({.num_disks = 9, .stripe_size = 4}, {},
                    {.codec = core::CodecKind::kReedSolomonPQ});
  ASSERT_TRUE(rs.ok()) << rs.status().to_string();
  const std::string text = rs->serialize();
  EXPECT_EQ(text.rfind("pdl-array-codec rs", 0), 0u)
      << "serialized form must carry the codec header: " << text.substr(0, 40);
  const auto restored = Array::deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  EXPECT_EQ(restored->codec_kind(), core::CodecKind::kReedSolomonPQ);
  EXPECT_EQ(restored->num_parity_units(), 2u);
  EXPECT_EQ(restored->data_units_per_iteration(),
            rs->data_units_per_iteration());
  for (std::uint64_t l = 0; l < rs->data_units_per_iteration(); ++l)
    EXPECT_EQ(restored->map(l), rs->map(l));

  // XOR arrays keep the legacy (headerless) form, so files written by
  // earlier versions and by this one stay mutually readable.
  const auto xor_array = Array::create({.num_disks = 9, .stripe_size = 4});
  ASSERT_TRUE(xor_array.ok());
  EXPECT_EQ(xor_array->serialize().rfind("pdl-array-codec", 0),
            std::string::npos);
  EXPECT_EQ(Array::deserialize("pdl-array-codec lrc\npdl-layout 1 1\n")
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(ArrayState, ReedSolomonSurvivesTwoFailuresAndPlansBothParities) {
  auto array = Array::create({.num_disks = 17, .stripe_size = 5}, {},
                             {.codec = core::CodecKind::kReedSolomonPQ});
  ASSERT_TRUE(array.ok()) << array.status().to_string();
  EXPECT_EQ(array->num_parity_units(), 2u);

  // Healthy plans carry both parity targets in ordinal order (P then Q).
  std::array<Physical, 64> peers;
  const auto healthy_plan = array->plan_write(0, peers);
  ASSERT_TRUE(healthy_plan.ok());
  EXPECT_EQ(healthy_plan->kind, WritePlan::Kind::kReadModifyWrite);
  EXPECT_EQ(healthy_plan->num_parities, 2u);
  EXPECT_EQ(healthy_plan->parity_index[0], 0u);
  EXPECT_EQ(healthy_plan->parity_index[1], 1u);
  EXPECT_EQ(healthy_plan->parity, healthy_plan->parity_targets[0]);

  // Two failed disks: where XOR declares loss, RS still resolves every
  // logical (locate never reports kUnrecoverable, plan_write never
  // kUnrecoverable), and the erased set it reports stays within two.
  ASSERT_TRUE(array->fail_disk(0).ok());
  ASSERT_TRUE(array->fail_disk(8).ok());
  EXPECT_FALSE(array->data_loss());
  std::array<Physical, 64> survivors;
  std::array<std::uint32_t, 64> survivor_idx;
  for (std::uint64_t l = 0; l < array->data_units_per_iteration(); ++l) {
    const auto plan =
        array->locate(l, survivors, {survivor_idx.data(), 64});
    ASSERT_TRUE(plan.ok());
    ASSERT_NE(plan->kind, ReadPlan::Kind::kUnrecoverable) << "logical " << l;
    if (plan->kind == ReadPlan::Kind::kDegraded) {
      EXPECT_GE(plan->num_erased, 1u);
      EXPECT_LE(plan->num_erased, 2u);
      EXPECT_EQ(plan->num_survivors + plan->num_erased,
                plan->num_data + 2u);
    }
    const auto wplan = array->plan_write(l, peers);
    ASSERT_TRUE(wplan.ok());
    EXPECT_NE(wplan->kind, WritePlan::Kind::kUnrecoverable)
        << "logical " << l;
  }

  // A third failure is finally beyond the code.
  ASSERT_TRUE(array->fail_disk(4).ok());
  EXPECT_TRUE(array->data_loss());
}

TEST(ArrayPersistence, MalformedInputsAreTypedErrors) {
  EXPECT_EQ(Array::deserialize("garbage\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Array::load("/nonexistent/pdl_array").status().code(),
            StatusCode::kIoError);
  // A spare map colliding with parity is rejected by adopt_spared too.
  layout::Layout l(3, 1);
  l.append_stripe({0, 1, 2}, 0);
  EXPECT_EQ(
      Array::adopt_spared(layout::SparedLayout{l, {0}}).status().code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------- differential suite
//
// The satellite contract: Array::locate under failures returns exactly the
// survivor sets ScenarioSimulator reads.  For every construction that
// applies at the spec and every failed-disk set, each probed logical is
// served through a one-request scenario run; the per-disk access counts of
// that run must equal the multiset of disks in locate()'s resolution
// (one access for a direct read, one per survivor for a degraded read,
// none plus an unserved_reads tick for unrecoverable data).

struct DiffCase {
  ArraySpec spec;
  Construction construction;
  SparingMode sparing;
  std::vector<layout::DiskId> failed;
};

std::vector<std::uint64_t> probe_logicals(const Array& array,
                                          const std::vector<layout::DiskId>& failed) {
  // A mix of units homed on failed disks (degraded / unrecoverable) and
  // intact ones, capped to keep one-sim-run-per-probe affordable.
  std::vector<std::uint64_t> lost, intact;
  for (std::uint64_t l = 0; l < array.data_units_per_iteration(); ++l) {
    const bool on_failed =
        std::find(failed.begin(), failed.end(), array.map(l).disk) !=
        failed.end();
    (on_failed ? lost : intact).push_back(l);
  }
  std::vector<std::uint64_t> probes;
  for (std::size_t i = 0; i < lost.size() && probes.size() < 6; i += 7)
    probes.push_back(lost[i]);
  for (std::size_t i = 0; i < intact.size() && probes.size() < 10; i += 11)
    probes.push_back(intact[i]);
  return probes;
}

void run_differential_case(const DiffCase& test_case) {
  SCOPED_TRACE(core::construction_name(test_case.construction) + " v=" +
               std::to_string(test_case.spec.num_disks) + " k=" +
               std::to_string(test_case.spec.stripe_size) + " failures=" +
               std::to_string(test_case.failed.size()) +
               (test_case.sparing == SparingMode::kDistributed
                    ? " (distributed sparing)"
                    : " (dedicated)"));
  auto array_result = Array::create(
      test_case.spec, {},
      {.sparing = test_case.sparing, .construction = test_case.construction});
  ASSERT_TRUE(array_result.ok()) << array_result.status().to_string();
  Array& array = *array_result;

  // The simulator copies the (healthy) array's layout and sparing mode;
  // it replays the failures itself from its timeline.
  const sim::ScenarioConfig config{
      .disk = {}, .rebuild_depth = 1, .iterations = 1,
      .rebuild_delay_ms = 1e12};  // rebuild never starts: pure degraded
  const sim::ScenarioSimulator simulator(array, config);
  ASSERT_EQ(simulator.working_set(), array.data_units_per_iteration());

  std::vector<sim::FaultEvent> events;
  for (std::size_t i = 0; i < test_case.failed.size(); ++i)
    events.push_back({static_cast<double>(i), test_case.failed[i]});
  const auto timeline = sim::FaultTimeline::scripted(events);
  const auto scheduler = sim::make_fifo_scheduler();

  // Baseline run with no user traffic: whatever the scenario itself
  // accesses (the eventual rebuild) is deterministic in count, so the
  // per-disk access delta of a one-request run is exactly that request's
  // survivor reads.
  const auto baseline = simulator.run(timeline, {}, *scheduler);
  ASSERT_EQ(baseline.unserved_reads, 0u);

  for (const layout::DiskId disk : test_case.failed)
    ASSERT_TRUE(array.fail_disk(disk).ok());

  std::vector<Physical> survivors(array.max_stripe_size());
  for (const std::uint64_t logical : probe_logicals(array, test_case.failed)) {
    SCOPED_TRACE("logical " + std::to_string(logical));
    const auto read = array.locate(logical, survivors);
    ASSERT_TRUE(read.ok()) << read.status().to_string();

    // One read request, after both failures have landed (the enormous
    // rebuild delay keeps the array purely degraded at that point).
    const sim::Request request{.arrival_ms = 100.0, .logical = logical,
                               .is_write = false};
    const auto result =
        simulator.run(timeline, std::span(&request, 1), *scheduler);
    std::vector<std::uint64_t> accessed(array.num_disks(), 0);
    for (std::uint32_t d = 0; d < array.num_disks(); ++d) {
      ASSERT_GE(result.disk_accesses[d], baseline.disk_accesses[d]);
      accessed[d] = result.disk_accesses[d] - baseline.disk_accesses[d];
    }

    std::vector<std::uint64_t> expected(array.num_disks(), 0);
    switch (read->kind) {
      case ReadPlan::Kind::kDirect:
        expected[read->target.disk] = 1;
        EXPECT_EQ(result.unserved_reads, 0u);
        break;
      case ReadPlan::Kind::kDegraded:
        for (std::uint32_t i = 0; i < read->num_survivors; ++i)
          ++expected[survivors[i].disk];
        EXPECT_EQ(result.unserved_reads, 0u);
        break;
      case ReadPlan::Kind::kUnrecoverable:
        EXPECT_EQ(result.unserved_reads, 1u);
        break;
    }
    EXPECT_EQ(accessed, expected);
  }
}

TEST(ArrayDifferential, LocateMatchesScenarioSimulatorSurvivorSets) {
  // Every construction the planner ranks at (17, 5) -- ring layout,
  // removal, stairway, and the BIBD routes when the catalog provides one
  // -- plus RAID5 at (8, 8), under one and two failures, both sparing
  // modes.
  std::vector<DiffCase> cases;
  const ArraySpec spec{.num_disks = 17, .stripe_size = 5};
  std::size_t constructions = 0;
  for (const auto& plan : engine::Engine::global().rank_plans(spec)) {
    if (plan.units_per_disk > 500) continue;
    ++constructions;
    for (const SparingMode sparing :
         {SparingMode::kNone, SparingMode::kDistributed}) {
      cases.push_back({spec, plan.construction, sparing, {0}});
      cases.push_back({spec, plan.construction, sparing, {0, 8}});
    }
  }
  EXPECT_GE(constructions, 3u) << "the sweep must cover >= 3 constructions";
  cases.push_back({{.num_disks = 8, .stripe_size = 8},
                   Construction::kRaid5,
                   SparingMode::kNone,
                   {2}});
  for (const DiffCase& test_case : cases) run_differential_case(test_case);
}

// After rebuilding into distributed spares, reads follow the redirects --
// and the simulator agrees: the same scripted failure served through a
// post-rebuild scenario produces accesses only on surviving disks.
TEST(ArrayDifferential, RedirectedUnitsStayConsistentWithGeometry) {
  auto array_result =
      Array::create({.num_disks = 17, .stripe_size = 5}, {},
                    {.sparing = SparingMode::kDistributed});
  ASSERT_TRUE(array_result.ok());
  Array& array = *array_result;
  ASSERT_TRUE(array.fail_disk(0).ok());
  ASSERT_TRUE(array.rebuild().ok());

  std::vector<Physical> survivors(array.max_stripe_size());
  for (std::uint64_t l = 0; l < array.data_units_per_iteration(); ++l) {
    const auto read = array.locate(l, survivors);
    ASSERT_TRUE(read.ok());
    if (read->kind != ReadPlan::Kind::kDirect) continue;
    if (array.map(l).disk != 0) continue;
    // The redirect must land on the stripe's own spare unit.
    const auto& spared = *array.spared_layout();
    const std::uint64_t inverse =
        array.mapper().logical_at(array.map(l));
    ASSERT_EQ(inverse, l);
    bool found = false;
    for (std::uint32_t s = 0; s < spared.layout.num_stripes() && !found;
         ++s) {
      const auto& spare_unit =
          spared.layout.stripes()[s].units[spared.spare_pos[s]];
      found = Physical{spare_unit.disk, spare_unit.offset} == read->target;
    }
    EXPECT_TRUE(found) << "logical " << l;
  }
}

}  // namespace
}  // namespace pdl::api
