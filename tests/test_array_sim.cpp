#include "sim/array_sim.hpp"

#include <gtest/gtest.h>

#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/sparing.hpp"
#include "sim/reconstruction.hpp"

namespace pdl::sim {
namespace {

const DiskParams kDisk{10.0, 2.0};  // 12 ms per single-unit access

ArrayConfig config_with(std::uint32_t iterations = 1,
                        std::uint32_t depth = 2) {
  return ArrayConfig{kDisk, depth, iterations};
}

TEST(ArraySim, WorkingSetScalesWithIterations) {
  const auto layout = layout::raid5_layout(4, 4);
  const ArraySimulator sim1(layout, config_with(1));
  const ArraySimulator sim3(layout, config_with(3));
  EXPECT_EQ(sim1.working_set(), 12u);
  EXPECT_EQ(sim3.working_set(), 36u);
}

TEST(ArraySim, IdleReadLatencyIsOneAccess) {
  const auto layout = layout::raid5_layout(4, 4);
  const ArraySimulator sim(layout, config_with());
  const std::vector<Request> reqs = {{0.0, 0, false}};
  auto result = sim.run_normal(reqs);
  EXPECT_EQ(result.user.read_latency_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(result.user.read_latency_ms.mean(), 12.0);
}

TEST(ArraySim, IdleWriteLatencyIsTwoPhases) {
  // Small write: parallel reads (12 ms), then parallel writes (12 ms).
  const auto layout = layout::raid5_layout(4, 4);
  const ArraySimulator sim(layout, config_with());
  const std::vector<Request> reqs = {{0.0, 0, true}};
  auto result = sim.run_normal(reqs);
  EXPECT_EQ(result.user.write_latency_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(result.user.write_latency_ms.mean(), 24.0);
}

TEST(ArraySim, QueueingDelaysShowUp) {
  // Two simultaneous reads of the same unit serialize on one disk.
  const auto layout = layout::raid5_layout(4, 4);
  const ArraySimulator sim(layout, config_with());
  const std::vector<Request> reqs = {{0.0, 0, false}, {0.0, 0, false}};
  auto result = sim.run_normal(reqs);
  EXPECT_DOUBLE_EQ(result.user.read_latency_ms.max(), 24.0);
  EXPECT_DOUBLE_EQ(result.user.read_latency_ms.min(), 12.0);
}

TEST(ArraySim, DegradedReadFansOutToSurvivors) {
  const auto layout = layout::ring_based_layout(5, 3);
  const ArraySimulator sim(layout, config_with());
  const layout::CompiledMapper& mapper = sim.mapper();
  // Find a logical unit living on disk 0.
  std::uint64_t on_disk0 = 0;
  for (std::uint64_t l = 0; l < sim.working_set(); ++l) {
    if (mapper.map(l).disk == 0) {
      on_disk0 = l;
      break;
    }
  }
  const std::vector<Request> reqs = {{0.0, on_disk0, false}};
  auto degraded = sim.run_degraded(reqs, 0);
  // k-1 = 2 parallel reads on two different disks: latency = 12 ms, and
  // two disks were touched.
  EXPECT_DOUBLE_EQ(degraded.user.read_latency_ms.mean(), 12.0);
  std::uint64_t touched = 0;
  for (const auto a : degraded.disk_accesses) touched += a;
  EXPECT_EQ(touched, 2u);
  // The failed disk itself was never accessed.
  EXPECT_EQ(degraded.disk_accesses[0], 0u);
}

TEST(ArraySim, DegradedModeNeverTouchesFailedDisk) {
  const auto layout = layout::ring_based_layout(7, 3);
  const ArraySimulator sim(layout, config_with(2));
  const WorkloadConfig wconfig{.arrival_per_ms = 0.05,
                               .write_fraction = 0.5,
                               .working_set = sim.working_set(),
                               .duration_ms = 2000.0,
                               .seed = 11};
  const auto reqs = generate_workload(wconfig);
  const auto result = sim.run_degraded(reqs, 3);
  EXPECT_EQ(result.disk_accesses[3], 0u);
}

TEST(ArraySim, RebuildCompletesAndCountsMatchAnalysis) {
  const auto layout = layout::ring_based_layout(5, 3);
  const ArraySimulator sim(layout, config_with(2, 4));
  const auto result = sim.run_rebuild({}, /*failed=*/1);

  const auto analysis = analyze_reconstruction(layout, 1);
  // Jobs: stripes crossing disk 1, times 2 iterations.
  const std::uint64_t expected_stripes =
      static_cast<std::uint64_t>(analysis.total_units) /
      2 *  // each stripe contributes k-1 = 2 survivor units
      2;   // iterations
  EXPECT_EQ(result.stripes_rebuilt, expected_stripes);
  EXPECT_GT(result.rebuild_ms, 0.0);
  // Per-disk rebuild reads = analysis counts x iterations.
  for (layout::DiskId d = 0; d < 5; ++d) {
    EXPECT_EQ(result.rebuild_reads_per_disk[d],
              2ull * analysis.units_to_read[d])
        << "disk " << d;
  }
}

TEST(ArraySim, RebuildDepthSpeedsUpRebuild) {
  const auto layout = layout::ring_based_layout(9, 4);
  const ArraySimulator sim_slow(layout, config_with(1, 1));
  const ArraySimulator sim_fast(layout, config_with(1, 8));
  const auto slow = sim_slow.run_rebuild({}, 0);
  const auto fast = sim_fast.run_rebuild({}, 0);
  EXPECT_LT(fast.rebuild_ms, slow.rebuild_ms);
}

TEST(ArraySim, DeclusteringReducesRebuildTime) {
  // RAID5 (k = v) vs declustered (k = 3) on 9 disks with the same size:
  // the declustered rebuild reads (k-1)/(v-1) of each survivor.
  const auto declustered = layout::ring_based_layout(9, 3);  // size 24
  const auto raid5 = layout::raid5_layout(9, 24);
  const ArraySimulator sim_d(declustered, config_with(1, 4));
  const ArraySimulator sim_r(raid5, config_with(1, 4));
  const auto d = sim_d.run_rebuild({}, 0);
  const auto r = sim_r.run_rebuild({}, 0);
  EXPECT_LT(d.rebuild_ms, r.rebuild_ms)
      << "declustered rebuild must beat RAID5";
}

TEST(ArraySim, UserLatencyDuringRebuildDegradesLessWhenDeclustered) {
  const auto declustered = layout::ring_based_layout(9, 3);
  const auto raid5 = layout::raid5_layout(9, 24);
  const WorkloadConfig wconfig{.arrival_per_ms = 0.02,
                               .write_fraction = 0.3,
                               .working_set = 9 * 24 * 2 / 3,  // lower bound
                               .duration_ms = 3000.0,
                               .seed = 21};
  // Use each sim's own working set.
  const ArraySimulator sim_d(declustered, config_with(1, 2));
  const ArraySimulator sim_r(raid5, config_with(1, 2));
  auto wd = wconfig;
  wd.working_set = sim_d.working_set();
  auto wr = wconfig;
  wr.working_set = sim_r.working_set();
  const auto d = sim_d.run_rebuild(generate_workload(wd), 0);
  const auto r = sim_r.run_rebuild(generate_workload(wr), 0);
  EXPECT_LT(d.run.user.read_latency_ms.mean(),
            r.run.user.read_latency_ms.mean());
}

TEST(ArraySim, RejectsInvalidArguments) {
  const auto layout = layout::raid5_layout(4, 4);
  EXPECT_THROW(ArraySimulator(layout, ArrayConfig{kDisk, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(ArraySimulator(layout, ArrayConfig{kDisk, 1, 0}),
               std::invalid_argument);
  const ArraySimulator sim(layout, config_with());
  const std::vector<Request> beyond = {{0.0, sim.working_set(), false}};
  EXPECT_THROW(sim.run_normal(beyond), std::invalid_argument);
  EXPECT_THROW(sim.run_degraded({}, 9), std::invalid_argument);
  EXPECT_THROW(sim.run_rebuild({}, 9), std::invalid_argument);
}

// Regression: rebuild accounting splits reads from spare writes.  Before
// the split, a distributed-sparing run folded the spare-unit writes into
// the same per-disk access totals user traffic lands in, so "rebuild load
// on disk d" could not be separated from the user traffic the spare also
// serves.  Pin (a) reads-only semantics of rebuild_reads_per_disk,
// (b) writes matching layout/sparing's offline analysis, and (c) both
// being independent of concurrent user traffic.
TEST(ArraySim, DistributedRebuildSplitsReadAndWriteAccounting) {
  const auto base = layout::ring_based_layout(9, 3);
  const auto spared = layout::add_distributed_sparing(base);
  const ArraySimulator sim(spared.layout, config_with(2, 4));
  const layout::DiskId failed = 1;

  const auto quiet =
      sim.run_rebuild_distributed({}, failed, spared.spare_pos);

  // Expected reads: for each stripe that lost a non-spare unit, every unit
  // that is neither on the failed disk nor the (empty) spare is read once
  // per iteration.
  std::vector<std::uint64_t> want_reads(9, 0);
  for (std::size_t s = 0; s < spared.layout.num_stripes(); ++s) {
    const layout::Stripe& st = spared.layout.stripes()[s];
    bool lost_non_spare = false;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (st.units[p].disk == failed && p != spared.spare_pos[s])
        lost_non_spare = true;
    }
    if (!lost_non_spare) continue;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (st.units[p].disk == failed || p == spared.spare_pos[s]) continue;
      want_reads[st.units[p].disk] += 2;  // iterations
    }
  }
  const auto want_writes = layout::distributed_rebuild_writes(spared, failed);
  for (layout::DiskId d = 0; d < 9; ++d) {
    EXPECT_EQ(quiet.rebuild_reads_per_disk[d], want_reads[d]) << "disk " << d;
    EXPECT_EQ(quiet.rebuild_writes_per_disk[d], 2ull * want_writes[d])
        << "disk " << d;
    // With no user traffic the per-disk access totals decompose exactly.
    EXPECT_EQ(quiet.run.disk_accesses[d],
              quiet.rebuild_reads_per_disk[d] +
                  quiet.rebuild_writes_per_disk[d])
        << "disk " << d;
  }
  EXPECT_EQ(quiet.rebuild_writes_per_disk[failed], 0u);

  // The same rebuild under heavy user traffic (which the spare disks also
  // serve) must report identical rebuild read/write counters.
  const WorkloadConfig wconfig{.arrival_per_ms = 0.2,
                               .write_fraction = 0.5,
                               .working_set = sim.working_set(),
                               .duration_ms = 2000.0,
                               .seed = 5};
  const auto busy =
      sim.run_rebuild_distributed(generate_workload(wconfig), failed,
                                  spared.spare_pos);
  EXPECT_EQ(busy.rebuild_reads_per_disk, quiet.rebuild_reads_per_disk);
  EXPECT_EQ(busy.rebuild_writes_per_disk, quiet.rebuild_writes_per_disk);
}

TEST(ArraySim, DedicatedSpareRebuildWritesStayOffTheArray) {
  const auto layout = layout::ring_based_layout(5, 3);
  const ArraySimulator sim(layout, config_with(1, 2));
  const auto result = sim.run_rebuild({}, 0);
  for (layout::DiskId d = 0; d < 5; ++d) {
    EXPECT_EQ(result.rebuild_writes_per_disk[d], 0u) << "disk " << d;
    EXPECT_EQ(result.run.disk_accesses[d], result.rebuild_reads_per_disk[d])
        << "disk " << d;
  }
}

TEST(ArraySim, ParityFailedWriteIsSingleAccess) {
  const auto layout = layout::raid5_layout(4, 4);
  const ArraySimulator sim(layout, config_with());
  const layout::CompiledMapper& mapper = sim.mapper();
  // Find a logical whose parity is on disk 2 but data is elsewhere.
  for (std::uint64_t l = 0; l < sim.working_set(); ++l) {
    if (mapper.parity_of(l).disk == 2 && mapper.map(l).disk != 2) {
      const std::vector<Request> reqs = {{0.0, l, true}};
      const auto result = sim.run_degraded(reqs, 2);
      EXPECT_DOUBLE_EQ(result.user.write_latency_ms.mean(), 12.0);
      return;
    }
  }
  FAIL() << "no suitable logical unit found";
}

}  // namespace
}  // namespace pdl::sim
