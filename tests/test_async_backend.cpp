// pdl::io::AsyncDiskBackend + IoScheduler tests: batched-vs-sequential
// byte-identical differentials over memory and file substrates,
// coalescing correctness across unit boundaries, scheduler policy
// ordering (incl. the rebuild-deprioritizing bounded-delay
// anti-starvation guarantee), per-request kIoError surfacing with a
// fault-injecting decorator wrapped INSIDE the async engine, and the
// FileBackend O_DIRECT graceful-fallback contract.  This suite also
// runs under TSan in CI -- the engine's queues, batch states, and
// stats are exactly the shared state a race would live in.

#include "io/async_backend.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/array.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("pdl_async_test_" +
       std::to_string(static_cast<unsigned long>(::getpid()))) /
      tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> pattern(std::size_t size, std::uint8_t base) {
  std::vector<std::uint8_t> bytes(size);
  std::iota(bytes.begin(), bytes.end(), base);
  return bytes;
}

// ------------------------------------------------- batched differential

/// Issues the same randomized write-then-read plan against `candidate`
/// (batched, via execute_batch) and a plain MemoryBackend (sequential
/// reference), then asserts byte-identical read results.
void run_differential(DiskBackend& candidate, std::uint32_t num_disks,
                      std::uint64_t disk_bytes) {
  MemoryBackend reference;
  ASSERT_TRUE(reference.open({num_disks, disk_bytes}).ok());

  // Deterministic mixed plan: strided writes on every disk...
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<IoRequest> writes;
  for (std::uint32_t disk = 0; disk < num_disks; ++disk)
    for (std::uint64_t offset = 0; offset + 64 <= disk_bytes;
         offset += 192) {
      payloads.push_back(pattern(64, static_cast<std::uint8_t>(
                                         disk * 31 + offset)));
      writes.push_back(IoRequest::write_of(IoClass::kForegroundWrite, disk,
                                           offset, payloads.back()));
    }
  ASSERT_TRUE(candidate.execute_batch(writes).ok());
  for (const IoRequest& request : writes) {
    ASSERT_TRUE(request.status.ok());
    ASSERT_TRUE(reference
                    .write(request.disk, request.offset, request.write_buf)
                    .ok());
  }

  // ...then a full batched read-back of every disk, in odd-sized runs
  // so request boundaries do not line up with the write boundaries.
  std::vector<std::vector<std::uint8_t>> results;
  std::vector<IoRequest> reads;
  for (std::uint32_t disk = 0; disk < num_disks; ++disk)
    for (std::uint64_t offset = 0; offset < disk_bytes;) {
      const std::uint64_t size = std::min<std::uint64_t>(
          37 + (offset % 91), disk_bytes - offset);
      results.emplace_back(size);
      reads.push_back(IoRequest::read_of(IoClass::kForegroundRead, disk,
                                         offset, results.back()));
      offset += size;
    }
  ASSERT_TRUE(candidate.execute_batch(reads).ok());

  std::vector<std::uint8_t> expected;
  for (const IoRequest& request : reads) {
    ASSERT_TRUE(request.status.ok());
    expected.resize(request.read_buf.size());
    ASSERT_TRUE(reference.read(request.disk, request.offset, expected).ok());
    ASSERT_EQ(0, std::memcmp(request.read_buf.data(), expected.data(),
                             expected.size()))
        << "disk " << request.disk << " offset " << request.offset;
  }
}

TEST(AsyncBackend, BatchedMatchesSequentialOverMemory) {
  for (const char* scheduler :
       {"fifo", "deadline", "rebuild-deprioritizing"}) {
    SCOPED_TRACE(scheduler);
    AsyncBackendOptions options;
    options.scheduler = scheduler;
    auto backend = make_async_backend(make_memory_backend(), options);
    ASSERT_TRUE(backend->open({4, 4096}).ok());
    EXPECT_EQ(backend->name(), "async");
    EXPECT_TRUE(backend->async());
    EXPECT_EQ(backend->scheduler(), scheduler);
    run_differential(*backend, 4, 4096);
  }
}

TEST(AsyncBackend, BatchedMatchesSequentialOverFile) {
  const auto dir = fresh_dir("differential");
  auto backend = make_async_backend(
      make_file_backend({.directory = dir.string()}));
  ASSERT_TRUE(backend->open({3, 8192}).ok());
  run_differential(*backend, 3, 8192);
  // The engine decision is observable and one of the two known values.
  EXPECT_TRUE(backend->engine() == "io_uring" ||
              backend->engine() == "thread-pool");
}

TEST(AsyncBackend, SynchronousSurfaceStillWorks) {
  auto backend = make_async_backend(make_memory_backend());
  ASSERT_TRUE(backend->open({2, 1024}).ok());
  // read/write are submit-one-plus-wait; sync/discard drain first.
  const auto data = pattern(128, 7);
  ASSERT_TRUE(backend->write(1, 256, data).ok());
  std::vector<std::uint8_t> out(128);
  ASSERT_TRUE(backend->read(1, 256, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(backend->sync(1).ok());
  ASSERT_TRUE(backend->discard(1, 0xEE).ok());
  ASSERT_TRUE(backend->read(1, 256, out).ok());
  for (const auto b : out) EXPECT_EQ(b, 0xEE);
  // The decorator must not leak a memory view (bytes must cross the
  // queues for scheduling/coalescing to apply).
  EXPECT_TRUE(backend->memory_view(0).empty());
}

// ------------------------------------------------------------ coalescing

TEST(AsyncBackend, CoalescesAdjacentUnitsCorrectly) {
  constexpr std::uint32_t kUnit = 512;
  AsyncBackendOptions options;
  options.coalesce = true;
  // A small per-op latency on the inner backend holds the drain loop on
  // its first dispatch long enough for the rest of the batch to pile up
  // in the queue -- making the "requests were pending together, so they
  // merged" assertion deterministic instead of a race with the worker.
  FaultInjectionOptions slow;
  slow.read_latency_us = 2000;
  slow.write_latency_us = 2000;
  auto backend = make_async_backend(
      make_fault_injection_backend(make_memory_backend(), slow), options);
  ASSERT_TRUE(backend->open({1, 16 * kUnit}).ok());

  // Eight exactly-adjacent unit writes in one batch: the single disk
  // queue sees them together, so they must merge into few substrate
  // ops -- and every unit must land at ITS offset (the merge math is
  // what a bug would scramble).
  std::vector<std::vector<std::uint8_t>> units;
  std::vector<IoRequest> writes;
  for (std::uint32_t i = 0; i < 8; ++i) {
    units.push_back(pattern(kUnit, static_cast<std::uint8_t>(i * 16 + 1)));
    writes.push_back(IoRequest::write_of(IoClass::kForegroundWrite, 0,
                                         static_cast<std::uint64_t>(i) *
                                             kUnit,
                                         units.back()));
  }
  ASSERT_TRUE(backend->execute_batch(writes).ok());

  // Read back through adjacent unit reads -- the scatter side of the
  // same merge machinery.
  std::vector<std::vector<std::uint8_t>> out(8,
                                             std::vector<std::uint8_t>(kUnit));
  std::vector<IoRequest> reads;
  for (std::uint32_t i = 0; i < 8; ++i)
    reads.push_back(IoRequest::read_of(IoClass::kForegroundRead, 0,
                                       static_cast<std::uint64_t>(i) * kUnit,
                                       out[i]));
  ASSERT_TRUE(backend->execute_batch(reads).ok());
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_EQ(out[i], units[i]) << "unit " << i;

  const AsyncBackendStats stats = backend->stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_GT(stats.coalesced, 0u) << "adjacent same-direction requests on one "
                                    "disk should have merged";
  EXPECT_LT(stats.substrate_ops, stats.submitted);
}

TEST(AsyncBackend, CoalescingRespectsMaxBytesAndDirection) {
  constexpr std::uint32_t kUnit = 512;
  AsyncBackendOptions options;
  options.coalesce = true;
  options.max_coalesced_bytes = 2 * kUnit;  // merge at most two units
  auto backend = make_async_backend(make_memory_backend(), options);
  ASSERT_TRUE(backend->open({1, 16 * kUnit}).ok());

  // Alternating write/read at adjacent offsets: direction flips forbid
  // merging across neighbours, so everything must still be correct.
  const auto w0 = pattern(kUnit, 1);
  const auto w2 = pattern(kUnit, 101);
  std::vector<std::uint8_t> r1(kUnit), r3(kUnit);
  std::vector<IoRequest> mixed;
  mixed.push_back(IoRequest::write_of(IoClass::kForegroundWrite, 0, 0, w0));
  mixed.push_back(IoRequest::read_of(IoClass::kForegroundRead, 0, kUnit, r1));
  mixed.push_back(
      IoRequest::write_of(IoClass::kForegroundWrite, 0, 2 * kUnit, w2));
  mixed.push_back(
      IoRequest::read_of(IoClass::kForegroundRead, 0, 3 * kUnit, r3));
  ASSERT_TRUE(backend->execute_batch(mixed).ok());

  std::vector<std::uint8_t> check(kUnit);
  ASSERT_TRUE(backend->read(0, 0, check).ok());
  EXPECT_EQ(check, w0);
  ASSERT_TRUE(backend->read(0, 2 * kUnit, check).ok());
  EXPECT_EQ(check, w2);
  // The reads hit never-written ranges: all zeros.
  EXPECT_TRUE(std::all_of(r1.begin(), r1.end(),
                          [](std::uint8_t b) { return b == 0; }));
  EXPECT_TRUE(std::all_of(r3.begin(), r3.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

// ------------------------------------------------------------ schedulers

TEST(IoScheduler, FifoPicksLowestSeq) {
  auto fifo = make_fifo_io_scheduler();
  const PendingIo pending[] = {
      {IoClass::kRebuild, IoRequest::Op::kRead, 0, 64, 7, 0},
      {IoClass::kForegroundRead, IoRequest::Op::kRead, 64, 64, 3, 0},
      {IoClass::kScrub, IoRequest::Op::kRead, 128, 64, 5, 0},
  };
  EXPECT_EQ(fifo->pick(pending, 1000), 1u);  // seq 3 is oldest
}

TEST(IoScheduler, DeadlineLetsForegroundOvertakeRebuild) {
  auto deadline = make_deadline_io_scheduler();  // fg read target 500us
  // Rebuild enqueued earlier, foreground later: the tighter foreground
  // target (500us vs 20000us) must win anyway.
  const PendingIo pending[] = {
      {IoClass::kRebuild, IoRequest::Op::kRead, 0, 64, 1, 0},
      {IoClass::kForegroundRead, IoRequest::Op::kRead, 64, 64, 2, 100},
  };
  EXPECT_EQ(deadline->pick(pending, 200), 1u);
  // ...but a rebuild request far past its own deadline gets served.
  const PendingIo aged[] = {
      {IoClass::kRebuild, IoRequest::Op::kRead, 0, 64, 1, 0},
      {IoClass::kForegroundRead, IoRequest::Op::kRead, 64, 64, 2, 25000},
  };
  EXPECT_EQ(deadline->pick(aged, 25100), 0u);  // 0+20000 < 25000+500
}

TEST(IoScheduler, RebuildDeprioritizingHasBoundedDelay) {
  auto scheduler = make_rebuild_deprioritizing_io_scheduler(/*max=*/1000);
  const PendingIo pending[] = {
      {IoClass::kRebuild, IoRequest::Op::kRead, 0, 64, 1, 0},
      {IoClass::kForegroundRead, IoRequest::Op::kRead, 64, 64, 2, 500},
  };
  // Below the bound: foreground first even though rebuild is older.
  EXPECT_EQ(scheduler->pick(pending, 999), 1u);
  // At/over the bound the rebuild request jumps the queue -- the
  // anti-starvation guarantee: no request waits longer than the bound
  // while the disk dispatches.
  EXPECT_EQ(scheduler->pick(pending, 1000), 0u);
  EXPECT_EQ(scheduler->pick(pending, 5000), 0u);
  // Idle disk (only background pending): dispatch immediately.
  const PendingIo only_background[] = {
      {IoClass::kScrub, IoRequest::Op::kRead, 0, 64, 9, 100},
  };
  EXPECT_EQ(scheduler->pick(only_background, 150), 0u);
}

TEST(IoScheduler, FactoryRejectsUnknownNames) {
  EXPECT_THROW((void)make_io_scheduler("elevator"), std::invalid_argument);
  for (const auto name : io_scheduler_names())
    EXPECT_EQ(make_io_scheduler(name)->name(), name);
}

TEST(AsyncBackend, RebuildTrafficCompletesUnderForegroundLoad) {
  // Integration form of the bounded-delay guarantee: a rebuild batch
  // submitted into a continuous foreground stream must complete (a
  // starved queue would hang this wait forever).
  AsyncBackendOptions options;
  options.scheduler = "rebuild-deprioritizing";
  auto backend = make_async_backend(make_memory_backend(), options);
  ASSERT_TRUE(backend->open({1, 1 << 20}).ok());

  // Foreground reads stay in the upper half of the disk, rebuild writes
  // in the lower 128 KiB: disjoint ranges, as the overlap contract (and
  // TSan) demand.
  constexpr std::uint64_t kHalf = 1u << 19;
  std::atomic<bool> stop{false};
  std::thread foreground([&] {
    std::vector<std::uint8_t> buf(4096);
    std::uint64_t offset = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(backend->read(0, kHalf + offset, buf).ok());
      offset = (offset + 4096) % kHalf;
    }
  });

  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<IoRequest> rebuild;
  for (std::uint32_t i = 0; i < 32; ++i) {
    payloads.push_back(pattern(4096, static_cast<std::uint8_t>(i)));
    rebuild.push_back(IoRequest::write_of(IoClass::kRebuild, 0,
                                          static_cast<std::uint64_t>(i) *
                                              4096,
                                          payloads.back()));
  }
  auto submission = backend->submit(rebuild);
  EXPECT_TRUE(backend->wait(submission).ok());
  for (const IoRequest& request : rebuild) EXPECT_TRUE(request.status.ok());

  stop.store(true, std::memory_order_relaxed);
  foreground.join();

  const AsyncBackendStats stats = backend->stats();
  EXPECT_EQ(stats.by_class[static_cast<std::size_t>(IoClass::kRebuild)], 32u);
  EXPECT_GT(stats.by_class[static_cast<std::size_t>(IoClass::kForegroundRead)],
            0u);
}

// ------------------------------------------- fault injection inside async

TEST(AsyncBackend, FaultDecoratorInsideEngineSurfacesPerRequestErrors) {
  // The decorator sits INSIDE the async engine: the queues dispatch to
  // it, so injected kIoError must come back attached to the individual
  // request that hit it, not to the batch as a whole.
  FaultInjectionOptions faults;
  faults.read_error_probability = 1.0;  // every read fails...
  faults.write_error_probability = 0;   // ...no write does
  AsyncBackendOptions options;
  options.coalesce = false;  // one request = one inner op = one fault draw
  auto backend = make_async_backend(
      make_fault_injection_backend(make_memory_backend(), faults), options);
  ASSERT_TRUE(backend->open({2, 4096}).ok());

  const auto data = pattern(256, 3);
  std::vector<std::uint8_t> out_a(256), out_b(256);
  std::vector<IoRequest> batch;
  batch.push_back(IoRequest::read_of(IoClass::kForegroundRead, 0, 0, out_a));
  batch.push_back(IoRequest::write_of(IoClass::kForegroundWrite, 1, 0, data));
  batch.push_back(IoRequest::read_of(IoClass::kForegroundRead, 1, 512, out_b));

  const Status first = backend->execute_batch(batch);
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_EQ(batch[0].status.code(), StatusCode::kIoError);
  EXPECT_TRUE(batch[1].status.ok()) << batch[1].status.message();
  EXPECT_EQ(batch[2].status.code(), StatusCode::kIoError);

  // Both failures were injected by the wrapped decorator -- i.e. the
  // faults really did surface from INSIDE the engine, per request.
  auto* faulty = dynamic_cast<FaultInjectionBackend*>(&backend->inner());
  ASSERT_NE(faulty, nullptr);
  EXPECT_EQ(faulty->stats().injected_read_errors, 2u);
  EXPECT_EQ(faulty->stats().injected_write_errors, 0u);
}

TEST(AsyncBackend, OutOfRangeDiskFailsThatRequestOnly) {
  auto backend = make_async_backend(make_memory_backend());
  ASSERT_TRUE(backend->open({2, 1024}).ok());
  const auto data = pattern(64, 9);
  std::vector<std::uint8_t> out(64);
  std::vector<IoRequest> batch;
  batch.push_back(IoRequest::write_of(IoClass::kForegroundWrite, 0, 0, data));
  batch.push_back(IoRequest::write_of(IoClass::kForegroundWrite, 7, 0, data));
  batch.push_back(IoRequest::read_of(IoClass::kForegroundRead, 0, 0, out));
  EXPECT_EQ(backend->execute_batch(batch).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch[0].status.ok());
  EXPECT_EQ(batch[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch[2].status.ok());
  EXPECT_EQ(out, data);
}

// --------------------------------------------------- store-level (async)

TEST(AsyncBackend, StoreServesDegradedAndRebuildsOverAsyncEngine) {
  // End-to-end: StripeStore over async-over-memory (no zero-copy views,
  // so every hot path issues real batched submissions), through failure,
  // degraded service, and rebuild.
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok());
  auto store = StripeStore::create(
      std::move(array).value(), {.unit_bytes = 512, .iterations = 2},
      make_async_backend(make_memory_backend()));
  ASSERT_TRUE(store.ok());

  const std::uint64_t kSeed = 42;
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  ASSERT_TRUE(store->fail_disk(3).ok());

  // Degraded reads reconstruct through ONE batched survivor fan-in.
  std::vector<std::uint8_t> unit(store->unit_bytes());
  std::vector<std::uint8_t> expected(store->unit_bytes());
  std::uint64_t degraded_seen = 0;
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical) {
    ReadReceipt receipt;
    ASSERT_TRUE(store->read(logical, unit, &receipt).ok()) << logical;
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << logical;
    if (receipt.kind == api::ReadPlan::Kind::kDegraded) ++degraded_seen;
  }
  EXPECT_GT(degraded_seen, 0u);

  // Batched multi-unit reads agree with the single-unit path.
  std::vector<std::uint64_t> logicals;
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       logical += 3)
    logicals.push_back(logical);
  std::vector<std::uint8_t> bytes(logicals.size() * store->unit_bytes());
  std::vector<Status> statuses(logicals.size());
  ASSERT_TRUE(store->read_batch(logicals, bytes, statuses).ok());
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << logicals[i];
    canonical_fill(logicals[i], kSeed, expected);
    EXPECT_EQ(0, std::memcmp(bytes.data() + i * store->unit_bytes(),
                             expected.data(), expected.size()))
        << logicals[i];
  }

  // Rebuild (kRebuild-tagged batched fan-ins) restores direct service.
  ASSERT_TRUE(store->replace_disk(3).ok());
  auto outcome = store->rebuild();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->blocked, 0u);
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical) {
    ReadReceipt receipt;
    ASSERT_TRUE(store->read(logical, unit, &receipt).ok());
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << logical;
    EXPECT_EQ(receipt.kind, api::ReadPlan::Kind::kDirect) << logical;
  }

  const auto* async =
      dynamic_cast<AsyncDiskBackend*>(&store->backend());
  ASSERT_NE(async, nullptr);
  const AsyncBackendStats stats = async->stats();
  EXPECT_GT(stats.by_class[static_cast<std::size_t>(IoClass::kRebuild)], 0u);
  EXPECT_EQ(stats.submitted, stats.completed);
}

TEST(AsyncBackend, ConcurrentDriverRunStaysCanonical) {
  // The TSan target: many driver threads, deep batched reads, async
  // queues, shard locks, and engine stats all racing.
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok());
  auto store = StripeStore::create(std::move(array).value(),
                                   {.unit_bytes = 256, .iterations = 1},
                                   make_async_backend(make_memory_backend()));
  ASSERT_TRUE(store.ok());
  const std::uint64_t kSeed = 7;
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());

  WorkloadOptions options;
  options.num_threads = 4;
  options.ops_per_thread = 400;
  options.read_fraction = 0.7;
  options.queue_depth = 8;
  options.seed = kSeed;
  options.verify_reads = true;
  WorkloadDriver driver(*store, options);
  const WorkloadStats stats = driver.run();

  EXPECT_EQ(stats.reads + stats.writes, 4u * 400u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);
  // The driver detected the async backend and issued deep batches.
  EXPECT_GT(stats.read_batches, 0u);
  EXPECT_GT(stats.achieved_depth(), 1.0);
  EXPECT_EQ(stats.read_latency_us.size(), stats.reads);
}

// ----------------------------------------------------- FileBackend direct

TEST(FileBackendDirect, RoundTripsWithGracefulFallback) {
  const auto dir = fresh_dir("direct");
  FileBackend backend({.directory = dir.string(), .direct_io = true});
  ASSERT_TRUE(backend.open({2, 64 * 4096}).ok());

  // Whatever the filesystem decided about O_DIRECT (tmpfs refuses,
  // ext4/xfs accept), aligned I/O must round-trip; the flag only
  // reports which mode is engaged.
  const bool engaged = backend.direct_io_active();
  EXPECT_EQ(backend.io_alignment(), engaged ? 4096u : 1u);
  EXPECT_GE(backend.native_handle(0), 0);
  EXPECT_EQ(backend.native_handle(9), -1);

  const auto aligned = pattern(4096, 11);
  ASSERT_TRUE(backend.write(0, 8192, aligned).ok());
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(backend.read(0, 8192, out).ok());
  EXPECT_EQ(out, aligned);
  EXPECT_EQ(backend.direct_io_active(), engaged)
      << "aligned ops must not change the mode";

  // A misaligned op triggers the sticky downgrade -- and still works.
  const auto odd = pattern(100, 23);
  ASSERT_TRUE(backend.write(1, 50, odd).ok());
  EXPECT_FALSE(backend.direct_io_active());
  EXPECT_EQ(backend.io_alignment(), 1u);
  std::vector<std::uint8_t> odd_out(100);
  ASSERT_TRUE(backend.read(1, 50, odd_out).ok());
  EXPECT_EQ(odd_out, odd);
  // The earlier aligned write is still readable after the downgrade.
  ASSERT_TRUE(backend.read(0, 8192, out).ok());
  EXPECT_EQ(out, aligned);
}

TEST(FileBackendDirect, AsyncOverDirectFileServesStore) {
  // The full PR-6 stack: StripeStore -> AsyncDiskBackend -> FileBackend
  // (direct I/O requested) with 4096-byte units, through a failure and
  // rebuild cycle.
  const auto dir = fresh_dir("direct_store");
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok());
  auto store = StripeStore::create(
      std::move(array).value(), {.unit_bytes = 4096, .iterations = 1},
      make_async_backend(
          make_file_backend({.directory = dir.string(), .direct_io = true})));
  ASSERT_TRUE(store.ok());

  const std::uint64_t kSeed = 99;
  ASSERT_TRUE(fill_canonical(*store, 0, 64, kSeed).ok());
  ASSERT_TRUE(store->fail_disk(0).ok());
  ASSERT_TRUE(store->replace_disk(0).ok());
  auto outcome = store->rebuild();
  ASSERT_TRUE(outcome.ok());

  std::vector<std::uint8_t> unit(store->unit_bytes());
  std::vector<std::uint8_t> expected(store->unit_bytes());
  for (std::uint64_t logical = 0; logical < 64; ++logical) {
    ASSERT_TRUE(store->read(logical, unit).ok()) << logical;
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << logical;
  }
}

}  // namespace
}  // namespace pdl::io
