#include "design/bibd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pdl::design {
namespace {

// The Fano plane: the unique (7, 3, 1) design.
BlockDesign fano_plane() {
  BlockDesign d;
  d.v = 7;
  d.k = 3;
  d.blocks = {{0, 1, 2}, {0, 3, 4}, {0, 5, 6}, {1, 3, 5},
              {1, 4, 6}, {2, 3, 6}, {2, 4, 5}};
  return d;
}

TEST(Bibd, VerifiesFanoPlane) {
  const auto check = verify_bibd(fano_plane());
  ASSERT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.params.v, 7u);
  EXPECT_EQ(check.params.k, 3u);
  EXPECT_EQ(check.params.b, 7u);
  EXPECT_EQ(check.params.r, 3u);
  EXPECT_EQ(check.params.lambda, 1u);
}

TEST(Bibd, DesignParamsFormula) {
  const auto params = design_params(fano_plane());
  EXPECT_EQ(params.b, 7u);
  EXPECT_EQ(params.r, 3u);
  EXPECT_EQ(params.lambda, 1u);
  EXPECT_EQ(params.to_string(), "BIBD(v=7, k=3, b=7, r=3, lambda=1)");
}

TEST(Bibd, RejectsWrongBlockSize) {
  auto d = fano_plane();
  d.blocks[2] = {0, 5};
  const auto check = verify_bibd(d);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.errors.empty());
}

TEST(Bibd, RejectsElementOutOfRange) {
  auto d = fano_plane();
  d.blocks[0] = {0, 1, 7};
  EXPECT_FALSE(verify_bibd(d).ok);
}

TEST(Bibd, RejectsRepeatedElementInBlock) {
  auto d = fano_plane();
  d.blocks[0] = {0, 1, 1};
  EXPECT_FALSE(verify_bibd(d).ok);
}

TEST(Bibd, RejectsUnbalancedReplication) {
  auto d = fano_plane();
  d.blocks.pop_back();
  EXPECT_FALSE(verify_bibd(d).ok);
}

TEST(Bibd, RejectsUnbalancedPairs) {
  auto d = fano_plane();
  d.blocks[6] = d.blocks[0];
  EXPECT_FALSE(verify_bibd(d).ok);
}

TEST(Bibd, RejectsEmptyOrDegenerate) {
  BlockDesign d;
  d.v = 5;
  d.k = 3;
  EXPECT_FALSE(verify_bibd(d).ok);  // no blocks
  d.k = 1;
  d.blocks = {{0}};
  EXPECT_FALSE(verify_bibd(d).ok);  // k < 2
  d.v = 1;
  EXPECT_FALSE(verify_bibd(d).ok);
}

TEST(Bibd, AcceptsUnsortedBlocks) {
  auto d = fano_plane();
  for (auto& block : d.blocks) std::reverse(block.begin(), block.end());
  EXPECT_TRUE(verify_bibd(d).ok);
}

TEST(Bibd, BlockMultiplicities) {
  auto d = fano_plane();
  d.blocks.push_back({2, 1, 0});  // duplicate of block 0, different order
  const auto counts = block_multiplicities(d);
  std::uint64_t total = 0;
  bool found_double = false;
  for (const auto& [block, count] : counts) {
    total += count;
    if (block == std::vector<algebra::Elem>{0, 1, 2}) {
      EXPECT_EQ(count, 2u);
      found_double = true;
    }
  }
  EXPECT_TRUE(found_double);
  EXPECT_EQ(total, d.blocks.size());
}

TEST(Bibd, ReduceRedundancyRemovesUniformDuplication) {
  auto d = fano_plane();
  BlockDesign tripled;
  tripled.v = d.v;
  tripled.k = d.k;
  for (int copy = 0; copy < 3; ++copy) {
    for (const auto& block : d.blocks) tripled.blocks.push_back(block);
  }
  const auto result = reduce_redundancy(tripled);
  EXPECT_EQ(result.factor, 3u);
  EXPECT_EQ(result.design.b(), 7u);
  EXPECT_TRUE(verify_bibd(result.design).ok);
}

TEST(Bibd, ReduceRedundancyOnIrreducibleDesignIsIdentityUpToOrder) {
  const auto result = reduce_redundancy(fano_plane());
  EXPECT_EQ(result.factor, 1u);
  EXPECT_EQ(result.design.b(), 7u);
}

TEST(Bibd, ReduceByFactorValidatesDivisibility) {
  auto d = fano_plane();
  BlockDesign doubled;
  doubled.v = d.v;
  doubled.k = d.k;
  for (int copy = 0; copy < 2; ++copy) {
    for (const auto& block : d.blocks) doubled.blocks.push_back(block);
  }
  EXPECT_EQ(reduce_by_factor(doubled, 2).b(), 7u);
  EXPECT_EQ(reduce_by_factor(doubled, 1).b(), 14u);
  EXPECT_THROW(reduce_by_factor(doubled, 4), std::invalid_argument);
  EXPECT_THROW(reduce_by_factor(doubled, 0), std::invalid_argument);
}

TEST(Bibd, ReductionPreservesBibdParameters) {
  auto d = fano_plane();
  BlockDesign doubled;
  doubled.v = d.v;
  doubled.k = d.k;
  for (int copy = 0; copy < 2; ++copy) {
    for (const auto& block : d.blocks) doubled.blocks.push_back(block);
  }
  const auto before = verify_bibd(doubled);
  ASSERT_TRUE(before.ok);
  EXPECT_EQ(before.params.lambda, 2u);
  const auto after = verify_bibd(reduce_by_factor(doubled, 2));
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.params.lambda, 1u);
  EXPECT_EQ(after.params.r, before.params.r / 2);
}

}  // namespace
}  // namespace pdl::design
