#include "layout/bibd_layout.hpp"

#include <gtest/gtest.h>

#include "design/catalog.hpp"
#include "design/complete_design.hpp"
#include "design/ring_design.hpp"
#include "design/subfield_design.hpp"
#include "flow/parity_assign.hpp"
#include "layout/metrics.hpp"

namespace pdl::layout {
namespace {

TEST(HollandGibson, SizeAndPerfectParityBalance) {
  // Fano-like: best design for (7, 3) via catalog.
  const auto design = design::build_best_design(7, 3);
  const auto params = design::design_params(design);
  const Layout l = holland_gibson_layout(design);
  EXPECT_EQ(l.num_disks(), 7u);
  EXPECT_EQ(l.units_per_disk(), design.k * params.r);
  EXPECT_TRUE(l.validate().empty());

  const auto m = compute_metrics(l);
  // Each disk holds exactly r parity units (one per block containing it).
  EXPECT_EQ(m.min_parity_units, params.r);
  EXPECT_EQ(m.max_parity_units, params.r);
  EXPECT_DOUBLE_EQ(m.max_parity_overhead, 1.0 / design.k);
  // Reconstruction workload (k-1)/(v-1) exactly.
  EXPECT_DOUBLE_EQ(m.max_recon_workload,
                   static_cast<double>(design.k - 1) / (design.v - 1));
  EXPECT_DOUBLE_EQ(m.min_recon_workload, m.max_recon_workload);
}

TEST(HollandGibson, Figure3ShapeForV4K3) {
  // Figure 3: complete design for v=4, k=3 (b=4), replicated k=3 times.
  const auto design = design::make_complete_design(4, 3);
  const Layout l = holland_gibson_layout(design);
  EXPECT_EQ(l.num_disks(), 4u);
  EXPECT_EQ(l.units_per_disk(), 9u);  // k * r = 3 * 3
  EXPECT_EQ(l.num_stripes(), 12u);
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.min_parity_units, 3u);
  EXPECT_EQ(m.max_parity_units, 3u);
}

TEST(FlowBalanced, SingleCopyWithinOneParityUnit) {
  // (7,3): the catalog's best design has v | b, so a single copy is
  // already perfectly balanced at b/v parity units per disk.
  const auto best = design::build_best_design(7, 3);
  const auto params = design::design_params(best);
  ASSERT_EQ(params.b % 7, 0u);
  const Layout l = flow_balanced_layout(best, 1);
  EXPECT_EQ(l.units_per_disk(), params.r);
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.min_parity_units, params.b / 7);
  EXPECT_EQ(m.max_parity_units, params.b / 7);

  // (16,4) subfield design: b = 20, v = 16 -> 20/16 not integral; counts
  // must be floor/ceil of b/v = 1.25.
  const auto sub = design::make_subfield_design(16, 4);
  const Layout l2 = flow_balanced_layout(sub, 1);
  const auto m2 = compute_metrics(l2);
  EXPECT_EQ(m2.min_parity_units, 1u);
  EXPECT_EQ(m2.max_parity_units, 2u);
  EXPECT_TRUE(l2.validate().empty());
}

TEST(FlowBalanced, KCopyReductionVersusHollandGibson) {
  // The headline of Section 4: the flow method needs 1 copy where Holland-
  // Gibson uses k.
  const auto design = design::build_best_design(13, 4);
  const Layout hg = holland_gibson_layout(design);
  const Layout flow = flow_balanced_layout(design, 1);
  EXPECT_EQ(hg.units_per_disk(), design.k * flow.units_per_disk());
  // And the flow layout's parity is still within one unit across disks.
  const auto m = compute_metrics(flow);
  EXPECT_LE(m.max_parity_units - m.min_parity_units, 1u);
}

TEST(FlowBalanced, PerfectlyBalancedLayoutUsesLcmCopies) {
  // (16, 4) subfield: b = 20, v = 16, lcm(20,16)/20 = 4 copies.
  const auto design = design::make_subfield_design(16, 4);
  const Layout l = perfectly_balanced_layout(design);
  const auto params = design::design_params(design);
  EXPECT_EQ(l.units_per_disk(), 4 * params.r);
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.min_parity_units, m.max_parity_units)
      << "lcm copies must yield perfect parity balance (Cor 17)";
}

TEST(FlowBalanced, MultiCopyCountsScale) {
  const auto design = design::build_best_design(7, 3);
  const auto params = design::design_params(design);
  const Layout l = flow_balanced_layout(design, 3);
  EXPECT_EQ(l.num_stripes(), 3 * params.b);
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.min_parity_units, 3 * params.b / 7);
  EXPECT_EQ(m.max_parity_units, 3 * params.b / 7);
}

TEST(FlowBalanced, RejectsZeroCopies) {
  const auto design = design::build_best_design(7, 3);
  EXPECT_THROW(flow_balanced_layout(design, 0), std::invalid_argument);
  EXPECT_THROW(round_robin_parity_layout(design, 0), std::invalid_argument);
}

TEST(RoundRobinBaseline, CanBeWorseThanFlow) {
  // Round-robin parity over block positions ignores which disks the
  // positions land on; across many designs it is at best as balanced as
  // the flow method.  Verify flow <= round-robin spread on a concrete case.
  const auto design = design::make_subfield_design(16, 4);
  const auto flow_m = compute_metrics(flow_balanced_layout(design, 1));
  const auto rr_m = compute_metrics(round_robin_parity_layout(design, 1));
  const auto flow_spread = flow_m.max_parity_units - flow_m.min_parity_units;
  const auto rr_spread = rr_m.max_parity_units - rr_m.min_parity_units;
  EXPECT_LE(flow_spread, rr_spread);
  EXPECT_LE(flow_spread, 1u);
}

TEST(BibdLayouts, ReconstructionWorkloadUnaffectedByParityPlacement) {
  // Condition 3 depends only on the stripe structure, not parity choice.
  const auto design = design::build_best_design(13, 4);
  const auto m1 = compute_metrics(flow_balanced_layout(design, 1));
  const auto m2 = compute_metrics(round_robin_parity_layout(design, 1));
  EXPECT_EQ(m1.max_recon_units, m2.max_recon_units);
  EXPECT_EQ(m1.min_recon_units, m2.min_recon_units);
}

}  // namespace
}  // namespace pdl::layout
