#include "flow/bounded_flow.hpp"

#include <gtest/gtest.h>

namespace pdl::flow {
namespace {

TEST(BoundedFlow, NoLowerBoundsReducesToMaxFlow) {
  BoundedFlowProblem p(4);
  p.add_edge(0, 1, 0, 4);
  p.add_edge(1, 3, 0, 4);
  p.add_edge(0, 2, 0, 6);
  p.add_edge(2, 3, 0, 5);
  const auto value = p.solve_max_flow(0, 3);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 9);
}

TEST(BoundedFlow, RespectsLowerBounds) {
  // Two parallel s->t paths; the lower path is forced to carry >= 2.
  BoundedFlowProblem p(4);
  const auto top = p.add_edge(0, 1, 0, 10);
  const auto top2 = p.add_edge(1, 3, 0, 10);
  const auto bottom = p.add_edge(0, 2, 2, 3);
  const auto bottom2 = p.add_edge(2, 3, 2, 3);
  const auto value = p.solve_max_flow(0, 3);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 13);
  EXPECT_GE(p.flow_on(bottom), 2);
  EXPECT_LE(p.flow_on(bottom), 3);
  EXPECT_EQ(p.flow_on(bottom), p.flow_on(bottom2));
  EXPECT_EQ(p.flow_on(top), p.flow_on(top2));
}

TEST(BoundedFlow, DetectsInfeasibility) {
  // Edge requires >= 5 but downstream capacity is 2.
  BoundedFlowProblem p(3);
  p.add_edge(0, 1, 5, 10);
  p.add_edge(1, 2, 0, 2);
  EXPECT_FALSE(p.solve_max_flow(0, 2).has_value());
}

TEST(BoundedFlow, InfeasibleWhenInternalNodeCannotAbsorbLowerBound) {
  BoundedFlowProblem p(4);
  p.add_edge(0, 1, 3, 3);
  p.add_edge(1, 3, 0, 2);  // node 1 cannot forward 3
  p.add_edge(0, 2, 0, 5);
  p.add_edge(2, 3, 0, 5);
  EXPECT_FALSE(p.solve_max_flow(0, 3).has_value());
}

TEST(BoundedFlow, ExactLowerEqualsUpperPinsFlow) {
  BoundedFlowProblem p(3);
  const auto e1 = p.add_edge(0, 1, 4, 4);
  const auto e2 = p.add_edge(1, 2, 0, 10);
  const auto value = p.solve_max_flow(0, 2);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 4);
  EXPECT_EQ(p.flow_on(e1), 4);
  EXPECT_EQ(p.flow_on(e2), 4);
}

TEST(BoundedFlow, MaximizesBeyondFeasibility) {
  // A feasible flow exists with value 1, but the maximum is 7.
  BoundedFlowProblem p(2);
  p.add_edge(0, 1, 1, 7);
  const auto value = p.solve_max_flow(0, 1);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 7) << "solver must maximize, not just find feasible";
}

TEST(BoundedFlow, DiamondWithMixedBounds) {
  BoundedFlowProblem p(4);
  const auto a = p.add_edge(0, 1, 1, 2);
  const auto b = p.add_edge(0, 2, 0, 5);
  const auto c = p.add_edge(1, 3, 1, 2);
  const auto d = p.add_edge(2, 3, 2, 4);
  const auto value = p.solve_max_flow(0, 3);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 6);
  EXPECT_GE(p.flow_on(a), 1);
  EXPECT_LE(p.flow_on(a), 2);
  EXPECT_GE(p.flow_on(c), 1);
  EXPECT_LE(p.flow_on(c), 2);
  EXPECT_GE(p.flow_on(d), 2);
  EXPECT_LE(p.flow_on(d), 4);
  EXPECT_LE(p.flow_on(b), 5);
}

TEST(BoundedFlow, FlowOnBeforeSolveThrows) {
  BoundedFlowProblem p(2);
  p.add_edge(0, 1, 0, 1);
  EXPECT_THROW((void)p.flow_on(0), std::logic_error);
}

TEST(BoundedFlow, InvalidArguments) {
  BoundedFlowProblem p(2);
  EXPECT_THROW(p.add_edge(0, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(p.add_edge(0, 1, 3, 2), std::invalid_argument);
  EXPECT_THROW(p.add_edge(0, 1, -1, 2), std::invalid_argument);
  EXPECT_THROW(p.solve_max_flow(0, 0), std::invalid_argument);
}

TEST(BoundedFlow, ConservationAtJunction) {
  BoundedFlowProblem p(5);
  const auto in1 = p.add_edge(0, 2, 1, 3);
  const auto in2 = p.add_edge(1, 2, 0, 3);
  const auto out = p.add_edge(2, 3, 2, 5);
  p.add_edge(0, 1, 0, 3);
  p.add_edge(3, 4, 0, 10);
  const auto value = p.solve_max_flow(0, 4);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(p.flow_on(in1) + p.flow_on(in2), p.flow_on(out));
}

}  // namespace
}  // namespace pdl::flow
