#include "design/bounds.hpp"

#include <gtest/gtest.h>

#include "design/catalog.hpp"
#include "design/subfield_design.hpp"

namespace pdl::design {
namespace {

TEST(Bounds, Theorem7KnownValues) {
  // Fano plane: v=7, k=3: 42/gcd(42,6) = 7.
  EXPECT_EQ(theorem7_lower_bound(7, 3), 7u);
  // v=16, k=4: 240/gcd(240,12) = 20.
  EXPECT_EQ(theorem7_lower_bound(16, 4), 20u);
  // v=64, k=8: 4032/gcd(4032,56) = 72.
  EXPECT_EQ(theorem7_lower_bound(64, 8), 72u);
  EXPECT_THROW((void)theorem7_lower_bound(3, 4), std::invalid_argument);
}

TEST(Bounds, Theorem7HoldsForEveryConstruction) {
  // Every design the library can build must respect the bound.
  for (std::uint32_t v : {7u, 9u, 13u, 16u, 25u, 27u}) {
    for (std::uint32_t k = 2; k <= 6 && k < v; ++k) {
      for (const Method m : applicable_methods(v, k)) {
        const auto params = predicted_params(m, v, k);
        ASSERT_TRUE(params.has_value());
        EXPECT_GE(params->b, theorem7_lower_bound(v, k))
            << method_name(m) << " at v=" << v << " k=" << k;
      }
    }
  }
}

TEST(Bounds, SubfieldDesignsAreOptimal) {
  for (const auto& [v, k] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {4, 2}, {9, 3}, {16, 4}, {25, 5}, {27, 3}, {64, 8}, {81, 9}}) {
    EXPECT_EQ(subfield_design_params(v, k).b, theorem7_lower_bound(v, k));
  }
}

TEST(Bounds, Admissibility) {
  // Fano parameters are admissible with lambda = 1.
  EXPECT_TRUE(is_admissible(7, 3, 1));
  // (v=8, k=3): r = 7*lambda/2 requires lambda even.
  EXPECT_FALSE(is_admissible(8, 3, 1));
  // lambda = 6 gives r = 21, b = 8*21/3 = 56: both integral.
  EXPECT_TRUE(is_admissible(8, 3, 6));
  EXPECT_FALSE(is_admissible(5, 3, 0));
}

TEST(Bounds, MinAdmissibleLambda) {
  EXPECT_EQ(min_admissible_lambda(7, 3), 1u);
  // v=4, k=3: lambda*3 % 2 == 0 forces lambda even; lambda=2 gives r=3,
  // b=4 -- admissible.
  EXPECT_EQ(min_admissible_lambda(4, 3), 2u);
  // Cross-check against the definition.
  for (std::uint32_t v : {4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u}) {
    for (std::uint32_t k = 2; k < v; ++k) {
      const auto lambda = min_admissible_lambda(v, k);
      EXPECT_TRUE(is_admissible(v, k, lambda));
      for (std::uint64_t smaller = 1; smaller < lambda; ++smaller) {
        EXPECT_FALSE(is_admissible(v, k, smaller));
      }
    }
  }
}

TEST(Bounds, BlocksForLambda) {
  EXPECT_EQ(blocks_for_lambda(7, 3, 1), 7u);
  EXPECT_EQ(blocks_for_lambda(16, 4, 1), 20u);
  EXPECT_EQ(blocks_for_lambda(16, 4, 3), 60u);
}

TEST(Bounds, FisherBound) { EXPECT_EQ(fisher_lower_bound(42), 42u); }

}  // namespace
}  // namespace pdl::design
