#include "design/catalog.hpp"

#include <gtest/gtest.h>

#include "design/bounds.hpp"

namespace pdl::design {
namespace {

TEST(Catalog, MethodNames) {
  EXPECT_EQ(method_name(Method::kComplete), "complete");
  EXPECT_EQ(method_name(Method::kSubfield), "subfield (Thm 6)");
}

TEST(Catalog, ApplicabilityRules) {
  // v = 12 (composite, M = 3): ring applies for k <= 3, Thm 4/5 never.
  auto methods = applicable_methods(12, 3);
  EXPECT_NE(std::find(methods.begin(), methods.end(), Method::kRing),
            methods.end());
  EXPECT_EQ(std::find(methods.begin(), methods.end(), Method::kTheorem4),
            methods.end());
  methods = applicable_methods(12, 4);
  EXPECT_EQ(std::find(methods.begin(), methods.end(), Method::kRing),
            methods.end());
  // Complete always applies.
  EXPECT_NE(std::find(methods.begin(), methods.end(), Method::kComplete),
            methods.end());
  // v = 16, k = 4: everything applies.
  methods = applicable_methods(16, 4);
  EXPECT_EQ(methods.size(), 5u);
}

TEST(Catalog, PredictedParamsMatchBuiltDesigns) {
  for (const auto& [v, k] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {7, 3}, {9, 3}, {13, 4}, {16, 4}, {12, 3}, {8, 4}}) {
    for (const Method m : applicable_methods(v, k)) {
      const auto predicted = predicted_params(m, v, k);
      ASSERT_TRUE(predicted.has_value());
      const BlockDesign built = build_design(m, v, k);
      const auto check = verify_bibd(built);
      ASSERT_TRUE(check.ok) << method_name(m) << " v=" << v << " k=" << k;
      EXPECT_EQ(check.params, *predicted)
          << method_name(m) << " v=" << v << " k=" << k;
    }
  }
}

TEST(Catalog, BestMethodMinimizesB) {
  // v=16, k=4: subfield (b=20) beats Thm4 (gcd(15,3)=3 -> b=80), Thm5
  // (gcd(15,4)=1 -> b=240), ring (240), complete (1820).
  const auto best = best_method(16, 4);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->method, Method::kSubfield);
  EXPECT_EQ(best->params.b, 20u);

  // v=13, k=5: Thm4 (gcd(12,4)=4 -> b=39) is best.
  const auto best2 = best_method(13, 5);
  ASSERT_TRUE(best2.has_value());
  EXPECT_EQ(best2->method, Method::kTheorem4);
  EXPECT_EQ(best2->params.b, 39u);
}

TEST(Catalog, BestIsNeverWorseThanAnyApplicableMethod) {
  for (std::uint32_t v : {5u, 8u, 9u, 12u, 13u, 16u, 25u, 20u}) {
    for (std::uint32_t k = 2; k <= v && k <= 8; ++k) {
      const auto best = best_method(v, k);
      ASSERT_TRUE(best.has_value()) << "complete always applies";
      for (const Method m : applicable_methods(v, k)) {
        EXPECT_LE(best->params.b, predicted_params(m, v, k)->b);
      }
      EXPECT_GE(best->params.b, theorem7_lower_bound(v, k));
    }
  }
}

TEST(Catalog, BuildBestProducesVerifiedBibd) {
  const BlockDesign d = build_best_design(16, 4);
  const auto check = verify_bibd(d);
  ASSERT_TRUE(check.ok);
  EXPECT_EQ(check.params.b, 20u);
}

TEST(Catalog, BuildRejectsInapplicable) {
  EXPECT_THROW(build_design(Method::kSubfield, 12, 3), std::invalid_argument);
  EXPECT_THROW(build_design(Method::kRing, 12, 5), std::invalid_argument);
  EXPECT_THROW(build_best_design(3, 7), std::invalid_argument);
}

TEST(Catalog, DegenerateInputs) {
  EXPECT_FALSE(best_method(1, 1).has_value());
  EXPECT_FALSE(predicted_params(Method::kRing, 5, 1).has_value());
  EXPECT_FALSE(predicted_params(Method::kRing, 5, 6).has_value());
}

}  // namespace
}  // namespace pdl::design
