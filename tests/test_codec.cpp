// Differential suite for the codec seam's arithmetic:
//
//   1. the vectorized (bit-sliced) GF(2^8) kernels are pinned byte-exact
//      to the scalar log/exp-table references on every size class from
//      1 byte to 64 KiB, including unaligned base addresses and ragged
//      tails;
//   2. both are pinned to the fully independent algebra::GaloisField
//      table arithmetic (the same construction machinery the layout
//      designs use), so the fast path, the slow path, and the abstract
//      field can never drift apart;
//   3. the Reed-Solomon codec round-trips EVERY 1- and 2-erasure pattern
//      of every stripe shape, and its incremental update() is proved
//      equal to a from-scratch re-encode (and self-inverse -- the
//      property the store's RMW compensation depends on).

#include "core/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "algebra/gf.hpp"
#include "algebra/polynomial.hpp"
#include "core/gf8.hpp"
#include "core/xor_codec.hpp"

namespace pdl::core {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t size, std::mt19937_64& rng) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  return bytes;
}

/// The algebra-layer reference field with the codec's exact modulus
/// x^8 + x^4 + x^3 + x^2 + 1.
const algebra::GaloisField& reference_field() {
  static const algebra::GaloisField field(
      256, algebra::Polynomial(
               2, std::vector<std::uint32_t>{1, 0, 1, 1, 1, 0, 0, 0, 1}));
  return field;
}

TEST(Gf8, MulMatchesAlgebraFieldExhaustively) {
  const auto& field = reference_field();
  for (std::uint32_t a = 0; a < 256; ++a)
    for (std::uint32_t b = 0; b < 256; ++b)
      ASSERT_EQ(gf8::mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)),
                field.mul(a, b))
          << a << " * " << b;
}

TEST(Gf8, ExpAlphaIsRepeatedDoubling) {
  std::uint8_t power = 1;
  for (std::uint32_t i = 0; i < 600; ++i) {  // past a full period twice
    ASSERT_EQ(gf8::exp_alpha(i), power) << "alpha^" << i;
    power = gf8::mul(power, gf8::kAlpha);
  }
}

TEST(Gf8, AlphaHasFullMultiplicativeOrder) {
  // 255 distinct nonzero powers -- the coefficient-distinctness bound
  // that makes the two-erasure decode denominators invertible.
  std::vector<bool> seen(256, false);
  for (std::uint32_t i = 0; i < 255; ++i) {
    const std::uint8_t p = gf8::exp_alpha(i);
    ASSERT_NE(p, 0u);
    ASSERT_FALSE(seen[p]) << "alpha^" << i << " repeats";
    seen[p] = true;
  }
}

TEST(Gf8, InverseRoundTripsAndRejectsZero) {
  for (std::uint32_t a = 1; a < 256; ++a)
    ASSERT_EQ(gf8::mul(static_cast<std::uint8_t>(a),
                       gf8::inv(static_cast<std::uint8_t>(a))),
              1u)
        << a;
  EXPECT_THROW((void)gf8::inv(0), std::invalid_argument);
}

/// Sizes spanning the kernel's shape boundaries: sub-block, exactly one
/// 64-byte block, block +/- 1, multi-block, and the 64 KiB ceiling the
/// issue names.
const std::size_t kSizes[] = {1,   2,   3,    7,    16,   63,   64,    65,
                              100, 192, 1000, 4096, 8191, 65536};

TEST(Gf8, MulXorIntoMatchesScalarOnEverySizeAndAlignment) {
  std::mt19937_64 rng(0xC0DEC);
  for (const std::size_t size : kSizes) {
    for (const std::size_t offset : {0u, 1u, 3u}) {
      // Carve deliberately misaligned windows out of larger buffers.
      auto dst_backing = random_bytes(size + offset, rng);
      auto src_backing = random_bytes(size + offset, rng);
      auto dst_ref = dst_backing;
      const std::span<std::uint8_t> dst{dst_backing.data() + offset, size};
      const std::span<std::uint8_t> ref{dst_ref.data() + offset, size};
      const std::span<const std::uint8_t> src{src_backing.data() + offset,
                                              size};
      for (const std::uint8_t c :
           {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{2},
            static_cast<std::uint8_t>(rng() | 4)}) {
        gf8::mul_xor_into(dst, src, c);
        gf8::detail::mul_xor_into_scalar(ref, src, c);
        ASSERT_EQ(dst_backing, dst_ref)
            << "size " << size << " offset " << offset << " c " << int(c);
      }
    }
  }
}

TEST(Gf8, MulInPlaceMatchesScalarOnEverySizeAndAlignment) {
  std::mt19937_64 rng(0xFACE);
  for (const std::size_t size : kSizes) {
    for (const std::size_t offset : {0u, 1u, 3u}) {
      auto backing = random_bytes(size + offset, rng);
      auto ref_backing = backing;
      const std::span<std::uint8_t> dst{backing.data() + offset, size};
      const std::span<std::uint8_t> ref{ref_backing.data() + offset, size};
      for (const std::uint8_t c :
           {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{2},
            static_cast<std::uint8_t>(rng() | 4)}) {
        gf8::mul_in_place(dst, c);
        gf8::detail::mul_in_place_scalar(ref, c);
        ASSERT_EQ(backing, ref_backing)
            << "size " << size << " offset " << offset << " c " << int(c);
      }
    }
  }
}

TEST(Gf8, VectorKernelMatchesAlgebraFieldBytewise) {
  // Close the triangle: vectorized kernel vs the abstract field (the
  // scalar reference was the bridge above).
  const auto& field = reference_field();
  std::mt19937_64 rng(0xF1E1D);
  const std::size_t size = 777;
  const auto src = random_bytes(size, rng);
  auto dst = random_bytes(size, rng);
  const auto dst_before = dst;
  const std::uint8_t c = 0x8E;
  gf8::mul_xor_into(dst, src, c);
  for (std::size_t i = 0; i < size; ++i)
    ASSERT_EQ(dst[i], dst_before[i] ^ field.mul(c, src[i])) << "byte " << i;
}

// ----------------------------------------------------------- RS codec

/// Encodes kd random data units, erases every pattern of the given size,
/// reconstructs, and checks byte identity for all erased units.
void round_trip_all_erasures(std::uint32_t kd, std::size_t unit,
                             std::uint32_t erasures, std::mt19937_64& rng) {
  const Codec& rs = rs_codec();
  const std::uint32_t total = kd + 2;
  std::vector<std::vector<std::uint8_t>> units;
  for (std::uint32_t i = 0; i < kd; ++i)
    units.push_back(random_bytes(unit, rng));
  units.emplace_back(unit);  // P
  units.emplace_back(unit);  // Q
  {
    std::vector<std::span<const std::uint8_t>> data;
    for (std::uint32_t i = 0; i < kd; ++i) data.emplace_back(units[i]);
    const std::span<std::uint8_t> parity[2] = {units[kd], units[kd + 1]};
    rs.encode({data.data(), kd}, parity);
  }

  std::vector<std::uint32_t> erased;
  const auto check_pattern = [&] {
    std::vector<std::span<const std::uint8_t>> survivors;
    std::vector<std::uint32_t> survivor_index;
    for (std::uint32_t i = 0; i < total; ++i) {
      if (std::find(erased.begin(), erased.end(), i) != erased.end())
        continue;
      survivors.emplace_back(units[i]);
      survivor_index.push_back(i);
    }
    std::vector<std::vector<std::uint8_t>> decoded(erased.size(),
                                                   std::vector<std::uint8_t>(
                                                       unit));
    std::vector<std::span<std::uint8_t>> outs;
    for (auto& d : decoded) outs.emplace_back(d);
    rs.reconstruct(kd, {survivors.data(), survivors.size()},
                   survivor_index, erased, {outs.data(), outs.size()});
    for (std::size_t e = 0; e < erased.size(); ++e)
      ASSERT_EQ(decoded[e], units[erased[e]])
          << "kd " << kd << " unit " << unit << " erased[" << e << "] = "
          << erased[e];
  };

  if (erasures == 1) {
    for (std::uint32_t x = 0; x < total; ++x) {
      erased = {x};
      check_pattern();
    }
  } else {
    for (std::uint32_t x = 0; x < total; ++x)
      for (std::uint32_t y = 0; y < total; ++y) {
        if (x == y) continue;
        erased = {x, y};  // both orders exercised
        check_pattern();
      }
  }
}

TEST(RsCodec, RoundTripsEverySingleAndDoubleErasurePattern) {
  std::mt19937_64 rng(0x5EED);
  for (const std::uint32_t kd : {1u, 2u, 3u, 5u, 8u, 13u}) {
    for (const std::size_t unit : {1u, 13u, 64u, 257u}) {
      round_trip_all_erasures(kd, unit, 1, rng);
      round_trip_all_erasures(kd, unit, 2, rng);
    }
  }
}

TEST(RsCodec, UpdateEqualsReEncodeAndIsSelfInverse) {
  std::mt19937_64 rng(0xABBA);
  const Codec& rs = rs_codec();
  const std::uint32_t kd = 9;
  const std::size_t unit = 130;
  std::vector<std::vector<std::uint8_t>> data;
  for (std::uint32_t i = 0; i < kd; ++i) data.push_back(random_bytes(unit, rng));
  std::vector<std::span<const std::uint8_t>> data_spans;
  for (auto& d : data) data_spans.emplace_back(d);
  std::vector<std::uint8_t> p(unit), q(unit);
  {
    const std::span<std::uint8_t> parity[2] = {p, q};
    rs.encode({data_spans.data(), kd}, parity);
  }
  const auto p_before = p, q_before = q;

  for (std::uint32_t target = 0; target < kd; ++target) {
    const auto fresh = random_bytes(unit, rng);
    std::vector<std::uint8_t> delta(unit);
    for (std::size_t i = 0; i < unit; ++i) delta[i] = data[target][i] ^ fresh[i];

    // Incremental fold on both parities...
    rs.update(p, 0, target, delta);
    rs.update(q, 1, target, delta);

    // ...must equal the from-scratch encode of the mutated data set.
    const auto old_unit = data[target];
    data[target] = fresh;
    data_spans[target] = data[target];
    std::vector<std::uint8_t> p_full(unit), q_full(unit);
    {
      const std::span<std::uint8_t> parity[2] = {p_full, q_full};
      rs.encode({data_spans.data(), kd}, parity);
    }
    EXPECT_EQ(p, p_full) << "target " << target;
    EXPECT_EQ(q, q_full) << "target " << target;

    // Re-applying the identical fold restores the previous parity -- the
    // involution the RMW compensation path relies on.
    rs.update(p, 0, target, delta);
    rs.update(q, 1, target, delta);
    data[target] = old_unit;
    data_spans[target] = data[target];
    std::vector<std::uint8_t> p_back(unit), q_back(unit);
    {
      const std::span<std::uint8_t> parity[2] = {p_back, q_back};
      rs.encode({data_spans.data(), kd}, parity);
    }
    EXPECT_EQ(p, p_back) << "target " << target;
    EXPECT_EQ(q, q_back) << "target " << target;
  }
  EXPECT_EQ(p, p_before);
  EXPECT_EQ(q, q_before);
}

TEST(RsCodec, UnmaterializedOutputsAreSkippedButDependentsDecode) {
  // out[0] empty, out[1] wanted: the store's "decode only what I need"
  // calling convention.
  std::mt19937_64 rng(0x0FF);
  const Codec& rs = rs_codec();
  const std::uint32_t kd = 4;
  const std::size_t unit = 96;
  std::vector<std::vector<std::uint8_t>> units;
  for (std::uint32_t i = 0; i < kd; ++i) units.push_back(random_bytes(unit, rng));
  units.emplace_back(unit);
  units.emplace_back(unit);
  std::vector<std::span<const std::uint8_t>> data;
  for (std::uint32_t i = 0; i < kd; ++i) data.emplace_back(units[i]);
  {
    const std::span<std::uint8_t> parity[2] = {units[kd], units[kd + 1]};
    rs.encode({data.data(), kd}, parity);
  }
  const std::uint32_t erased[2] = {1, 3};
  std::vector<std::span<const std::uint8_t>> survivors;
  std::vector<std::uint32_t> survivor_index;
  for (std::uint32_t i = 0; i < kd + 2; ++i) {
    if (i == 1 || i == 3) continue;
    survivors.emplace_back(units[i]);
    survivor_index.push_back(i);
  }
  std::vector<std::uint8_t> wanted(unit);
  const std::span<std::uint8_t> outs[2] = {{}, wanted};
  rs.reconstruct(kd, {survivors.data(), survivors.size()}, survivor_index,
                 erased, outs);
  EXPECT_EQ(wanted, units[3]);
}

// ----------------------------------------------------- seam invariants

TEST(Codec, RegistryAndDeclaredShapes) {
  EXPECT_EQ(xor_codec().kind(), CodecKind::kXorParity);
  EXPECT_EQ(xor_codec().name(), "xor");
  EXPECT_EQ(xor_codec().num_parity(), 1u);
  EXPECT_EQ(xor_codec().fault_tolerance(), 1u);
  EXPECT_EQ(rs_codec().kind(), CodecKind::kReedSolomonPQ);
  EXPECT_EQ(rs_codec().name(), "rs");
  EXPECT_EQ(rs_codec().num_parity(), 2u);
  EXPECT_EQ(rs_codec().fault_tolerance(), 2u);
  EXPECT_EQ(&codec_for(CodecKind::kXorParity), &xor_codec());
  EXPECT_EQ(&codec_for(CodecKind::kReedSolomonPQ), &rs_codec());
  EXPECT_EQ(codec_kind_name(CodecKind::kXorParity), "xor");
  EXPECT_EQ(codec_kind_name(CodecKind::kReedSolomonPQ), "rs");
}

TEST(Codec, XorSingletonMatchesRawKernels) {
  std::mt19937_64 rng(0x77);
  const Codec& codec = xor_codec();
  const std::size_t unit = 80;
  std::vector<std::vector<std::uint8_t>> data;
  for (int i = 0; i < 5; ++i) data.push_back(random_bytes(unit, rng));
  std::vector<std::span<const std::uint8_t>> spans;
  for (auto& d : data) spans.emplace_back(d);

  std::vector<std::uint8_t> parity(unit);
  const std::span<std::uint8_t> parity_spans[1] = {parity};
  codec.encode({spans.data(), spans.size()}, parity_spans);
  std::vector<std::uint8_t> expected(unit);
  xor_parity_into(expected, {spans.data(), spans.size()});
  EXPECT_EQ(parity, expected);

  // Single-erasure reconstruct == xor of the rest.
  std::vector<std::span<const std::uint8_t>> survivors = {
      data[0], data[1], data[3], data[4], parity};
  const std::uint32_t survivor_index[] = {0, 1, 3, 4, 5};
  const std::uint32_t erased[] = {2};
  std::vector<std::uint8_t> rebuilt(unit);
  const std::span<std::uint8_t> outs[1] = {rebuilt};
  codec.reconstruct(5, {survivors.data(), survivors.size()}, survivor_index,
                    erased, outs);
  EXPECT_EQ(rebuilt, data[2]);
}

TEST(Codec, ZeroDataStripesReconstructConstantZeroParity) {
  // Disk-removal constructions can leave short stripes whose every
  // content unit is sparing or parity: zero data units.  Their parities
  // encode nothing (constant 0) and must still be rebuildable.
  std::vector<std::uint8_t> q(16, 0xFF), out_buf(16, 0xFF);
  const std::span<const std::uint8_t> survivors[] = {q};
  const std::uint32_t survivor_index[] = {1};  // Q survives
  const std::uint32_t erased[] = {0};          // P erased
  const std::span<std::uint8_t> outs[1] = {out_buf};
  rs_codec().reconstruct(0, survivors, survivor_index, erased, outs);
  EXPECT_EQ(out_buf, std::vector<std::uint8_t>(16, 0x00));

  std::fill(out_buf.begin(), out_buf.end(), 0xFF);
  const std::span<std::uint8_t> xor_outs[1] = {out_buf};
  codec_for(CodecKind::kXorParity)
      .reconstruct(0, {}, {}, erased, xor_outs);
  EXPECT_EQ(out_buf, std::vector<std::uint8_t>(16, 0x00));
}

TEST(Codec, ReconstructValidatesItsContract) {
  const Codec& rs = rs_codec();
  std::vector<std::uint8_t> a(8), b(8), out_buf(8);
  const std::span<const std::uint8_t> survivors[] = {a, b};
  const std::uint32_t survivor_index[] = {0, 1};
  const std::uint32_t three_erased[] = {2, 3, 4};
  const std::span<std::uint8_t> outs3[3] = {out_buf, {}, {}};
  // Three erasures exceed m = 2.
  EXPECT_THROW(rs.reconstruct(3, survivors, survivor_index, three_erased,
                              outs3),
               std::invalid_argument);
  // Survivors + erasures must tile the stripe exactly.
  const std::uint32_t one_erased[] = {2};
  const std::span<std::uint8_t> outs1[1] = {out_buf};
  EXPECT_THROW(rs.reconstruct(5, survivors, survivor_index, one_erased,
                              outs1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pdl::core
