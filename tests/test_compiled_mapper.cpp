#include "layout/compiled_mapper.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "design/catalog.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/disk_removal.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

namespace pdl::layout {
namespace {

std::vector<std::pair<std::string, Layout>> sample_layouts() {
  std::vector<std::pair<std::string, Layout>> layouts;
  layouts.emplace_back("raid5 v=6", raid5_layout(6, 6));
  layouts.emplace_back("ring v=9 k=3", ring_based_layout(9, 3));
  layouts.emplace_back("ring v=17 k=5", ring_based_layout(17, 5));
  layouts.emplace_back("removal q=17 k=4 i=1", removal_layout(17, 4, 1));
  layouts.emplace_back("stairway q=16 v=20 k=4", stairway_layout(16, 20, 4));
  layouts.emplace_back(
      "bibd-flow v=16 k=4",
      flow_balanced_layout(design::build_best_design(16, 4), 1));
  return layouts;
}

// The headline equivalence: CompiledMapper must agree with AddressMapper
// everywhere, across several constructions and multiple iterations.
TEST(CompiledMapper, AgreesWithAddressMapperEverywhere) {
  for (const auto& [name, layout] : sample_layouts()) {
    const AddressMapper reference(layout);
    const CompiledMapper compiled(layout);

    EXPECT_EQ(compiled.num_disks(), reference.num_disks()) << name;
    EXPECT_EQ(compiled.units_per_disk(), reference.units_per_disk()) << name;
    EXPECT_EQ(compiled.data_units_per_iteration(),
              reference.data_units_per_iteration())
        << name;

    const std::uint64_t d = reference.data_units_per_iteration();
    std::vector<CompiledMapper::Physical> scratch(
        compiled.max_stripe_size());
    // Two full iterations plus a far-out block exercise the arithmetic.
    std::vector<std::uint64_t> logicals;
    for (std::uint64_t l = 0; l < 2 * d; ++l) logicals.push_back(l);
    logicals.push_back(17 * d + 3);

    for (const std::uint64_t logical : logicals) {
      EXPECT_EQ(compiled.map(logical), reference.map(logical))
          << name << " logical=" << logical;
      EXPECT_EQ(compiled.parity_of(logical), reference.parity_of(logical))
          << name << " logical=" << logical;

      const auto expected = reference.stripe_of(logical);
      ASSERT_GE(scratch.size(), expected.size()) << name;
      const std::uint32_t n = compiled.stripe_of(logical, scratch);
      ASSERT_EQ(n, expected.size()) << name << " logical=" << logical;
      EXPECT_EQ(compiled.stripe_size_of(logical), n)
          << name << " logical=" << logical;
      for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(scratch[i], expected[i])
            << name << " logical=" << logical << " unit=" << i;
      }
    }
  }
}

TEST(CompiledMapper, InverseAgreesOverAllPhysicalPositions) {
  for (const auto& [name, layout] : sample_layouts()) {
    const AddressMapper reference(layout);
    const CompiledMapper compiled(layout);
    const std::uint32_t s = reference.units_per_disk();
    for (std::uint32_t disk = 0; disk < reference.num_disks(); ++disk) {
      for (std::uint32_t offset = 0; offset < 2 * s; ++offset) {
        const AddressMapper::Physical pos{disk, offset};
        EXPECT_EQ(compiled.logical_at(pos), reference.logical_at(pos))
            << name << " disk=" << disk << " offset=" << offset;
      }
    }
    EXPECT_THROW((void)compiled.logical_at({reference.num_disks(), 0}),
                 std::invalid_argument)
        << name;
  }
}

TEST(CompiledMapper, MapBatchMatchesScalarMap) {
  const Layout layout = ring_based_layout(17, 5);
  const CompiledMapper compiled(layout);
  const std::uint64_t d = compiled.data_units_per_iteration();

  std::vector<std::uint64_t> logicals;
  for (std::uint64_t l = 0; l < 3 * d; l += 7) logicals.push_back(l);
  std::vector<CompiledMapper::Physical> batch(logicals.size());
  compiled.map_batch(logicals, batch);
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    EXPECT_EQ(batch[i], compiled.map(logicals[i])) << "i=" << i;
  }
}

TEST(CompiledMapper, RoundTripThroughInverse) {
  const Layout layout = stairway_layout(16, 20, 4);
  const CompiledMapper compiled(layout);
  const std::uint64_t d = compiled.data_units_per_iteration();
  for (std::uint64_t logical = 0; logical < 2 * d; ++logical) {
    EXPECT_EQ(compiled.logical_at(compiled.map(logical)), logical);
  }
}

TEST(CompiledMapper, ConstructsFromExistingAddressMapper) {
  const Layout layout = ring_based_layout(9, 3);
  const AddressMapper reference(layout);
  const CompiledMapper compiled(reference);
  EXPECT_EQ(compiled.map(5), reference.map(5));
  EXPECT_EQ(compiled.table_bytes() > 0, true);
}

TEST(CompiledMapper, MaxStripeSizeBoundsEveryStripe) {
  for (const auto& [name, layout] : sample_layouts()) {
    const CompiledMapper compiled(layout);
    const std::uint64_t d = compiled.data_units_per_iteration();
    std::uint32_t seen_max = 0;
    for (std::uint64_t l = 0; l < d; ++l) {
      seen_max = std::max(seen_max, compiled.stripe_size_of(l));
      EXPECT_LE(compiled.stripe_size_of(l), compiled.max_stripe_size())
          << name;
    }
    EXPECT_EQ(seen_max, compiled.max_stripe_size()) << name;
  }
}

// The magic-reciprocal divider underpins every hot-path method; it must be
// exact, not approximate, including at d = 1 and near-overflow numerators.
TEST(CompiledMapper, MagicDividerIsExact) {
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<std::uint64_t> divisors = {1, 2, 3, 5, 7, 48, 272, 960,
                                         4096, 99991, 1ull << 32,
                                         (1ull << 63) + 1, ~0ull};
  std::vector<std::uint64_t> numerators = {0, 1, 2, 47, 48, 49,
                                           ~0ull, ~0ull - 1, 1ull << 63};
  for (int i = 0; i < 1000; ++i) numerators.push_back(next());
  for (int i = 0; i < 20; ++i) divisors.push_back(next() | 1);

  for (const std::uint64_t d : divisors) {
    detail::U64Divisor divider;
    divider.init(d);
    for (const std::uint64_t n : numerators) {
      const auto [quot, rem] = divider.divide(n);
      EXPECT_EQ(quot, n / d) << "n=" << n << " d=" << d;
      EXPECT_EQ(rem, n % d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(CompiledMapper, RejectsInvalidLayouts) {
  Layout holey(4, 3);
  holey.append_stripe({0, 1, 2}, 0);
  EXPECT_THROW(CompiledMapper m(holey), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::layout
