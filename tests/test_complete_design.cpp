#include "design/complete_design.hpp"

#include <gtest/gtest.h>

namespace pdl::design {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 0), 1u);
  EXPECT_EQ(binomial(10, 10), 1u);
  EXPECT_EQ(binomial(10, 11), 0u);
  EXPECT_EQ(binomial(52, 5), 2'598'960u);
  EXPECT_EQ(binomial(0, 0), 1u);
}

TEST(Binomial, PascalIdentity) {
  for (std::uint64_t n = 1; n <= 30; ++n) {
    for (std::uint64_t r = 1; r <= n; ++r) {
      EXPECT_EQ(binomial(n, r), binomial(n - 1, r - 1) + binomial(n - 1, r));
    }
  }
}

TEST(Binomial, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(binomial(200, 100), std::numeric_limits<std::uint64_t>::max());
}

class CompleteDesignSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(CompleteDesignSweep, IsABibdWithBinomialParameters) {
  const auto [v, k] = GetParam();
  const BlockDesign design = make_complete_design(v, k);
  const auto check = verify_bibd(design);
  ASSERT_TRUE(check.ok);
  EXPECT_EQ(check.params, complete_design_params(v, k));
  EXPECT_EQ(check.params.b, binomial(v, k));
  EXPECT_EQ(check.params.r, binomial(v - 1, k - 1));
  EXPECT_EQ(check.params.lambda, binomial(v - 2, k - 2));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompleteDesignSweep,
    ::testing::Values(std::pair{4u, 2u}, std::pair{4u, 3u}, std::pair{5u, 3u},
                      std::pair{6u, 3u}, std::pair{7u, 4u}, std::pair{8u, 2u},
                      std::pair{9u, 5u}, std::pair{10u, 3u},
                      std::pair{12u, 4u}, std::pair{6u, 6u}));

TEST(CompleteDesign, BlocksAreLexicographicAndDistinct) {
  const BlockDesign design = make_complete_design(6, 3);
  ASSERT_EQ(design.b(), 20u);
  for (std::size_t i = 1; i < design.blocks.size(); ++i) {
    EXPECT_LT(design.blocks[i - 1], design.blocks[i]);
  }
}

TEST(CompleteDesign, GuardsAgainstExplosion) {
  EXPECT_THROW(make_complete_design(64, 32), std::invalid_argument);
  EXPECT_THROW(make_complete_design(64, 32, 1000), std::invalid_argument);
  EXPECT_THROW(make_complete_design(5, 1), std::invalid_argument);
  EXPECT_THROW(make_complete_design(5, 6), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::design
