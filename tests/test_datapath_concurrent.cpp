// Concurrency stress for the byte-level data path: reader and writer
// threads hammer overlapping and disjoint logical ranges while the main
// thread injects disk failures, attaches replacements, and drives an
// incremental rebuild -- all under the store's readers-writer + sharded
// stripe-lock discipline.  Runs under ASan/UBSan in the sanitize CI job
// and under ThreadSanitizer in the tsan job (PDL_TSAN).
//
// Content invariant: every write stores the canonical pattern for its
// address, so any read -- direct, degraded, or served mid-rebuild -- must
// return canonical bytes.  With at most one concurrent disk failure no
// stripe ever loses two units, so every read must also succeed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "api/array.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

constexpr std::uint64_t kSeed = 0xC0CC;

Result<StripeStore> make_store(
    api::SparingMode sparing,
    core::CodecKind codec = core::CodecKind::kXorParity) {
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5}, {},
                                  {.sparing = sparing, .codec = codec});
  if (!array.ok()) return array.status();
  return StripeStore::create(std::move(array).value(),
                             {.unit_bytes = 64, .iterations = 2,
                              .lock_shards = 16});
}

TEST(DatapathConcurrent, ParallelReadersSeeCanonicalBytes) {
  auto store = make_store(api::SparingMode::kNone);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());

  // Pure read concurrency over the whole space: exercises api::Array's
  // const serving surface from many threads at once.
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (std::uint32_t t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(kSeed + t);
      std::vector<std::uint8_t> unit(store->unit_bytes());
      std::vector<std::uint8_t> expected(store->unit_bytes());
      for (std::uint32_t i = 0; i < 4000; ++i) {
        const std::uint64_t logical = rng() % store->num_logical_units();
        if (!store->read(logical, unit).ok()) {
          ++failures;
          continue;
        }
        canonical_fill(logical, kSeed, expected);
        if (unit != expected) ++failures;
      }
    });
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0u);
}

void stress_with_failures(api::SparingMode sparing) {
  auto store = make_store(sparing);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  const std::uint64_t n = store->num_logical_units();
  ASSERT_TRUE(fill_canonical(*store, 0, n, kSeed).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> read_failures{0};
  std::atomic<std::uint64_t> write_failures{0};
  std::atomic<std::uint64_t> ops{0};

  // Two writers own disjoint halves of the space; two more share one
  // overlapping window (racing writes store identical canonical bytes,
  // so the content invariant holds regardless of interleaving).
  std::vector<std::thread> threads;
  const std::uint64_t half = n / 2;
  for (std::uint32_t w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      // w 0/1 own disjoint halves; w 2/3 share a window straddling both.
      const std::uint64_t first = w < 2 ? w * half : half / 2;
      const std::uint64_t count = half;
      std::mt19937_64 rng(kSeed * 31 + w);
      std::vector<std::uint8_t> unit(store->unit_bytes());
      std::uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed) && mine < 200000) {
        const std::uint64_t logical = first + rng() % count;
        canonical_fill(logical, kSeed, unit);
        if (!store->write(logical, unit).ok()) ++write_failures;
        ++ops;
        // Periodic yield opens writer-lock windows for the chaos driver
        // (glibc's rwlock is reader-preferring).
        if ((++mine & 127) == 0) std::this_thread::yield();
      }
    });
  }
  // Two readers roam the whole space, verifying bytes.
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(kSeed * 77 + r);
      std::vector<std::uint8_t> unit(store->unit_bytes());
      std::vector<std::uint8_t> expected(store->unit_bytes());
      std::uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed) && mine < 200000) {
        const std::uint64_t logical = rng() % n;
        if ((++mine & 127) == 0) std::this_thread::yield();
        if (!store->read(logical, unit).ok()) {
          ++read_failures;
          continue;
        }
        canonical_fill(logical, kSeed, expected);
        if (unit != expected) ++read_failures;
        ++ops;
      }
    });
  }

  // Chaos driver: three failure -> replace -> incremental-rebuild cycles
  // on different disks, each concurrent with the serving threads.  One
  // failure at a time, so no stripe ever loses two units.  The pause
  // between rebuild batches keeps serving interleaved with the rebuild
  // (batches hold the exclusive lock; too-small batches also starve on
  // glibc's reader-preferring rwlock).
  for (const layout::DiskId disk : {3u, 11u, 7u}) {
    ASSERT_TRUE(store->fail_disk(disk).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    ASSERT_TRUE(store->replace_disk(disk).ok());
    for (;;) {
      const auto applied = store->rebuild_some(64);
      ASSERT_TRUE(applied.ok()) << applied.status().to_string();
      if (*applied == 0) break;
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  }
  // Let the serving threads rack up real concurrent mileage before
  // stopping (per-thread op caps plus the 10 s ceiling bound the wait).
  for (int i = 0; i < 10000 && ops.load() < 500000; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  stop.store(true);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(write_failures.load(), 0u);
  EXPECT_GT(ops.load(), 0u);
  EXPECT_FALSE(store->array().data_loss());

  // Quiesced: every byte in the store must be canonical again.
  std::vector<std::uint8_t> unit(store->unit_bytes());
  std::vector<std::uint8_t> expected(store->unit_bytes());
  for (std::uint64_t logical = 0; logical < n; ++logical) {
    ASSERT_TRUE(store->read(logical, unit).ok()) << "logical " << logical;
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << "logical " << logical;
  }
}

TEST(DatapathConcurrent, FailureAndRebuildUnderFireDedicated) {
  stress_with_failures(api::SparingMode::kNone);
}

TEST(DatapathConcurrent, FailureAndRebuildUnderFireDistributed) {
  stress_with_failures(api::SparingMode::kDistributed);
}

TEST(DatapathConcurrent, DoubleFailureRebuildUnderFireReedSolomon) {
  // The RS store under TWO concurrently failed disks: every stripe may
  // lose up to two units -- still within P+Q tolerance, so every read
  // and write must keep succeeding (double-degraded decodes, multi-
  // parity RMWs, and reconstruct-writes all race the rebuild here).
  // The staged-shard/exclusive-commit rebuild interleaves with the
  // writers, pinning the write-epoch invalidation protocol under TSan:
  // a writer's RMW that lands between stage and commit must bump the
  // epoch and force a re-stage, never a stale-parity commit.
  auto store = make_store(api::SparingMode::kDistributed,
                          core::CodecKind::kReedSolomonPQ);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  const std::uint64_t n = store->num_logical_units();
  ASSERT_TRUE(fill_canonical(*store, 0, n, kSeed).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> read_failures{0};
  std::atomic<std::uint64_t> write_failures{0};
  std::atomic<std::uint64_t> ops{0};

  std::vector<std::thread> threads;
  const std::uint64_t half = n / 2;
  for (std::uint32_t w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      const std::uint64_t first = w < 2 ? w * half : half / 2;
      std::mt19937_64 rng(kSeed * 31 + w);
      std::vector<std::uint8_t> unit(store->unit_bytes());
      std::uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed) && mine < 120000) {
        const std::uint64_t logical = first + rng() % half;
        canonical_fill(logical, kSeed, unit);
        if (!store->write(logical, unit).ok()) ++write_failures;
        ++ops;
        if ((++mine & 127) == 0) std::this_thread::yield();
      }
    });
  }
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(kSeed * 77 + r);
      std::vector<std::uint8_t> unit(store->unit_bytes());
      std::vector<std::uint8_t> expected(store->unit_bytes());
      std::uint64_t mine = 0;
      while (!stop.load(std::memory_order_relaxed) && mine < 120000) {
        const std::uint64_t logical = rng() % n;
        if ((++mine & 127) == 0) std::this_thread::yield();
        if (!store->read(logical, unit).ok()) {
          ++read_failures;
          continue;
        }
        canonical_fill(logical, kSeed, expected);
        if (unit != expected) ++read_failures;
        ++ops;
      }
    });
  }

  // Two overlapping failures, then a rebuild that runs with BOTH
  // replacements attached -- steps decoding through two erasures.
  ASSERT_TRUE(store->fail_disk(3).ok());
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  ASSERT_TRUE(store->fail_disk(11).ok());
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  ASSERT_TRUE(store->replace_disk(3).ok());
  ASSERT_TRUE(store->replace_disk(11).ok());
  for (;;) {
    const auto applied = store->rebuild_some(64);
    ASSERT_TRUE(applied.ok()) << applied.status().to_string();
    if (*applied == 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }

  for (int i = 0; i < 10000 && ops.load() < 300000; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  stop.store(true);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(write_failures.load(), 0u);
  EXPECT_FALSE(store->array().data_loss());

  std::vector<std::uint8_t> unit(store->unit_bytes());
  std::vector<std::uint8_t> expected(store->unit_bytes());
  for (std::uint64_t logical = 0; logical < n; ++logical) {
    ASSERT_TRUE(store->read(logical, unit).ok()) << "logical " << logical;
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << "logical " << logical;
  }
}

TEST(DatapathConcurrent, WorkloadDriverMixesUnderFailure) {
  // The driver end-to-end: uniform, sequential, and zipfian mixes against
  // a degraded store, with verification on.  Every op must be served
  // (single failure), every byte canonical.
  auto store = make_store(api::SparingMode::kDistributed);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  ASSERT_TRUE(store->fail_disk(5).ok());

  for (const AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kSequential,
        AccessPattern::kZipfian}) {
    WorkloadDriver driver(*store, {.num_threads = 3,
                                   .ops_per_thread = 1200,
                                   .read_fraction = 0.6,
                                   .pattern = pattern,
                                   .queue_depth = 4,
                                   .seed = kSeed,
                                   .verify_reads = true});
    const WorkloadStats stats = driver.run();
    EXPECT_EQ(stats.errors, 0u) << access_pattern_name(pattern);
    EXPECT_EQ(stats.data_loss_ops, 0u) << access_pattern_name(pattern);
    EXPECT_EQ(stats.verify_failures, 0u) << access_pattern_name(pattern);
    EXPECT_EQ(stats.reads + stats.writes, 3u * 1200u)
        << access_pattern_name(pattern);
    EXPECT_GT(stats.degraded_reads + stats.reconstruct_writes, 0u)
        << access_pattern_name(pattern);
    EXPECT_GT(stats.mb_per_second(), 0.0);
  }

  ASSERT_TRUE(store->replace_disk(5).ok());
  const auto outcome = store->rebuild();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(store->array().healthy());
}

}  // namespace
}  // namespace pdl::io
