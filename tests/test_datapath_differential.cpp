// Differential suite pinning io::StripeStore to api::Array semantics: for
// every ranked construction at (17, 5) (>= 4 apply), {0, 1, 2} failed
// disks, both sparing modes, and BOTH storage backends (zero-copy memory
// and pread/pwrite file images), every StripeStore::read outcome -- the
// served/degraded/unrecoverable resolution AND the exact physical units
// touched -- must match what Array::locate says on an identically-driven
// reference array, and every served byte must equal what was written.
// Write receipts are pinned to Array::plan_write the same way, and the
// dedicated-replacement cases prove rebuild restores checksum-identical
// disk contents through every failure count the codec tolerates (one
// under XOR, two under Reed-Solomon P+Q).  Running the identical matrix
// over both backends and both codecs is what pins the DiskBackend and
// Codec seams: neither substrate nor code may be visible in any byte
// served.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/array.hpp"
#include "engine/planner.hpp"
#include "io/async_backend.hpp"
#include "io/disk_backend.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

constexpr std::uint32_t kV = 17;
constexpr std::uint32_t kK = 5;
constexpr std::uint32_t kUnitBytes = 48;  // odd-ish size, not a power of two
constexpr std::uint32_t kIterations = 2;
constexpr std::uint64_t kSeed = 0xD1FF;

std::vector<core::Construction> applicable_constructions() {
  const auto& planner = engine::ConstructionPlanner::default_planner();
  std::vector<core::Construction> result;
  for (const auto& plan : planner.rank_plans({kV, kK}, {})) {
    if (plan.units_per_disk > 2000) continue;
    result.push_back(plan.construction);
  }
  return result;
}

enum class BackendKind { kMemory, kFile };

struct Case {
  core::Construction construction;
  api::SparingMode sparing;
  std::vector<layout::DiskId> failures;
  BackendKind backend = BackendKind::kMemory;
  core::CodecKind codec = core::CodecKind::kXorParity;
};

/// Scratch directory for one file-backed case, unique per process.
std::filesystem::path case_scratch_dir(const Case& c) {
  return std::filesystem::temp_directory_path() /
         ("pdl_datapath_diff_" +
          std::to_string(static_cast<unsigned long>(::getpid()))) /
         (core::construction_name(c.construction) + "_" +
          std::string(core::codec_kind_name(c.codec)) + "_" +
          (c.sparing == api::SparingMode::kDistributed ? "d" : "n") + "_" +
          std::to_string(c.failures.size()));
}

std::unique_ptr<io::DiskBackend> make_case_backend(const Case& c) {
  if (c.backend == BackendKind::kFile)
    return make_file_backend({.directory = case_scratch_dir(c).string()});
  return make_memory_backend();
}

std::string describe(const Case& c) {
  std::string text = core::construction_name(c.construction);
  text += "/";
  text += core::codec_kind_name(c.codec);
  text += c.sparing == api::SparingMode::kDistributed ? "/distributed"
                                                      : "/dedicated";
  text += c.backend == BackendKind::kFile ? "/file" : "/memory";
  text += " failures={";
  for (const auto d : c.failures) text += std::to_string(d) + ",";
  text += "}";
  return text;
}

/// Every logical read through the store, checked against the reference
/// array's locate: same resolution kind, same touched units, and -- when
/// served -- canonical bytes.
void expect_reads_match(StripeStore& store, const api::Array& reference,
                        const std::string& context) {
  std::vector<std::uint8_t> unit(store.unit_bytes());
  std::vector<std::uint8_t> expected(store.unit_bytes());
  std::array<Physical, 64> survivors;

  for (std::uint64_t logical = 0; logical < store.num_logical_units();
       ++logical) {
    const auto plan = reference.locate(logical, survivors);
    ASSERT_TRUE(plan.ok()) << context;
    ReadReceipt receipt;
    const Status status = store.read(logical, unit, &receipt);

    ASSERT_EQ(receipt.kind, plan->kind)
        << context << " logical " << logical;
    if (plan->kind == api::ReadPlan::Kind::kUnrecoverable) {
      EXPECT_EQ(status.code(), StatusCode::kDataLoss)
          << context << " logical " << logical;
      continue;
    }
    ASSERT_TRUE(status.ok()) << context << " logical " << logical << ": "
                             << status.to_string();
    if (plan->kind == api::ReadPlan::Kind::kDirect) {
      ASSERT_EQ(receipt.num_touched, 1u) << context << " logical " << logical;
      EXPECT_EQ(receipt.touched[0], plan->target)
          << context << " logical " << logical;
    } else {
      ASSERT_EQ(receipt.num_touched, plan->num_survivors)
          << context << " logical " << logical;
      for (std::uint32_t i = 0; i < plan->num_survivors; ++i)
        EXPECT_EQ(receipt.touched[i], survivors[i])
            << context << " logical " << logical << " survivor " << i;
    }
    canonical_fill(logical, kSeed, expected);
    EXPECT_EQ(unit, expected) << context << " logical " << logical;
  }
}

/// Rewrites every 7th logical (same canonical content) and pins the write
/// receipt -- strategy kind, peer reads, written units -- to the
/// reference array's plan_write.
void expect_writes_match(StripeStore& store, const api::Array& reference,
                         const std::string& context) {
  std::vector<std::uint8_t> unit(store.unit_bytes());
  std::array<Physical, 64> peers;

  for (std::uint64_t logical = 0; logical < store.num_logical_units();
       logical += 7) {
    const auto plan = reference.plan_write(logical, peers);
    ASSERT_TRUE(plan.ok()) << context;
    canonical_fill(logical, kSeed, unit);
    WriteReceipt receipt;
    const Status status = store.write(logical, unit, &receipt);

    ASSERT_EQ(receipt.kind, plan->kind) << context << " logical " << logical;
    const bool multi = reference.num_parity_units() > 1;
    switch (plan->kind) {
      case api::WritePlan::Kind::kReadModifyWrite:
        ASSERT_TRUE(status.ok()) << context;
        if (multi) {
          ASSERT_EQ(receipt.num_writes, 1u + plan->num_parities);
          EXPECT_EQ(receipt.writes[0], plan->data);
          for (std::uint32_t j = 0; j < plan->num_parities; ++j)
            EXPECT_EQ(receipt.writes[1 + j], plan->parity_targets[j])
                << context << " logical " << logical << " parity " << j;
        } else {
          // The m = 1 receipt shape is pinned byte-for-byte: the codec
          // seam must not disturb the legacy XOR fast path.
          ASSERT_EQ(receipt.num_writes, 2u);
          EXPECT_EQ(receipt.writes[0], plan->data);
          EXPECT_EQ(receipt.writes[1], plan->parity);
        }
        break;
      case api::WritePlan::Kind::kReconstructWrite:
        ASSERT_TRUE(status.ok()) << context;
        for (std::uint32_t i = 0; i < plan->num_peer_reads; ++i)
          EXPECT_EQ(receipt.reads[i], peers[i])
              << context << " logical " << logical << " peer " << i;
        if (multi) {
          // Multi-parity reconstruct-writes also read the old surviving
          // parities (for second-erasure decode and rollback).
          ASSERT_EQ(receipt.num_reads,
                    plan->num_peer_reads + plan->num_parities);
          ASSERT_EQ(receipt.num_writes, plan->num_parities);
          for (std::uint32_t j = 0; j < plan->num_parities; ++j)
            EXPECT_EQ(receipt.writes[j], plan->parity_targets[j])
                << context << " logical " << logical << " parity " << j;
        } else {
          ASSERT_EQ(receipt.num_reads, plan->num_peer_reads);
          ASSERT_EQ(receipt.num_writes, 1u);
          EXPECT_EQ(receipt.writes[0], plan->parity);
        }
        break;
      case api::WritePlan::Kind::kUnprotectedWrite:
        ASSERT_TRUE(status.ok()) << context;
        ASSERT_EQ(receipt.num_writes, 1u);
        EXPECT_EQ(receipt.writes[0], plan->data);
        break;
      case api::WritePlan::Kind::kUnrecoverable:
        EXPECT_EQ(status.code(), StatusCode::kDataLoss)
            << context << " logical " << logical;
        break;
    }
  }
}

void run_case(const Case& c) {
  const std::string context = describe(c);
  const core::ArraySpec spec{kV, kK};
  const api::ArrayOptions options{.sparing = c.sparing,
                                  .construction = c.construction,
                                  .codec = c.codec};
  auto store_array = api::Array::create(spec, {}, options);
  auto reference = api::Array::create(spec, {}, options);
  ASSERT_TRUE(store_array.ok()) << context << ": "
                                << store_array.status().to_string();
  ASSERT_TRUE(reference.ok()) << context;

  auto store = StripeStore::create(
      std::move(store_array).value(),
      {.unit_bytes = kUnitBytes, .iterations = kIterations},
      make_case_backend(c));
  ASSERT_TRUE(store.ok()) << context << ": " << store.status().to_string();
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok())
      << context;

  // Checksums of every disk while healthy, for the rebuild-identity check.
  const auto healthy_sums_result = store->checksum_disks();
  ASSERT_TRUE(healthy_sums_result.ok()) << context;
  const std::vector<std::uint64_t>& healthy_sums = *healthy_sums_result;

  // Drive both objects through the identical failure sequence.
  for (const layout::DiskId disk : c.failures) {
    ASSERT_TRUE(store->fail_disk(disk).ok()) << context;
    ASSERT_TRUE(reference->fail_disk(disk).ok()) << context;
  }

  expect_reads_match(*store, *reference, context + " [degraded]");
  expect_writes_match(*store, *reference, context + " [degraded]");
  // The rewrites kept content canonical, so reads still verify.
  expect_reads_match(*store, *reference, context + " [rewritten]");

  // Repair: replacements on both, then rebuild both; the store must land
  // in the same online state and serve every recoverable byte again.
  for (const layout::DiskId disk : c.failures) {
    ASSERT_TRUE(store->replace_disk(disk).ok()) << context;
    ASSERT_TRUE(reference->replace_disk(disk).ok()) << context;
  }
  const auto store_outcome = store->rebuild();
  ASSERT_TRUE(store_outcome.ok()) << context;
  const auto ref_outcome = reference->rebuild();
  ASSERT_TRUE(ref_outcome.ok()) << context;
  EXPECT_EQ(store_outcome->applied, ref_outcome->applied) << context;
  EXPECT_EQ(store_outcome->blocked, ref_outcome->blocked) << context;
  EXPECT_EQ(store->array().lost_units(), reference->lost_units()) << context;
  EXPECT_EQ(store->array().stripes_lost(), reference->stripes_lost())
      << context;

  expect_reads_match(*store, *reference, context + " [rebuilt]");

  // Dedicated replacement rebuilds in place: every rebuilt disk must be
  // checksum-identical to its pre-failure contents (the rewrites above
  // re-stored canonical bytes, so content never moved).  XOR arrays can
  // only promise this through one failure; Reed-Solomon through two.
  const std::size_t tolerated = store->array().num_parity_units();
  if (!c.failures.empty() && c.failures.size() <= tolerated &&
      c.sparing == api::SparingMode::kNone) {
    for (const layout::DiskId disk : c.failures) {
      const auto rebuilt_sum = store->checksum_disk(disk);
      ASSERT_TRUE(rebuilt_sum.ok()) << context;
      EXPECT_EQ(*rebuilt_sum, healthy_sums[disk])
          << context << ": rebuilt disk " << disk
          << " contents differ from pre-failure";
    }
    EXPECT_TRUE(store->array().healthy()) << context;
  }
  if (c.failures.size() <= tolerated) {
    EXPECT_FALSE(store->array().data_loss()) << context;
  }
}

/// run_case plus scratch-directory cleanup for file-backed cases.
void run_case_cleanup(Case c, BackendKind backend) {
  c.backend = backend;
  run_case(c);
  if (backend == BackendKind::kFile) {
    std::error_code ec;
    std::filesystem::remove_all(case_scratch_dir(c), ec);
  }
}

TEST(DatapathDifferential, AtLeastFourConstructionsApply) {
  EXPECT_GE(applicable_constructions().size(), 4u);
}

/// The full construction x sparing x failure-count matrix over one
/// backend and codec -- ONE definition, so the memory/file and XOR/RS
/// sweeps can never silently diverge in coverage.
void run_full_matrix(BackendKind backend, core::CodecKind codec) {
  const auto constructions = applicable_constructions();
  ASSERT_GE(constructions.size(), 3u);
  for (const core::Construction construction : constructions) {
    for (const api::SparingMode sparing :
         {api::SparingMode::kNone, api::SparingMode::kDistributed}) {
      for (const std::uint32_t failures : {0u, 1u, 2u}) {
        Case c{construction, sparing, {}};
        c.codec = codec;
        if (failures >= 1) c.failures.push_back(0);
        if (failures >= 2) c.failures.push_back(kV / 2);
        run_case_cleanup(c, backend);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(DatapathDifferential, AllConstructionsFailuresAndSparingModes) {
  run_full_matrix(BackendKind::kMemory, core::CodecKind::kXorParity);
}

// The identical matrix over pread/pwrite file images: the DiskBackend
// seam must be invisible -- every receipt, byte, and checksum that held
// for the memory substrate must hold for the persistent one.
TEST(DatapathDifferential, AllCasesOverFileBackend) {
  run_full_matrix(BackendKind::kFile, core::CodecKind::kXorParity);
}

// The identical matrix under GF(2^8) Reed-Solomon P+Q: the paper's
// layouts carry the second parity through the same declustered mapping,
// and TWO concurrent failures must now serve every byte and rebuild
// checksum-identical disk contents.
TEST(DatapathDifferential, ReedSolomonMatrixOverMemoryBackend) {
  run_full_matrix(BackendKind::kMemory, core::CodecKind::kReedSolomonPQ);
}

TEST(DatapathDifferential, ReedSolomonMatrixOverFileBackend) {
  run_full_matrix(BackendKind::kFile, core::CodecKind::kReedSolomonPQ);
}

// ------------------------------------------------- integrity rot matrix

std::filesystem::path rot_scratch_dir(bool async, core::CodecKind codec) {
  return std::filesystem::temp_directory_path() /
         ("pdl_datapath_rot_" +
          std::to_string(static_cast<unsigned long>(::getpid()))) /
         (std::string(core::codec_kind_name(codec)) +
          (async ? "_async" : "_sync"));
}

/// Seeded single-bit rot on a HEALTHY integrity-enabled store: every
/// corrupted unit must be detected on read (counted as a CRC mismatch),
/// served canonically anyway (reconstructed through the codec), and
/// healed in place so the media ends checksum-identical to the
/// pre-corruption oracle.  Two rot flavours per case: persistent
/// on-media flips written behind the store's back, and one scripted
/// transient read-buffer flip from the FaultInjectionBackend.
void run_rot_case(BackendKind backend_kind, bool async,
                  core::CodecKind codec) {
  const std::string context =
      "rot/" + std::string(core::codec_kind_name(codec)) +
      (async ? "/async" : "/sync") +
      (backend_kind == BackendKind::kFile ? "/file" : "/memory");
  const auto constructions = applicable_constructions();
  ASSERT_FALSE(constructions.empty()) << context;

  auto array = api::Array::create(
      {kV, kK}, {},
      {.construction = constructions.front(), .codec = codec,
       .integrity = true});
  ASSERT_TRUE(array.ok()) << context << ": " << array.status().to_string();

  const std::filesystem::path scratch = rot_scratch_dir(async, codec);
  std::unique_ptr<io::DiskBackend> base =
      backend_kind == BackendKind::kFile
          ? make_file_backend({.directory = scratch.string()})
          : make_memory_backend();
  // The decorator hides the substrate's memory views, so every unit
  // crosses the streamed read path where rot applies and is CRC-checked.
  auto fault = std::make_unique<FaultInjectionBackend>(
      std::move(base), FaultInjectionOptions{.seed = kSeed});
  FaultInjectionBackend* fault_ptr = fault.get();
  std::unique_ptr<io::DiskBackend> backend = std::move(fault);
  if (async) backend = make_async_backend(std::move(backend), {});

  auto store = StripeStore::create(
      std::move(array).value(),
      {.unit_bytes = kUnitBytes, .iterations = kIterations},
      std::move(backend));
  ASSERT_TRUE(store.ok()) << context << ": " << store.status().to_string();
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok())
      << context;
  const auto oracle = store->checksum_disks();
  ASSERT_TRUE(oracle.ok()) << context;

  // Persistent rot: flip one bit in three spread-out units, behind the
  // store's back (its CRC cache still vouches for the original bytes).
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, store->num_logical_units() / 3);
  std::uint64_t corrupted = 0;
  for (std::uint64_t logical = 0;
       logical < store->num_logical_units() && corrupted < 3;
       logical += stride, ++corrupted) {
    const Physical p = store->array().map(logical);
    const std::uint64_t byte =
        static_cast<std::uint64_t>(p.offset) * kUnitBytes;
    std::uint8_t media = 0;
    ASSERT_TRUE(store->backend().read(p.disk, byte, {&media, 1}).ok())
        << context;
    media ^= 0x10;
    ASSERT_TRUE(store->backend().write(p.disk, byte, {&media, 1}).ok())
        << context;
  }
  // Transient rot: one scripted flip on the very next backend read op
  // (the first unit the verification loop below fetches).
  const std::uint64_t next_read[] = {fault_ptr->stats().reads + 1};
  fault_ptr->arm_rot_on_reads(next_read);

  // Every byte must still come back canonical: detect, reconstruct
  // through the codec, retry -- all transparent to the caller.
  std::vector<std::uint8_t> unit(store->unit_bytes());
  std::vector<std::uint8_t> expected(store->unit_bytes());
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical) {
    ASSERT_TRUE(store->read(logical, unit).ok())
        << context << " logical " << logical;
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << context << " logical " << logical;
  }

  const IntegrityStats stats = store->integrity_stats();
  EXPECT_GE(stats.mismatches, corrupted + 1) << context;  // + the transient
  EXPECT_GE(stats.healed, corrupted) << context;  // media flips healed
  EXPECT_EQ(stats.unhealable, 0u) << context;
  EXPECT_GT(stats.verified, 0u) << context;

  // A full scrub cycle and the parity re-encode audit close the loop:
  // nothing left to heal, no instance inconsistent, and the media is
  // byte-identical to before the corruption.
  const auto sweep = store->scrub();
  ASSERT_TRUE(sweep.ok()) << context;
  EXPECT_EQ(sweep->unhealable, 0u) << context;
  const auto inconsistent = store->verify_stripes();
  ASSERT_TRUE(inconsistent.ok()) << context;
  EXPECT_EQ(*inconsistent, 0u) << context;
  const auto after = store->checksum_disks();
  ASSERT_TRUE(after.ok()) << context;
  for (std::size_t d = 0; d < oracle->size(); ++d)
    EXPECT_EQ((*after)[d], (*oracle)[d])
        << context << ": disk " << d
        << " not checksum-identical after heal";

  if (backend_kind == BackendKind::kFile) {
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
  }
}

/// The rot detect/heal matrix over sync/async submission and both
/// codecs -- ONE definition shared by the memory and file sweeps.
void run_rot_matrix(BackendKind backend) {
  for (const bool async : {false, true}) {
    for (const core::CodecKind codec :
         {core::CodecKind::kXorParity, core::CodecKind::kReedSolomonPQ}) {
      run_rot_case(backend, async, codec);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(DatapathDifferential, RotDetectHealMatrixOverMemoryBackend) {
  run_rot_matrix(BackendKind::kMemory);
}

TEST(DatapathDifferential, RotDetectHealMatrixOverFileBackend) {
  run_rot_matrix(BackendKind::kFile);
}

}  // namespace
}  // namespace pdl::io
