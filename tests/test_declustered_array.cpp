#include "core/declustered_array.hpp"

#include <gtest/gtest.h>

#include "engine/planner.hpp"

namespace pdl::core {
namespace {

// The selection policy under test lives in the engine's planner;
// core::build_layout is now a deprecated shim over the same registry
// (covered by test_engine's ShimDelegatesToRegistry).
std::optional<BuiltLayout> build_layout(const ArraySpec& spec,
                                        const BuildOptions& options = {}) {
  return engine::ConstructionPlanner::default_planner().build_best(spec,
                                                                   options);
}

TEST(BuildLayout, KEqualsVGivesRaid5) {
  const auto built = build_layout({.num_disks = 8, .stripe_size = 8});
  ASSERT_TRUE(built.has_value());
  EXPECT_EQ(built->construction, Construction::kRaid5);
  EXPECT_EQ(built->layout.num_disks(), 8u);
  EXPECT_EQ(built->metrics.max_stripe_size, 8u);
}

TEST(BuildLayout, PrimePowerPrefersPerfectlyBalancedRoute) {
  const auto built = build_layout({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(built.has_value());
  // Ring layout (size 80, perfect balance) or an equally-perfect BIBD
  // route; either way the result must be perfectly balanced and small.
  EXPECT_EQ(built->metrics.min_parity_units, built->metrics.max_parity_units);
  EXPECT_LE(built->metrics.units_per_disk, 5u * 16u);
  EXPECT_TRUE(built->layout.validate().empty());
}

TEST(BuildLayout, AwkwardVFallsBackToApproximate) {
  // v = 100, k = 5: M(100) = 4 < 5, no exact BIBD in the catalog fits
  // gracefully; an approximate route must be chosen.
  const auto built = build_layout({.num_disks = 100, .stripe_size = 5});
  ASSERT_TRUE(built.has_value());
  EXPECT_TRUE(built->construction == Construction::kRemoval ||
              built->construction == Construction::kStairway ||
              built->construction == Construction::kBibdPerfect ||
              built->construction == Construction::kBibdFlow)
      << construction_name(built->construction);
  EXPECT_EQ(built->layout.num_disks(), 100u);
  EXPECT_LE(built->metrics.units_per_disk, layout::kDefaultUnitBudget);
  EXPECT_TRUE(built->layout.validate().empty());
}

TEST(BuildLayout, RequirePerfectParityIsHonored) {
  const auto built = build_layout(
      {.num_disks = 100, .stripe_size = 5},
      {.unit_budget = 100'000, .require_perfect_parity = true});
  if (built) {
    EXPECT_EQ(built->metrics.min_parity_units,
              built->metrics.max_parity_units);
  }
}

TEST(BuildLayout, BudgetIsRespected) {
  // A tiny budget leaves no options.
  const auto built = build_layout({.num_disks = 100, .stripe_size = 5},
                                  {.unit_budget = 10});
  EXPECT_FALSE(built.has_value());
}

TEST(BuildLayout, ApproximateCanBeDisabled) {
  const auto with = build_layout({.num_disks = 100, .stripe_size = 5},
                                 {.allow_approximate = true});
  const auto without = build_layout({.num_disks = 100, .stripe_size = 5},
                                    {.unit_budget = 600,
                                     .allow_approximate = false});
  ASSERT_TRUE(with.has_value());
  // Without approximate routes and with a tight budget, (100, 5) has no
  // exact construction of size <= 600.
  EXPECT_FALSE(without.has_value());
}

TEST(BuildLayout, MetricsAreMeasuredNotPredicted) {
  const auto built = build_layout({.num_disks = 16, .stripe_size = 4});
  ASSERT_TRUE(built.has_value());
  EXPECT_EQ(built->metrics.num_disks, 16u);
  EXPECT_EQ(built->metrics.units_per_disk,
            built->layout.units_per_disk());
  EXPECT_GT(built->metrics.num_stripes, 0u);
}

TEST(BuildLayout, InvalidSpecRejected) {
  EXPECT_THROW(build_layout({.num_disks = 1, .stripe_size = 1}),
               std::invalid_argument);
  EXPECT_THROW(build_layout({.num_disks = 4, .stripe_size = 5}),
               std::invalid_argument);
  EXPECT_THROW(build_layout({.num_disks = 4, .stripe_size = 1}),
               std::invalid_argument);
}

TEST(BuildLayout, ConstructionNamesAreStable) {
  EXPECT_EQ(construction_name(Construction::kRaid5), "RAID5");
  EXPECT_EQ(construction_name(Construction::kStairway),
            "stairway (Thm 10-12)");
}

TEST(BuildLayout, SweepManySpecsAllValid) {
  for (const std::uint32_t v : {6u, 9u, 13u, 16u, 21u, 33u, 50u}) {
    for (const std::uint32_t k : {3u, 4u, 5u}) {
      if (k > v) continue;
      const auto built = build_layout({.num_disks = v, .stripe_size = k},
                                      {.unit_budget = 100'000});
      ASSERT_TRUE(built.has_value()) << "v=" << v << " k=" << k;
      EXPECT_TRUE(built->layout.validate().empty())
          << "v=" << v << " k=" << k << " via "
          << construction_name(built->construction);
      EXPECT_EQ(built->layout.num_disks(), v);
      EXPECT_EQ(built->metrics.max_stripe_size, k);
    }
  }
}

}  // namespace
}  // namespace pdl::core
