#include "flow/dinic.hpp"

#include <gtest/gtest.h>

namespace pdl::flow {
namespace {

TEST(Dinic, SingleEdge) {
  FlowNetwork net(2);
  const auto e = net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
  EXPECT_EQ(net.flow_on(e), 5);
  EXPECT_EQ(net.capacity_of(e), 5);
}

TEST(Dinic, SeriesBottleneck) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 10);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPaths) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 4);
  net.add_edge(1, 3, 4);
  net.add_edge(0, 2, 6);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 9);
}

TEST(Dinic, ClassicCLRSNetwork) {
  // The standard textbook example with max flow 23.
  FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(Dinic, RequiresAugmentingThroughReverseEdges) {
  // The classic "cross" network where a greedy path must be undone.
  FlowNetwork net(4);
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(1, 2, 1);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
}

TEST(Dinic, DisconnectedSinkGivesZero) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 7);
  EXPECT_EQ(net.max_flow(0, 3), 0);
}

TEST(Dinic, FlowConservationHolds) {
  FlowNetwork net(6);
  std::vector<std::size_t> edges;
  struct E { std::size_t from, to; };
  const std::vector<E> topo = {{0, 1}, {0, 2}, {1, 3}, {2, 3},
                               {1, 4}, {2, 4}, {3, 5}, {4, 5}};
  for (const auto& [from, to] : topo) edges.push_back(net.add_edge(from, to, 3));
  const FlowValue total = net.max_flow(0, 5);
  EXPECT_EQ(total, 6);
  // Conservation at internal nodes.
  for (std::size_t node = 1; node <= 4; ++node) {
    FlowValue in = 0, out = 0;
    for (std::size_t i = 0; i < topo.size(); ++i) {
      if (topo[i].to == node) in += net.flow_on(edges[i]);
      if (topo[i].from == node) out += net.flow_on(edges[i]);
    }
    EXPECT_EQ(in, out) << "node " << node;
  }
}

TEST(Dinic, UnitCapacityBipartiteMatchingShape) {
  // 3x3 bipartite graph, perfect matching exists.
  FlowNetwork net(8);  // 0 = s, 1..3 = left, 4..6 = right, 7 = t
  for (std::size_t l = 1; l <= 3; ++l) net.add_edge(0, l, 1);
  for (std::size_t r = 4; r <= 6; ++r) net.add_edge(r, 7, 1);
  net.add_edge(1, 4, 1);
  net.add_edge(1, 5, 1);
  net.add_edge(2, 4, 1);
  net.add_edge(3, 6, 1);
  EXPECT_EQ(net.max_flow(0, 7), 3);
}

TEST(Dinic, AddNodeGrowsNetwork) {
  FlowNetwork net;
  const auto a = net.add_node();
  const auto b = net.add_node();
  EXPECT_EQ(net.num_nodes(), 2u);
  net.add_edge(a, b, 2);
  EXPECT_EQ(net.max_flow(a, b), 2);
}

TEST(Dinic, InvalidArguments) {
  FlowNetwork net(3);
  EXPECT_THROW(net.add_edge(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(net.add_edge(0, 1, -2), std::invalid_argument);
  EXPECT_THROW(net.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW(net.max_flow(0, 9), std::invalid_argument);
}

TEST(Dinic, FreezeEdgePreventsFurtherUseInBothDirections) {
  FlowNetwork net(2);
  const auto e1 = net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
  net.freeze_edge(e1);
  EXPECT_EQ(net.flow_on(e1), 5) << "frozen flow still reported";
  // A second parallel edge: new max-flow runs cannot reroute through e1.
  net.add_edge(0, 1, 2);
  EXPECT_EQ(net.max_flow(0, 1), 2);
  EXPECT_EQ(net.flow_on(e1), 5);
}

TEST(Dinic, LargeLayeredGraphStress) {
  // 50 layers of 10 nodes, full bipartite between layers, capacity 1.
  const std::size_t layers = 50, width = 10;
  FlowNetwork net(2 + layers * width);
  const std::size_t s = 0, t = 1;
  auto node = [&](std::size_t layer, std::size_t i) {
    return 2 + layer * width + i;
  };
  for (std::size_t i = 0; i < width; ++i) {
    net.add_edge(s, node(0, i), 1);
    net.add_edge(node(layers - 1, i), t, 1);
  }
  for (std::size_t l = 0; l + 1 < layers; ++l) {
    for (std::size_t i = 0; i < width; ++i) {
      for (std::size_t j = 0; j < width; ++j) {
        net.add_edge(node(l, i), node(l + 1, j), 1);
      }
    }
  }
  EXPECT_EQ(net.max_flow(s, t), static_cast<FlowValue>(width));
}

}  // namespace
}  // namespace pdl::flow
