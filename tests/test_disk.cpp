#include "sim/disk.hpp"

#include <gtest/gtest.h>

namespace pdl::sim {
namespace {

TEST(DiskParams, AccessTime) {
  const DiskParams p{.positioning_ms = 10.0, .transfer_ms_per_unit = 2.0};
  EXPECT_DOUBLE_EQ(p.access_ms(1), 12.0);
  EXPECT_DOUBLE_EQ(p.access_ms(5), 20.0);
}

TEST(Disk, IdleDiskServesImmediately) {
  Disk d(DiskParams{10.0, 2.0});
  EXPECT_DOUBLE_EQ(d.submit(100.0), 112.0);
  EXPECT_DOUBLE_EQ(d.busy_until(), 112.0);
}

TEST(Disk, FcfsQueueing) {
  Disk d(DiskParams{10.0, 2.0});
  EXPECT_DOUBLE_EQ(d.submit(0.0), 12.0);
  // Second request at t=5 waits for the first.
  EXPECT_DOUBLE_EQ(d.submit(5.0), 24.0);
  // Third request after the queue drains starts fresh.
  EXPECT_DOUBLE_EQ(d.submit(50.0), 62.0);
}

TEST(Disk, MultiUnitTransfers) {
  Disk d(DiskParams{10.0, 2.0});
  EXPECT_DOUBLE_EQ(d.submit(0.0, 10), 30.0);
  EXPECT_EQ(d.units_transferred(), 10u);
}

TEST(Disk, AccountingAccumulates) {
  Disk d(DiskParams{10.0, 2.0});
  d.submit(0.0);
  d.submit(0.0);
  d.submit(100.0);
  EXPECT_EQ(d.accesses(), 3u);
  EXPECT_DOUBLE_EQ(d.busy_ms(), 36.0);
  EXPECT_EQ(d.units_transferred(), 3u);
}

TEST(Disk, UtilizationIsBusyOverHorizon) {
  Disk d(DiskParams{5.0, 1.0});
  d.submit(0.0);
  d.submit(94.0);  // completes at 100
  EXPECT_DOUBLE_EQ(d.busy_ms() / d.busy_until(), 12.0 / 100.0);
}

}  // namespace
}  // namespace pdl::sim
