// pdl::io::DiskBackend contract tests: range/geometry checks and
// discard/view semantics on MemoryBackend; persistence (write -> close ->
// reopen -> byte-identical), geometry-mismatch refusal, and degraded-
// read/rebuild round-trips across reopen on FileBackend; determinism,
// typed-kIoError surfacing through StripeStore, and bit-rot accounting on
// FaultInjectionBackend.

#include "io/disk_backend.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "api/array.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("pdl_backend_test_" +
       std::to_string(static_cast<unsigned long>(::getpid()))) /
      tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> pattern(std::size_t size, std::uint8_t base) {
  std::vector<std::uint8_t> bytes(size);
  std::iota(bytes.begin(), bytes.end(), base);
  return bytes;
}

// ----------------------------------------------------------------- memory

TEST(MemoryBackend, RoundTripAndViews) {
  MemoryBackend backend;
  ASSERT_TRUE(backend.open({.num_disks = 3, .disk_bytes = 256}).ok());
  EXPECT_EQ(backend.name(), "memory");

  const auto data = pattern(64, 1);
  ASSERT_TRUE(backend.write(1, 100, data).ok());
  std::vector<std::uint8_t> out(64);
  ASSERT_TRUE(backend.read(1, 100, out).ok());
  EXPECT_EQ(out, data);

  // The zero-copy view sees the same bytes and the same edits.
  const auto view = backend.memory_view(1);
  ASSERT_EQ(view.size(), 256u);
  EXPECT_EQ(0, std::memcmp(view.data() + 100, data.data(), data.size()));
  view[100] ^= 0xFF;
  ASSERT_TRUE(backend.read(1, 100, out).ok());
  EXPECT_EQ(out[0], static_cast<std::uint8_t>(data[0] ^ 0xFF));

  ASSERT_TRUE(backend.sync(1).ok());
  ASSERT_TRUE(backend.discard(1, 0xAB).ok());
  ASSERT_TRUE(backend.read(1, 0, out).ok());
  for (const auto b : out) EXPECT_EQ(b, 0xAB);
  // Other disks untouched by the discard.
  ASSERT_TRUE(backend.read(0, 0, out).ok());
  for (const auto b : out) EXPECT_EQ(b, 0);
}

TEST(MemoryBackend, RangeChecksAreTyped) {
  MemoryBackend backend;
  ASSERT_TRUE(backend.open({.num_disks = 2, .disk_bytes = 128}).ok());
  std::vector<std::uint8_t> buf(64);

  EXPECT_EQ(backend.read(2, 0, buf).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(backend.write(0, 65, buf).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(backend.read(0, 128, buf).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(backend.sync(9).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(backend.discard(9, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(backend.read(0, 64, buf).ok());  // exactly at the end is fine
  EXPECT_TRUE(backend.memory_view(5).empty());
}

// ------------------------------------------------------------------- file

TEST(FileBackend, PersistsAcrossCloseAndReopen) {
  const auto dir = fresh_dir("persist");
  const auto data = pattern(128, 7);
  {
    FileBackend backend({.directory = dir.string()});
    ASSERT_TRUE(backend.open({.num_disks = 2, .disk_bytes = 512}).ok());
    EXPECT_EQ(backend.name(), "file");
    EXPECT_TRUE(backend.memory_view(0).empty());  // no zero-copy for files
    ASSERT_TRUE(backend.write(1, 300, data).ok());
    ASSERT_TRUE(backend.sync(1).ok());
  }  // closed
  {
    FileBackend backend({.directory = dir.string()});
    ASSERT_TRUE(backend.open({.num_disks = 2, .disk_bytes = 512}).ok());
    std::vector<std::uint8_t> out(128);
    ASSERT_TRUE(backend.read(1, 300, out).ok());
    EXPECT_EQ(out, data);
    // Fresh regions of a reopened image still read as zeros.
    ASSERT_TRUE(backend.read(0, 0, out).ok());
    for (const auto b : out) EXPECT_EQ(b, 0);
  }
  std::filesystem::remove_all(dir);
}

TEST(FileBackend, RefusesGeometryMismatchOnReopen) {
  const auto dir = fresh_dir("mismatch");
  {
    FileBackend backend({.directory = dir.string()});
    ASSERT_TRUE(backend.open({.num_disks = 2, .disk_bytes = 512}).ok());
  }
  {
    // Different disk_bytes: refused.
    FileBackend backend({.directory = dir.string()});
    const Status opened = backend.open({.num_disks = 2, .disk_bytes = 1024});
    EXPECT_EQ(opened.code(), StatusCode::kFailedPrecondition);
  }
  {
    // Same disk_bytes but different disk count: image sizes alone could
    // not catch this (O_CREAT would add fresh zero disks); the geometry
    // manifest must.
    FileBackend backend({.directory = dir.string()});
    const Status opened = backend.open({.num_disks = 3, .disk_bytes = 512});
    EXPECT_EQ(opened.code(), StatusCode::kFailedPrecondition);
  }
  {
    // The matching geometry still reopens fine.
    FileBackend backend({.directory = dir.string()});
    EXPECT_TRUE(backend.open({.num_disks = 2, .disk_bytes = 512}).ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(FileBackend, DiscardFillsWholeImage) {
  const auto dir = fresh_dir("discard");
  FileBackend backend({.directory = dir.string()});
  ASSERT_TRUE(backend.open({.num_disks = 1, .disk_bytes = 3000}).ok());
  ASSERT_TRUE(backend.write(0, 0, pattern(256, 3)).ok());
  ASSERT_TRUE(backend.discard(0, 0xDD).ok());
  std::vector<std::uint8_t> out(3000);
  ASSERT_TRUE(backend.read(0, 0, out).ok());
  for (const auto b : out) ASSERT_EQ(b, 0xDD);
  std::filesystem::remove_all(dir);
}

/// The satellite acceptance scenario: write through a file-backed store,
/// tear the store down, re-create it over the same directory, then fail a
/// disk -- degraded reads and a rebuild must reproduce the first
/// process's bytes exactly.
TEST(FileBackend, StoreReopenDegradedReadAndRebuildRoundTrip) {
  const auto dir = fresh_dir("store_roundtrip");
  constexpr std::uint64_t kSeed = 0xFADE;
  constexpr DiskId kVictim = 4;
  const StripeStoreOptions store_options{.unit_bytes = 96, .iterations = 2};

  auto make_array = [] {
    return api::Array::create({.num_disks = 17, .stripe_size = 5});
  };

  std::uint64_t victim_checksum = 0;
  std::uint64_t num_units = 0;
  {
    auto array = make_array();
    ASSERT_TRUE(array.ok());
    auto store = StripeStore::create(
        std::move(array).value(), store_options,
        make_file_backend({.directory = dir.string()}));
    ASSERT_TRUE(store.ok()) << store.status().to_string();
    num_units = store->num_logical_units();
    ASSERT_TRUE(fill_canonical(*store, 0, num_units, kSeed).ok());
    ASSERT_TRUE(store->sync().ok());
    const auto sum = store->checksum_disk(kVictim);
    ASSERT_TRUE(sum.ok());
    victim_checksum = *sum;
  }  // first store (and its descriptors) gone

  auto array = make_array();
  ASSERT_TRUE(array.ok());
  auto store = StripeStore::create(
      std::move(array).value(), store_options,
      make_file_backend({.directory = dir.string()}));
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  ASSERT_EQ(store->num_logical_units(), num_units);

  // The reopened image serves the first process's bytes.
  std::vector<std::uint8_t> unit(store->unit_bytes());
  std::vector<std::uint8_t> expected(store->unit_bytes());
  for (std::uint64_t logical = 0; logical < num_units; ++logical) {
    ASSERT_TRUE(store->read(logical, unit).ok()) << logical;
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << logical;
  }

  // Degraded reads across the reopen: parity persisted with the data.
  ASSERT_TRUE(store->fail_disk(kVictim).ok());
  std::uint64_t degraded = 0;
  for (std::uint64_t logical = 0; logical < num_units; ++logical) {
    ReadReceipt receipt;
    ASSERT_TRUE(store->read(logical, unit, &receipt).ok()) << logical;
    canonical_fill(logical, kSeed, expected);
    ASSERT_EQ(unit, expected) << logical;
    if (receipt.kind == api::ReadPlan::Kind::kDegraded) ++degraded;
  }
  EXPECT_GT(degraded, 0u);

  // Rebuild restores the victim image checksum-identically.
  ASSERT_TRUE(store->replace_disk(kVictim).ok());
  const auto outcome = store->rebuild();
  ASSERT_TRUE(outcome.ok());
  const auto rebuilt = store->checksum_disk(kVictim);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, victim_checksum);
  EXPECT_TRUE(store->array().healthy());

  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjectionBackend, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    FaultInjectionBackend backend(make_memory_backend(),
                                  {.seed = seed,
                                   .read_error_probability = 0.3,
                                   .bit_rot_probability = 0.2});
    EXPECT_TRUE(backend.open({.num_disks = 1, .disk_bytes = 4096}).ok());
    std::vector<std::uint8_t> buf(64);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 200; ++i)
      codes.push_back(backend.read(0, 0, buf).code());
    const auto stats = backend.stats();
    EXPECT_EQ(stats.reads, 200u);
    EXPECT_GT(stats.injected_read_errors, 0u);
    EXPECT_GT(stats.injected_bit_flips, 0u);
    return std::make_pair(codes, stats.injected_read_errors);
  };
  const auto a = run(11);
  const auto b = run(11);
  const auto c = run(12);
  EXPECT_EQ(a.first, b.first);    // same seed, same fault sequence
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first);    // different seed, different sequence
}

TEST(FaultInjectionBackend, BitRotCorruptsPayloadNotSubstrate) {
  FaultInjectionBackend backend(make_memory_backend(),
                                {.seed = 5, .bit_rot_probability = 1.0});
  ASSERT_TRUE(backend.open({.num_disks = 1, .disk_bytes = 256}).ok());
  const auto data = pattern(32, 9);
  ASSERT_TRUE(backend.write(0, 0, data).ok());

  std::vector<std::uint8_t> out(32);
  ASSERT_TRUE(backend.read(0, 0, out).ok());
  // Exactly one bit differs per read...
  int diff_bits = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    diff_bits += __builtin_popcount(out[i] ^ data[i]);
  EXPECT_EQ(diff_bits, 1);
  EXPECT_EQ(backend.stats().injected_bit_flips, 1u);
}

TEST(FaultInjectionBackend, InjectedEioSurfacesAsTypedStatusFromStore) {
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok());
  auto flaky = std::make_unique<FaultInjectionBackend>(
      make_memory_backend(),
      FaultInjectionOptions{.seed = 3, .read_error_probability = 1.0});
  FaultInjectionBackend* flaky_raw = flaky.get();
  auto store = StripeStore::create(std::move(array).value(),
                                   {.unit_bytes = 64, .iterations = 1},
                                   std::move(flaky));
  ASSERT_TRUE(store.ok()) << store.status().to_string();

  // Every read fails with kIoError -- the typed code, not a crash, not
  // garbage bytes.
  std::vector<std::uint8_t> unit(store->unit_bytes());
  const Status read = store->read(0, unit);
  EXPECT_EQ(read.code(), StatusCode::kIoError);
  EXPECT_GT(flaky_raw->stats().injected_read_errors, 0u);

  // Writes read old data/parity first (RMW), so they fail typed too.
  const Status written = store->write(0, unit);
  EXPECT_EQ(written.code(), StatusCode::kIoError);
}

/// Decorator failing exactly the Nth write() after arm(): lets a test
/// target one specific physical write inside a store operation.
class FailNthWriteBackend final : public DiskBackend {
 public:
  explicit FailNthWriteBackend(std::unique_ptr<DiskBackend> inner)
      : inner_(std::move(inner)) {}

  void arm(int fail_on) { fail_on_ = fail_on; count_ = 0; }

  Status open(const BackendGeometry& g) override { return inner_->open(g); }
  Status read(DiskId d, std::uint64_t off,
              std::span<std::uint8_t> out) override {
    return inner_->read(d, off, out);
  }
  Status write(DiskId d, std::uint64_t off,
               std::span<const std::uint8_t> data) override {
    if (fail_on_ > 0 && ++count_ == fail_on_) {
      fail_on_ = 0;
      return Status::io_error("scripted write failure");
    }
    return inner_->write(d, off, data);
  }
  Status sync(DiskId d) override { return inner_->sync(d); }
  Status discard(DiskId d, std::uint8_t fill) override {
    return inner_->discard(d, fill);
  }
  std::string_view name() const noexcept override { return "fail-nth"; }
  // memory_view stays empty (base default): the store must use the
  // backend read/write path, where the rollback logic lives.

 private:
  std::unique_ptr<DiskBackend> inner_;
  int fail_on_ = 0;
  int count_ = 0;
};

// A torn read-modify-write (new parity landed, data write failed) must
// roll the parity back: the stripe stays consistent with the OLD data,
// and a degraded read after a subsequent disk failure serves the old
// bytes -- not garbage.
TEST(DiskBackendStore, TornRmwRollsBackParity) {
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok());
  auto failer =
      std::make_unique<FailNthWriteBackend>(make_memory_backend());
  FailNthWriteBackend* failer_raw = failer.get();
  auto store = StripeStore::create(std::move(array).value(),
                                   {.unit_bytes = 64, .iterations = 1},
                                   std::move(failer));
  ASSERT_TRUE(store.ok()) << store.status().to_string();

  const std::uint64_t logical = 0;
  std::vector<std::uint8_t> old_data(store->unit_bytes(), 0x11);
  std::vector<std::uint8_t> new_data(store->unit_bytes(), 0x22);
  WriteReceipt receipt;
  ASSERT_TRUE(store->write(logical, old_data, &receipt).ok());
  ASSERT_EQ(receipt.kind, api::WritePlan::Kind::kReadModifyWrite);
  const DiskId data_disk = receipt.writes[0].disk;

  // The no-view RMW issues two backend writes: parity first, then data.
  // Fail the second -> torn write, rollback path.
  failer_raw->arm(2);
  const Status torn = store->write(logical, new_data);
  EXPECT_EQ(torn.code(), StatusCode::kIoError);

  // The unit still reads back as the old bytes...
  std::vector<std::uint8_t> got(store->unit_bytes());
  ASSERT_TRUE(store->read(logical, got).ok());
  EXPECT_EQ(got, old_data);

  // ...and -- the actual rollback guarantee -- parity agrees with them:
  // losing the data disk reconstructs the OLD bytes from survivors.
  ASSERT_TRUE(store->fail_disk(data_disk).ok());
  ReadReceipt degraded;
  ASSERT_TRUE(store->read(logical, got, &degraded).ok());
  EXPECT_EQ(degraded.kind, api::ReadPlan::Kind::kDegraded);
  EXPECT_EQ(got, old_data);
}

// After the rollback, retrying the same write must succeed and leave
// parity consistent with the NEW bytes.
TEST(DiskBackendStore, RetryAfterTornRmwIsSafe) {
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok());
  auto failer =
      std::make_unique<FailNthWriteBackend>(make_memory_backend());
  FailNthWriteBackend* failer_raw = failer.get();
  auto store = StripeStore::create(std::move(array).value(),
                                   {.unit_bytes = 64, .iterations = 1},
                                   std::move(failer));
  ASSERT_TRUE(store.ok());

  const std::uint64_t logical = 3;
  std::vector<std::uint8_t> old_data(store->unit_bytes(), 0x33);
  std::vector<std::uint8_t> new_data(store->unit_bytes(), 0x44);
  WriteReceipt receipt;
  ASSERT_TRUE(store->write(logical, old_data, &receipt).ok());
  const DiskId data_disk = receipt.writes[0].disk;

  failer_raw->arm(2);
  ASSERT_EQ(store->write(logical, new_data).code(), StatusCode::kIoError);
  ASSERT_TRUE(store->write(logical, new_data).ok());  // the documented retry

  ASSERT_TRUE(store->fail_disk(data_disk).ok());
  std::vector<std::uint8_t> got(store->unit_bytes());
  ReadReceipt degraded;
  ASSERT_TRUE(store->read(logical, got, &degraded).ok());
  EXPECT_EQ(degraded.kind, api::ReadPlan::Kind::kDegraded);
  EXPECT_EQ(got, new_data);
}

TEST(FaultInjectionBackend, DecoratorHidesMemoryViews) {
  // If the decorator leaked the inner backend's views, the store would
  // bypass injection entirely.
  FaultInjectionBackend backend(make_memory_backend(), {.seed = 1});
  ASSERT_TRUE(backend.open({.num_disks = 2, .disk_bytes = 64}).ok());
  EXPECT_TRUE(backend.memory_view(0).empty());
}

// StripeStore::create must pass backend open failures through typed.
TEST(DiskBackendStore, OpenFailurePropagates) {
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  ASSERT_TRUE(array.ok());
  // A file backend pointed at an unusable path (a path *under* an
  // existing file cannot be created as a directory).
  const auto dir = fresh_dir("open_fail");
  std::filesystem::create_directories(dir);
  const auto blocker = dir / "blocker";
  {
    std::vector<std::uint8_t> byte{0};
    FILE* f = std::fopen(blocker.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(byte.data(), 1, 1, f);
    std::fclose(f);
  }
  auto store = StripeStore::create(
      std::move(array).value(), {.unit_bytes = 64},
      make_file_backend({.directory = (blocker / "nested").string()}));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIoError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pdl::io
