#include "layout/disk_removal.hpp"

#include <gtest/gtest.h>

#include "layout/metrics.hpp"

namespace pdl::layout {
namespace {

using Param = std::pair<std::uint32_t, std::uint32_t>;

class Theorem8Sweep : public ::testing::TestWithParam<Param> {};

TEST_P(Theorem8Sweep, RemoveOneDiskKeepsPerfectBalance) {
  const auto [v, k] = GetParam();
  const auto rd = design::make_ring_design(v, k);
  const Layout l = remove_one_disk(rd, /*removed=*/v / 2);

  EXPECT_EQ(l.num_disks(), v - 1);
  EXPECT_EQ(l.units_per_disk(), k * (v - 1)) << "size stays k(v-1)";
  EXPECT_TRUE(l.validate().empty());

  const auto m = compute_metrics(l);
  // Stripe sizes k and k-1.
  EXPECT_EQ(m.min_stripe_size, k - 1);
  EXPECT_EQ(m.max_stripe_size, k);
  // Parity: exactly v per disk -> overhead (1/k) * (v/(v-1)).
  EXPECT_EQ(m.min_parity_units, v);
  EXPECT_EQ(m.max_parity_units, v);
  EXPECT_DOUBLE_EQ(m.max_parity_overhead,
                   (1.0 / k) * (static_cast<double>(v) / (v - 1)));
  // Reconstruction workload exactly (k-1)/(v-1).
  EXPECT_EQ(m.min_recon_units, k * (k - 1));
  EXPECT_EQ(m.max_recon_units, k * (k - 1));
  EXPECT_DOUBLE_EQ(m.max_recon_workload,
                   static_cast<double>(k - 1) / (v - 1));
}

INSTANTIATE_TEST_SUITE_P(Cases, Theorem8Sweep,
                         ::testing::Values(Param{5, 3}, Param{7, 3},
                                           Param{8, 4}, Param{9, 4},
                                           Param{11, 4}, Param{13, 5},
                                           Param{16, 4}, Param{17, 6},
                                           Param{25, 5}));

TEST(Theorem8, EveryRemovedDiskChoiceWorks) {
  const auto rd = design::make_ring_design(9, 4);
  for (design::Elem removed = 0; removed < 9; ++removed) {
    const Layout l = remove_one_disk(rd, removed);
    const auto m = compute_metrics(l);
    ASSERT_EQ(m.min_parity_units, 9u) << "removed=" << removed;
    ASSERT_EQ(m.max_parity_units, 9u) << "removed=" << removed;
  }
}

struct T9Case {
  std::uint32_t v, k, i;
};

class Theorem9Sweep : public ::testing::TestWithParam<T9Case> {};

TEST_P(Theorem9Sweep, MultiRemovalWithinTheoremBounds) {
  const auto [v, k, i] = GetParam();
  ASSERT_LE(i * i, k) << "test case must satisfy i <= sqrt(k)";
  const Layout l = removal_layout(v, k, i);

  EXPECT_EQ(l.num_disks(), v - i);
  EXPECT_EQ(l.units_per_disk(), k * (v - 1));
  EXPECT_TRUE(l.validate().empty());

  const auto m = compute_metrics(l);
  EXPECT_GE(m.min_stripe_size, k - i);
  if (k < v) {
    EXPECT_EQ(m.max_stripe_size, k);
  } else {
    // k = v: every stripe contains every removed disk, so all stripes
    // shrink to exactly k - i.
    EXPECT_EQ(m.max_stripe_size, k - i);
  }
  // Parity counts in {v+i-1, v+i}.
  EXPECT_GE(m.min_parity_units, v + i - 1);
  EXPECT_LE(m.max_parity_units, v + i);
  // Reconstruction workload exactly (k-1)/(v-1) (all pairs still share
  // lambda stripes).
  EXPECT_EQ(m.min_recon_units, k * (k - 1));
  EXPECT_EQ(m.max_recon_units, k * (k - 1));
}

INSTANTIATE_TEST_SUITE_P(Cases, Theorem9Sweep,
                         ::testing::Values(T9Case{9, 4, 2}, T9Case{11, 4, 2},
                                           T9Case{13, 9, 3}, T9Case{16, 9, 3},
                                           T9Case{17, 4, 2}, T9Case{25, 9, 3},
                                           T9Case{16, 16, 4},
                                           T9Case{27, 16, 4}));

TEST(Theorem9, OrphanCountIsIByIMinus1) {
  // For i removed disks there are exactly i(i-1) stripes whose Theorem-8
  // parity target is also removed; indirectly visible as parity spread:
  // with i(i-1) > 0 orphans matched one-per-disk, some disks get v+i and
  // the rest v+i-1; the number at v+i must be exactly i(i-1).
  const std::uint32_t v = 16, k = 9, i = 3;
  const Layout l = removal_layout(v, k, i);
  const auto parity = l.parity_units_per_disk();
  std::uint32_t at_hi = 0;
  for (const auto c : parity) {
    if (c == v + i) ++at_hi;
  }
  EXPECT_EQ(at_hi, i * (i - 1));
}

TEST(Theorem9, RejectsTooManyRemovals) {
  const auto rd = design::make_ring_design(16, 4);
  const std::vector<design::Elem> three = {0, 1, 2};  // 3*3 > 4
  EXPECT_THROW(remove_disks(rd, three), std::invalid_argument);
}

TEST(Theorem9, RejectsDuplicatesAndOutOfRange) {
  const auto rd = design::make_ring_design(16, 9);
  const std::vector<design::Elem> dup = {1, 1};
  EXPECT_THROW(remove_disks(rd, dup), std::invalid_argument);
  const std::vector<design::Elem> oob = {1, 77};
  EXPECT_THROW(remove_disks(rd, oob), std::invalid_argument);
  EXPECT_THROW(remove_disks(rd, {}), std::invalid_argument);
}

TEST(Theorem9, ArbitraryRemovalSetsWork) {
  const auto rd = design::make_ring_design(13, 9);
  for (const auto& removed : std::vector<std::vector<design::Elem>>{
           {0, 12}, {3, 7}, {0, 5, 11}, {2, 6, 9}}) {
    const Layout l = remove_disks(rd, removed);
    EXPECT_TRUE(l.validate().empty());
    const auto m = compute_metrics(l);
    const auto i = static_cast<std::uint32_t>(removed.size());
    EXPECT_GE(m.min_parity_units, 13 + i - 1);
    EXPECT_LE(m.max_parity_units, 13 + i);
  }
}

TEST(RemovalLayout, ConvenienceWrapperMatchesDirectCalls) {
  const Layout a = removal_layout(9, 4, 1);
  const auto rd = design::make_ring_design(9, 4);
  const Layout b = remove_one_disk(rd, 0);
  EXPECT_EQ(a.num_disks(), b.num_disks());
  EXPECT_EQ(a.units_per_disk(), b.units_per_disk());
  EXPECT_EQ(compute_metrics(a).max_parity_units,
            compute_metrics(b).max_parity_units);
}

}  // namespace
}  // namespace pdl::layout
