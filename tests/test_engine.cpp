#include "engine/planner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "layout/feasibility.hpp"

namespace pdl::engine {
namespace {

using core::ArraySpec;
using core::BuildOptions;
using core::Construction;

const ConstructionPlanner& planner() {
  return ConstructionPlanner::default_planner();
}

TEST(ConstructionPlanner, AllSixConstructionsRegistered) {
  EXPECT_EQ(planner().num_builders(), 6u);
  for (const Construction c :
       {Construction::kRaid5, Construction::kRingLayout,
        Construction::kBibdFlow, Construction::kBibdPerfect,
        Construction::kRemoval, Construction::kStairway}) {
    const LayoutBuilder* builder = planner().find(c);
    ASSERT_NE(builder, nullptr) << core::construction_name(c);
    EXPECT_EQ(builder->construction(), c);
    EXPECT_FALSE(builder->name().empty());
  }
}

TEST(ConstructionPlanner, DuplicateRegistrationThrows) {
  // A fresh planner with the defaults refuses a second copy of any of them.
  ConstructionPlanner fresh;
  register_default_builders(fresh);
  EXPECT_THROW(register_default_builders(fresh), std::invalid_argument);
  EXPECT_THROW(fresh.register_builder(nullptr), std::invalid_argument);
}

TEST(ConstructionPlanner, InvalidSpecsRejected) {
  EXPECT_THROW((void)planner().rank_plans({.num_disks = 1, .stripe_size = 1},
                                          {}),
               std::invalid_argument);
  EXPECT_THROW((void)planner().build_best({.num_disks = 4, .stripe_size = 5}),
               std::invalid_argument);
  EXPECT_THROW((void)planner().build_with(Construction::kRingLayout,
                                          {.num_disks = 4, .stripe_size = 1}),
               std::invalid_argument);
}

TEST(ConstructionPlanner, RankingIsSortedAndAdmissible) {
  const BuildOptions options{.unit_budget = 100'000};
  const auto plans =
      planner().rank_plans({.num_disks = 33, .stripe_size = 5}, options);
  ASSERT_FALSE(plans.empty());
  for (std::size_t i = 0; i + 1 < plans.size(); ++i) {
    const bool ordered =
        plans[i].balance < plans[i + 1].balance ||
        (plans[i].balance == plans[i + 1].balance &&
         plans[i].units_per_disk <= plans[i + 1].units_per_disk);
    EXPECT_TRUE(ordered) << "rank " << i;
  }
  for (const auto& plan : plans) {
    EXPECT_LE(plan.units_per_disk, options.unit_budget);
    EXPECT_EQ(plan.spec.num_disks, 33u);
    EXPECT_EQ(plan.table_entries(), 33u * plan.units_per_disk);
  }
}

TEST(ConstructionPlanner, PolicyFiltersApply) {
  const ArraySpec spec{.num_disks = 100, .stripe_size = 5};
  // Perfect-parity requirement drops every plan that does not predict it.
  for (const auto& plan : planner().rank_plans(
           spec, {.unit_budget = 100'000, .require_perfect_parity = true})) {
    EXPECT_TRUE(plan.perfect_parity);
  }
  // Disallowing approximate routes drops the Section 3 constructions.
  for (const auto& plan : planner().rank_plans(
           spec, {.unit_budget = 100'000, .allow_approximate = false})) {
    EXPECT_NE(plan.balance, BalanceClass::kApproximate);
  }
  // A tiny budget drops everything.
  EXPECT_TRUE(planner().rank_plans(spec, {.unit_budget = 10}).empty());
}

TEST(ConstructionPlanner, RaidOnlyWhenKEqualsV) {
  const auto plans =
      planner().rank_plans({.num_disks = 8, .stripe_size = 8}, {});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans.front().construction, Construction::kRaid5);
  EXPECT_EQ(plans.front().units_per_disk, 8u);

  for (const auto& plan :
       planner().rank_plans({.num_disks = 16, .stripe_size = 4},
                            {.unit_budget = 100'000})) {
    EXPECT_NE(plan.construction, Construction::kRaid5);
  }
}

TEST(ConstructionPlanner, BuildWithForcesConstruction) {
  const ArraySpec spec{.num_disks = 33, .stripe_size = 5};
  const BuildOptions options{.unit_budget = 100'000};
  const auto stairway =
      planner().build_with(Construction::kStairway, spec, options);
  ASSERT_TRUE(stairway.has_value());
  EXPECT_EQ(stairway->construction, Construction::kStairway);
  EXPECT_TRUE(stairway->layout.validate().empty());

  const auto removal =
      planner().build_with(Construction::kRemoval, spec, options);
  ASSERT_TRUE(removal.has_value());
  EXPECT_EQ(removal->construction, Construction::kRemoval);

  // Ring layout does not apply at (33, 5).
  EXPECT_FALSE(
      planner().build_with(Construction::kRingLayout, spec, options));
}

TEST(ConstructionPlanner, BuildBestMatchesTopRankedPlan) {
  const BuildOptions options{.unit_budget = 100'000};
  for (const std::uint32_t v : {8u, 13u, 16u, 21u, 33u, 50u}) {
    for (const std::uint32_t k : {3u, 4u, 5u}) {
      const ArraySpec spec{.num_disks = v, .stripe_size = k};
      const auto plans = planner().rank_plans(spec, options);
      const auto built = planner().build_best(spec, options);
      ASSERT_EQ(built.has_value(), !plans.empty()) << "v=" << v << " k=" << k;
      if (built) {
        EXPECT_EQ(built->construction, plans.front().construction)
            << "v=" << v << " k=" << k;
      }
    }
  }
}

TEST(ConstructionPlanner, ShimDelegatesToRegistry) {
  // core::build_layout (kept as a deprecated shim for one release) must
  // agree with the planner it wraps.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  for (const std::uint32_t v : {9u, 17u, 25u, 40u}) {
    const ArraySpec spec{.num_disks = v, .stripe_size = 4};
    const BuildOptions options{.unit_budget = 100'000};
    const auto via_shim = core::build_layout(spec, options);
    const auto via_planner = planner().build_best(spec, options);
    ASSERT_EQ(via_shim.has_value(), via_planner.has_value()) << "v=" << v;
    if (via_shim) {
      EXPECT_EQ(via_shim->construction, via_planner->construction);
      EXPECT_EQ(via_shim->metrics.units_per_disk,
                via_planner->metrics.units_per_disk);
    }
  }
  // The shim keeps its documented throwing contract for invalid specs.
  EXPECT_THROW((void)core::build_layout({.num_disks = 4, .stripe_size = 5}),
               std::invalid_argument);
#pragma GCC diagnostic pop
}

// The engine's core contract: plan() is an exact prediction of build().
TEST(ConstructionPlanner, PlansMatchMeasuredMetricsAcrossSweep) {
  const BuildOptions options{.unit_budget = 100'000};
  std::size_t built_count = 0;
  for (const std::uint32_t v : {6u, 8u, 9u, 13u, 16u, 17u, 20u, 21u, 25u,
                                33u, 50u}) {
    for (const std::uint32_t k : {3u, 4u, 5u, v}) {
      if (k > v) continue;
      const ArraySpec spec{.num_disks = v, .stripe_size = k};
      for (const auto& builder : planner().builders()) {
        const auto plan = builder->plan(spec, options);
        if (!plan) continue;
        EXPECT_EQ(plan->construction, builder->construction());
        if (plan->units_per_disk > 20'000) continue;  // keep the test fast
        const core::BuiltLayout built = builder->build(*plan);
        ++built_count;
        const std::string where = "v=" + std::to_string(v) +
                                  " k=" + std::to_string(k) + " via " +
                                  std::string(builder->name());
        EXPECT_EQ(built.construction, plan->construction) << where;
        EXPECT_EQ(built.metrics.units_per_disk, plan->units_per_disk)
            << where;
        EXPECT_EQ(built.layout.num_disks(), v) << where;
        EXPECT_TRUE(built.layout.validate().empty()) << where;
        if (plan->perfect_parity) {
          EXPECT_EQ(built.metrics.min_parity_units,
                    built.metrics.max_parity_units)
              << where;
        }
      }
    }
  }
  // The sweep must actually exercise a healthy number of builds.
  EXPECT_GE(built_count, 30u);
}

}  // namespace
}  // namespace pdl::engine
