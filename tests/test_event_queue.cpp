#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace pdl::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](SimTime) { order.push_back(3); });
  q.schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.schedule(2.0, [&](SimTime) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](SimTime) { order.push_back(0); });
  q.schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.schedule(1.0, [&](SimTime) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    ++fired;
    if (fired < 5) q.schedule(t + 1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [&](SimTime) {
    EXPECT_THROW(q.schedule(1.0, [](SimTime) {}), std::invalid_argument);
  });
  q.run();
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue q;
  int fired = 0;
  q.schedule(2.0, [&](SimTime t) {
    q.schedule(t, [&](SimTime) { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunawayGuard) {
  EventQueue q;
  std::function<void(SimTime)> forever = [&](SimTime t) {
    q.schedule(t + 1.0, forever);
  };
  q.schedule(0.0, forever);
  EXPECT_THROW(q.run(/*max_events=*/1000), std::runtime_error);
}

TEST(EventQueue, EmptyRunIsNoop) {
  EventQueue q;
  q.run();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

}  // namespace
}  // namespace pdl::sim
