// Multi-failure regression tests for the fault-injection scenario engine:
// deterministic timelines with exact expectations -- a second failure
// mid-rebuild flags data loss exactly when an unrecovered stripe instance
// loses two units, distributed sparing declusters rebuild writes within one
// unit of the flow bound, and fixed seeds reproduce bit-identical
// ScenarioResults.

#include <gtest/gtest.h>

#include <algorithm>

#include "layout/metrics.hpp"
#include "layout/ring_layout.hpp"
#include "layout/sparing.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/reconstruction.hpp"
#include "sim/rebuild_scheduler.hpp"
#include "sim/scenario.hpp"

namespace pdl::sim {
namespace {

const DiskParams kDisk{10.0, 2.0};  // 12 ms per single-unit access

ScenarioConfig config_with(std::uint32_t iterations = 1,
                           std::uint32_t depth = 4, double delay = 0.0) {
  return ScenarioConfig{kDisk, depth, iterations, delay};
}

/// The complete design on 4 disks with k = 3: stripes {0,1,2}, {0,1,3},
/// {0,2,3}, {1,2,3}.  Disks 0 and 1 share exactly two stripes, so failing
/// both loses exactly two stripe instances per iteration.
layout::Layout tiny_layout() {
  layout::Layout l(4, 3);
  l.append_stripe({0, 1, 2}, 0);
  l.append_stripe({0, 1, 3}, 1);
  l.append_stripe({0, 2, 3}, 2);
  l.append_stripe({1, 2, 3}, 0);
  return l;
}

TEST(FaultTimeline, ScriptedSortsAndValidates) {
  const auto t =
      FaultTimeline::scripted({{50.0, 3}, {10.0, 1}, {30.0, 2}});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.failures()[0], (FaultEvent{10.0, 1}));
  EXPECT_EQ(t.failures()[1], (FaultEvent{30.0, 2}));
  EXPECT_EQ(t.failures()[2], (FaultEvent{50.0, 3}));
  EXPECT_THROW(FaultTimeline::scripted({{-1.0, 0}}), std::invalid_argument);
  EXPECT_THROW(FaultTimeline::scripted({{0.0, 0}, {5.0, 0}}),
               std::invalid_argument);
}

TEST(FaultTimeline, RandomIsDeterministicAndBounded) {
  const RandomFaultConfig cfg{
      .num_disks = 12, .mean_arrival_ms = 100.0, .horizon_ms = 1000.0,
      .max_failures = 4, .seed = 99};
  const auto a = FaultTimeline::random(cfg);
  const auto b = FaultTimeline::random(cfg);
  EXPECT_EQ(a.failures(), b.failures());
  EXPECT_LE(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(a.failures()[i].time_ms, 1000.0);
    EXPECT_LT(a.failures()[i].disk, 12u);
    if (i > 0) {
      EXPECT_GE(a.failures()[i].time_ms, a.failures()[i - 1].time_ms);
    }
  }
  const auto c = FaultTimeline::random(
      {.num_disks = 12, .mean_arrival_ms = 100.0, .horizon_ms = 1000.0,
       .max_failures = 4, .seed = 100});
  EXPECT_NE(a.failures(), c.failures());
}

TEST(Scenario, SingleFailureMatchesReconstructionAnalysis) {
  const auto layout = layout::ring_based_layout(9, 3);
  const ScenarioSimulator sim(layout, config_with(/*iterations=*/2));
  const auto fifo = make_fifo_scheduler();
  const auto result =
      sim.run(FaultTimeline::scripted({{0.0, 2}}), {}, *fifo);

  const auto analysis = analyze_reconstruction(layout, 2);
  // Every stripe crossing disk 2 is rebuilt once per iteration.
  const std::uint64_t crossing = analysis.total_units / 2;  // k-1 reads each
  ASSERT_EQ(result.rebuilds.size(), 1u);
  EXPECT_EQ(result.rebuilds[0].disk, 2u);
  EXPECT_EQ(result.rebuilds[0].stripes_rebuilt, crossing * 2);
  EXPECT_GT(result.rebuilds[0].end_ms, 0.0);
  EXPECT_FALSE(result.data_loss);
  EXPECT_EQ(result.stripe_instances_lost, 0u);

  for (layout::DiskId d = 0; d < 9; ++d) {
    EXPECT_EQ(result.rebuild_reads_per_disk[d],
              2ull * analysis.units_to_read[d])
        << "disk " << d;
  }
  // Dedicated mode: every rebuilt unit is written in place on the failed
  // disk's replacement.
  for (layout::DiskId d = 0; d < 9; ++d) {
    EXPECT_EQ(result.rebuild_writes_per_disk[d], d == 2 ? crossing * 2 : 0u);
  }

  // Timeline: failure -> rebuild_start -> repair_complete, phases pure
  // rebuilding (normal and restored spans are empty without user traffic).
  ASSERT_GE(result.events.size(), 3u);
  EXPECT_EQ(result.events[0].kind, ScenarioEventKind::kFailure);
  EXPECT_EQ(result.events[1].kind, ScenarioEventKind::kRebuildStart);
  EXPECT_EQ(result.events.back().kind, ScenarioEventKind::kRepairComplete);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].phase, ScenarioPhase::kRebuilding);
  EXPECT_DOUBLE_EQ(result.phases[0].end_ms, result.rebuilds[0].end_ms);
}

TEST(Scenario, RebuildDelayOpensADegradedPhase) {
  const auto layout = layout::ring_based_layout(9, 3);
  const ScenarioSimulator sim(layout, config_with(1, 4, /*delay=*/50.0));
  const auto fifo = make_fifo_scheduler();
  const auto result =
      sim.run(FaultTimeline::scripted({{0.0, 0}}), {}, *fifo);
  ASSERT_GE(result.phases.size(), 2u);
  EXPECT_EQ(result.phases[0].phase, ScenarioPhase::kDegraded);
  EXPECT_DOUBLE_EQ(result.phases[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.phases[0].end_ms, 50.0);
  EXPECT_EQ(result.phases[1].phase, ScenarioPhase::kRebuilding);
  ASSERT_EQ(result.rebuilds.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rebuilds[0].start_ms, 50.0);
}

TEST(Scenario, SequentialFailuresAfterRestoreLoseNothing) {
  const auto layout = layout::ring_based_layout(9, 3);
  const ScenarioSimulator sim(layout, config_with());
  const auto fifo = make_fifo_scheduler();
  const auto first =
      sim.run(FaultTimeline::scripted({{0.0, 0}}), {}, *fifo);
  const double restored_at = first.rebuilds[0].end_ms;

  const auto result = sim.run(
      FaultTimeline::scripted({{0.0, 0}, {restored_at + 1.0, 5}}), {}, *fifo);
  EXPECT_FALSE(result.data_loss);
  EXPECT_EQ(result.stripe_instances_lost, 0u);
  ASSERT_EQ(result.rebuilds.size(), 2u);
  EXPECT_EQ(result.rebuilds[1].disk, 5u);
  // Between the two rebuilds the array sat restored.
  ASSERT_GE(result.phases.size(), 3u);
  EXPECT_EQ(result.phases[0].phase, ScenarioPhase::kRebuilding);
  EXPECT_EQ(result.phases[1].phase, ScenarioPhase::kRestored);
  EXPECT_EQ(result.phases[2].phase, ScenarioPhase::kRebuilding);
}

TEST(Scenario, ConcurrentDoubleFailureLosesExactlySharedStripes) {
  const auto layout = tiny_layout();
  const ScenarioSimulator sim(layout, config_with(/*iterations=*/2));
  const auto fifo = make_fifo_scheduler();
  const auto result = sim.run(
      FaultTimeline::scripted({{0.0, 0}, {0.0, 1}}), {}, *fifo);

  // Disks 0 and 1 share stripes {0,1,2} and {0,1,3}: exactly those two
  // instances per iteration are unrecoverable; stripes {0,2,3} and {1,2,3}
  // each lost one unit and rebuild fine.
  EXPECT_TRUE(result.data_loss);
  EXPECT_DOUBLE_EQ(result.first_data_loss_ms, 0.0);
  EXPECT_EQ(result.stripe_instances_lost, 2u * 2u);
  std::uint64_t rebuilt = 0;
  for (const RebuildSpan& span : result.rebuilds) rebuilt += span.stripes_rebuilt;
  EXPECT_EQ(rebuilt, 2u * 2u);
  const bool has_data_loss_event =
      std::any_of(result.events.begin(), result.events.end(),
                  [](const ScenarioEvent& e) {
                    return e.kind == ScenarioEventKind::kDataLoss;
                  });
  EXPECT_TRUE(has_data_loss_event);
}

TEST(Scenario, SecondFailureMidRebuildLosesOnlyUnrecoveredSharedStripes) {
  // Fail disk 0 at t = 0 and disk 1 while the first rebuild is running:
  // shared stripe instances already rebuilt survive, unrebuilt ones are
  // lost -- data loss happens exactly when an unrecovered stripe loses its
  // second unit.
  const auto layout = layout::ring_based_layout(9, 3);
  const ScenarioSimulator sim(layout, config_with(1, /*depth=*/1));
  const auto fifo = make_fifo_scheduler();
  const auto solo = sim.run(FaultTimeline::scripted({{0.0, 0}}), {}, *fifo);
  const double mid = solo.rebuilds[0].end_ms / 2.0;

  const auto result =
      sim.run(FaultTimeline::scripted({{0.0, 0}, {mid, 1}}), {}, *fifo);
  const auto matrix = layout::reconstruction_matrix(layout);
  const std::uint64_t shared = matrix[0 * 9 + 1];  // stripes with both disks
  EXPECT_TRUE(result.data_loss);
  EXPECT_GT(result.stripe_instances_lost, 0u);
  EXPECT_LT(result.stripe_instances_lost, shared);
  EXPECT_DOUBLE_EQ(result.first_data_loss_ms, mid);

  // Exactness: every stripe crossing disk 0 is rebuilt or lost once, every
  // stripe crossing disk 1 is rebuilt or lost once, and each lost shared
  // stripe accounts for one unrebuilt unit on each side -- so
  //   rebuilt + 2 * lost == crossings(0) + crossings(1).
  std::uint64_t rebuilt = 0;
  for (const RebuildSpan& span : result.rebuilds) rebuilt += span.stripes_rebuilt;
  const auto crossings = [&layout](layout::DiskId disk) {
    std::uint64_t n = 0;
    for (const layout::Stripe& st : layout.stripes()) {
      for (const layout::StripeUnit& u : st.units) {
        if (u.disk == disk) {
          ++n;
          break;
        }
      }
    }
    return n;
  };
  EXPECT_EQ(rebuilt + 2 * result.stripe_instances_lost,
            crossings(0) + crossings(1));
}

TEST(Scenario, DistributedSparingDeclustersRebuildWrites) {
  const auto base = layout::ring_based_layout(9, 3);
  const auto spared = layout::add_distributed_sparing(base);
  const ScenarioSimulator sim(spared, config_with());
  ASSERT_TRUE(sim.distributed_sparing());
  const auto fifo = make_fifo_scheduler();
  const layout::DiskId failed = 3;
  const auto result =
      sim.run(FaultTimeline::scripted({{0.0, failed}}), {}, *fifo);

  EXPECT_FALSE(result.data_loss);
  // Rebuild writes land exactly where layout/sparing's offline analysis
  // says the spare units are -- never on the failed disk.
  const auto expected = layout::distributed_rebuild_writes(spared, failed);
  for (layout::DiskId d = 0; d < 9; ++d) {
    EXPECT_EQ(result.rebuild_writes_per_disk[d], expected[d]) << "disk " << d;
  }
  EXPECT_EQ(result.rebuild_writes_per_disk[failed], 0u);

  // Within one unit of the mean write load over the surviving disks.
  std::uint64_t total = 0, max_w = 0;
  for (layout::DiskId d = 0; d < 9; ++d) {
    if (d == failed) continue;
    total += result.rebuild_writes_per_disk[d];
    max_w = std::max(max_w, result.rebuild_writes_per_disk[d]);
  }
  const double mean = static_cast<double>(total) / 8.0;
  EXPECT_LE(static_cast<double>(max_w), mean + 1.0);

  // The failed disk is never accessed after t = 0 (no user traffic).
  EXPECT_EQ(result.disk_accesses[failed], 0u);
}

TEST(Scenario, ThrottledSchedulerStretchesTheRebuild) {
  const auto layout = layout::ring_based_layout(9, 3);
  const ScenarioSimulator sim(layout, config_with());
  const auto fifo = make_fifo_scheduler();
  const auto throttled = make_throttled_scheduler(0.5);
  const auto fast = sim.run(FaultTimeline::scripted({{0.0, 0}}), {}, *fifo);
  const auto slow =
      sim.run(FaultTimeline::scripted({{0.0, 0}}), {}, *throttled);
  EXPECT_EQ(fast.rebuilds[0].stripes_rebuilt, slow.rebuilds[0].stripes_rebuilt);
  EXPECT_GT(slow.rebuilds[0].end_ms, fast.rebuilds[0].end_ms);
}

TEST(Scenario, MaxParallelismSchedulerMatchesReadTotals) {
  const auto layout = layout::ring_based_layout(9, 3);
  const ScenarioSimulator sim(layout, config_with(1, /*depth=*/4));
  const auto fifo = make_fifo_scheduler();
  const auto mp = make_max_parallelism_scheduler();
  const auto a = sim.run(FaultTimeline::scripted({{0.0, 0}}), {}, *fifo);
  const auto b = sim.run(FaultTimeline::scripted({{0.0, 0}}), {}, *mp);
  // Ordering changes timing, never the work: per-disk totals must agree.
  EXPECT_EQ(a.rebuild_reads_per_disk, b.rebuild_reads_per_disk);
  EXPECT_EQ(a.rebuild_writes_per_disk, b.rebuild_writes_per_disk);
  EXPECT_EQ(a.rebuilds[0].stripes_rebuilt, b.rebuilds[0].stripes_rebuilt);
}

TEST(Scenario, UnservedRequestsAreCountedNotTimed) {
  const auto layout = tiny_layout();
  const ScenarioSimulator sim(layout, config_with());
  const auto fifo = make_fifo_scheduler();
  // Find a logical data unit living on disk 0 in a stripe shared with
  // disk 1 (stripes 0 and 1 of tiny_layout).
  std::vector<Request> reqs;
  const layout::AddressMapper mapper(layout);
  for (std::uint64_t l = 0; l < sim.working_set(); ++l) {
    const auto where = mapper.map(l);
    if (where.disk == 0) {
      reqs.push_back({100000.0, l, false});  // read well after the failures
      break;
    }
  }
  ASSERT_EQ(reqs.size(), 1u);
  const auto result = sim.run(
      FaultTimeline::scripted({{0.0, 0}, {0.0, 1}}), reqs, *fifo);
  EXPECT_TRUE(result.data_loss);
  EXPECT_EQ(result.unserved_reads, 1u);
  EXPECT_EQ(result.user.read_latency_ms.count(), 0u);
}

TEST(Scenario, FixedSeedReproducesBitIdenticalResults) {
  const auto base = layout::ring_based_layout(9, 3);
  const auto spared = layout::add_distributed_sparing(base);
  const ScenarioSimulator sim(spared, config_with(2, 4, 25.0));
  const auto timeline = FaultTimeline::random(
      {.num_disks = 9, .mean_arrival_ms = 800.0, .horizon_ms = 3000.0,
       .max_failures = 2, .seed = 7});
  const WorkloadConfig wconfig{.arrival_per_ms = 0.05,
                               .write_fraction = 0.4,
                               .working_set = sim.working_set(),
                               .duration_ms = 4000.0,
                               .seed = 13};
  const auto requests = generate_workload(wconfig);
  const auto scheduler = make_throttled_scheduler(0.7);

  const auto a = sim.run(timeline, requests, *scheduler);
  const auto b = sim.run(timeline, requests, *scheduler);

  EXPECT_EQ(a.horizon_ms, b.horizon_ms);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.data_loss, b.data_loss);
  EXPECT_EQ(a.stripe_instances_lost, b.stripe_instances_lost);
  EXPECT_EQ(a.rebuild_reads_per_disk, b.rebuild_reads_per_disk);
  EXPECT_EQ(a.rebuild_writes_per_disk, b.rebuild_writes_per_disk);
  EXPECT_EQ(a.disk_busy_ms, b.disk_busy_ms);
  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.user.read_latency_ms.count(), b.user.read_latency_ms.count());
  EXPECT_EQ(a.user.read_latency_ms.mean(), b.user.read_latency_ms.mean());
  EXPECT_EQ(a.user.write_latency_ms.mean(), b.user.write_latency_ms.mean());
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].phase, b.phases[i].phase);
    EXPECT_EQ(a.phases[i].start_ms, b.phases[i].start_ms);
    EXPECT_EQ(a.phases[i].end_ms, b.phases[i].end_ms);
    EXPECT_EQ(a.phases[i].disk_busy_ms, b.phases[i].disk_busy_ms);
    EXPECT_EQ(a.phases[i].disk_accesses, b.phases[i].disk_accesses);
  }
}

TEST(Scenario, RejectsInvalidInputs) {
  const auto layout = layout::ring_based_layout(5, 3);
  EXPECT_THROW(ScenarioSimulator(layout, ScenarioConfig{kDisk, 0, 1, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSimulator(layout, ScenarioConfig{kDisk, 1, 0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSimulator(layout, ScenarioConfig{kDisk, 1, 1, -1.0}),
               std::invalid_argument);
  const ScenarioSimulator sim(layout, config_with());
  const auto fifo = make_fifo_scheduler();
  EXPECT_THROW(
      (void)sim.run(FaultTimeline::scripted({{0.0, 9}}), {}, *fifo),
      std::invalid_argument);
  const std::vector<Request> beyond = {{0.0, sim.working_set(), false}};
  EXPECT_THROW(
      (void)sim.run(FaultTimeline::scripted({}), beyond, *fifo),
      std::invalid_argument);
}

TEST(Scheduler, FactoryKnowsAllPolicies) {
  for (const std::string_view name : scheduler_names()) {
    const auto scheduler = make_scheduler(name);
    EXPECT_EQ(scheduler->name(), name);
  }
  EXPECT_THROW((void)make_scheduler("lifo"), std::invalid_argument);
  EXPECT_THROW((void)make_throttled_scheduler(0.0), std::invalid_argument);
  EXPECT_THROW((void)make_throttled_scheduler(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::sim
