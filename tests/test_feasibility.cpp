#include "layout/feasibility.hpp"

#include <gtest/gtest.h>

#include "layout/stairway.hpp"

namespace pdl::layout {
namespace {

TEST(StairwaySize, MatchesPlanStairway) {
  for (std::uint32_t q : {8u, 9u, 13u, 16u, 25u}) {
    for (std::uint32_t v = q + 1; v <= q + 12; ++v) {
      const auto size = stairway_size(q, v, 4);
      const auto plan = plan_stairway(q, v, 4);
      ASSERT_EQ(size.has_value(), plan.has_value())
          << "q=" << q << " v=" << v;
      if (plan) {
        EXPECT_EQ(*size, plan->size());
      }
    }
  }
}

TEST(Feasibility, RingLayoutRequiresTheorem2) {
  const auto feas = summarize_feasibility(12, 4).value();  // M(12) = 3 < 4
  EXPECT_FALSE(feas.ring_layout.has_value());
  const auto feas2 = summarize_feasibility(12, 3).value();
  ASSERT_TRUE(feas2.ring_layout.has_value());
  EXPECT_EQ(*feas2.ring_layout, 3u * 11u);
}

TEST(Feasibility, KnownSizesAtV16K4) {
  const auto feas = summarize_feasibility(16, 4).value();
  // Best BIBD is the subfield design: b = 20, r = 5.
  ASSERT_TRUE(feas.bibd_flow.has_value());
  EXPECT_EQ(*feas.bibd_flow, 5u);
  ASSERT_TRUE(feas.bibd_hg.has_value());
  EXPECT_EQ(*feas.bibd_hg, 20u);
  // Perfect balance: lcm(20,16)/20 = 4 copies -> 20 units.
  ASSERT_TRUE(feas.bibd_perfect.has_value());
  EXPECT_EQ(*feas.bibd_perfect, 20u);
  ASSERT_TRUE(feas.ring_layout.has_value());
  EXPECT_EQ(*feas.ring_layout, 60u);
  // Complete: k * C(15, 3) = 4 * 455.
  ASSERT_TRUE(feas.complete_hg.has_value());
  EXPECT_EQ(*feas.complete_hg, 4u * 455u);
}

TEST(Feasibility, RemovalUsesNearestLargerBase) {
  // v = 15, k = 4: q = 16 = 15 + 1 works (i = 1 <= sqrt(4)).
  const auto feas = summarize_feasibility(15, 4).value();
  ASSERT_TRUE(feas.removal.has_value());
  EXPECT_EQ(feas.removal_q, 16u);
  EXPECT_EQ(*feas.removal, 4u * 15u);
  // v = 100, k = 4: within i <= 2, 101 is prime -> q = 101.
  const auto feas2 = summarize_feasibility(100, 4).value();
  ASSERT_TRUE(feas2.removal.has_value());
  EXPECT_EQ(feas2.removal_q, 101u);
}

TEST(Feasibility, StairwayFindsABaseForAwkwardV) {
  // v = 100, k = 5: no prime power at 100; the stairway must cover it.
  const auto feas = summarize_feasibility(100, 5).value();
  ASSERT_TRUE(feas.stairway.has_value());
  EXPECT_GE(feas.stairway_q, 5u);
  EXPECT_LT(feas.stairway_q, 100u);
  // Sanity: the reported size is the claimed k(c-1)(q-1) of its plan.
  const auto plan = plan_stairway(feas.stairway_q, 100, 5);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(*feas.stairway, plan->size());
}

TEST(Feasibility, BestApproximateAndExactAggregation) {
  const auto feas = summarize_feasibility(16, 4).value();
  ASSERT_TRUE(feas.best_exact().has_value());
  EXPECT_EQ(*feas.best_exact(), 5u);
  ASSERT_TRUE(feas.best_approximate().has_value());
  EXPECT_LE(*feas.best_approximate(), 60u);
}

TEST(Feasibility, DegenerateInputsAreTypedErrors) {
  const auto feas = summarize_feasibility(1, 1);
  ASSERT_FALSE(feas.ok());
  EXPECT_EQ(feas.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(feas.status().message().find("2 <= k <= v"), std::string::npos);
}

TEST(Coverage, ExactWhenRingDesignExists) {
  const auto cov = stairway_coverage(17, 5).value();
  EXPECT_TRUE(cov.covered);
  EXPECT_EQ(cov.route, "exact");
  EXPECT_EQ(cov.q, 17u);
  EXPECT_EQ(cov.size, 5u * 16u);
}

TEST(Coverage, RemovalRoute) {
  // v = 98 = 2*49 has M = 2 < 4, so no exact route; 99 = 9*11 has
  // M = 9 >= 4, reachable by removing one disk (i = 1 <= sqrt(4)).
  const auto cov = stairway_coverage(98, 4).value();
  EXPECT_TRUE(cov.covered);
  EXPECT_EQ(cov.route, "removal");
  EXPECT_EQ(cov.q, 99u);
}

TEST(Coverage, StairwayRoute) {
  // v = 119, k = 7: 119 = 7*17 (M = 7 >= k, so exact!).  Use v = 120
  // instead: M(120) = 3 < 7, 121 is 11^2 but that is v+1 (removal i=1
  // needs i <= sqrt(7) -> allowed).  Pick a v where neither works:
  // v = 115 = 5*23 (M=5 < 7), 116 = 4*29 (M=4), 117 = 9*13 (M=9 >= 7
  // -> removal at i=2).  Use k = 11, v = 115: 116..118 all have M < 11
  // (116 = 4*29, 117 = 9*13, 118 = 2*59) so removal fails; stairway it is.
  const auto cov = stairway_coverage(115, 11).value();
  EXPECT_TRUE(cov.covered);
  EXPECT_EQ(cov.route, "stairway");
  EXPECT_LT(cov.q, 115u);
  EXPECT_GT(cov.size, 0u);
}

TEST(Coverage, PaperClaimHoldsUpTo2000) {
  // The paper: "for any v up to 10,000, there is a prime power q <= v and
  // values of c and w that satisfy (8) and (9)".  The full 10,000 sweep is
  // bench_coverage_10000; keep the test at 2,000 for speed.
  for (std::uint32_t v = 6; v <= 2000; ++v) {
    const auto cov = stairway_coverage(v, 5).value();
    ASSERT_TRUE(cov.covered) << "v=" << v;
  }
}

TEST(Coverage, DegenerateInputsAreTypedErrors) {
  EXPECT_EQ(stairway_coverage(3, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stairway_coverage(1, 2).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pdl::layout
