// Reproductions of the paper's Figures 1-3 as executable checks.
// (Figures 4-6, the stairway diagrams, are covered structurally in
// test_stairway.cpp; Figure 7, the parity assignment graph, in
// test_parity_assign.cpp.)

#include <gtest/gtest.h>

#include "core/xor_codec.hpp"
#include "design/complete_design.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/metrics.hpp"

namespace pdl {
namespace {

TEST(Figure1, OneParityStripeEncodeAndReconstruct) {
  // Figure 1: v-1 data units and one parity unit; the parity is the XOR of
  // the data, and any lost unit is recoverable.
  std::vector<std::vector<std::uint8_t>> data = {
      {0xde, 0xad}, {0xbe, 0xef}, {0x12, 0x34}};
  const auto parity = core::xor_parity(data);
  EXPECT_EQ(parity[0], 0xde ^ 0xbe ^ 0x12);
  EXPECT_EQ(parity[1], 0xad ^ 0xef ^ 0x34);
  std::vector<std::vector<std::uint8_t>> survivors = {data[0], data[2],
                                                      parity};
  EXPECT_EQ(core::xor_reconstruct(survivors), data[1]);
}

TEST(Figure2, ParityDeclusteredLayoutV4K3) {
  // Figure 2: the parity-declustered layout for v = 4, k = 3 -- the four
  // 3-subsets of 4 disks, one parity unit each, 3 units per disk.
  const auto design = design::make_complete_design(4, 3);
  const layout::Layout l = layout::flow_balanced_layout(design, 1);
  EXPECT_EQ(l.num_disks(), 4u);
  EXPECT_EQ(l.units_per_disk(), 3u);
  EXPECT_EQ(l.num_stripes(), 4u);
  EXPECT_TRUE(l.validate().empty());
  const auto m = layout::compute_metrics(l);
  // One parity unit per disk (b = v = 4), overhead 1/3.
  EXPECT_EQ(m.min_parity_units, 1u);
  EXPECT_EQ(m.max_parity_units, 1u);
  // Reconstruction: each pair shares 2 of 3 units.
  EXPECT_DOUBLE_EQ(m.max_recon_workload, 2.0 / 3.0);
}

TEST(Figure3, HollandGibsonBibdLayoutV4K3) {
  // Figure 3: the same BIBD replicated k = 3 times with rotated parity.
  const auto design = design::make_complete_design(4, 3);
  const layout::Layout l = layout::holland_gibson_layout(design);
  EXPECT_EQ(l.num_disks(), 4u);
  EXPECT_EQ(l.units_per_disk(), 9u);  // k * r = 3 * 3
  EXPECT_EQ(l.num_stripes(), 12u);
  const auto m = layout::compute_metrics(l);
  EXPECT_EQ(m.min_parity_units, 3u);  // = r
  EXPECT_EQ(m.max_parity_units, 3u);
  // The rendered grid shows twelve stripes over 36 slots.
  const std::string grid = layout::render_layout(l);
  EXPECT_NE(grid.find("S11"), std::string::npos);
}

TEST(Figures, Fig2VersusFig3SizeRatioIsK) {
  // The Section 4 point in miniature: Figure 3 is k times larger than
  // Figure 2 for the same balance.
  const auto design = design::make_complete_design(4, 3);
  const auto fig2 = layout::flow_balanced_layout(design, 1);
  const auto fig3 = layout::holland_gibson_layout(design);
  EXPECT_EQ(fig3.units_per_disk(), 3 * fig2.units_per_disk());
  const auto m2 = layout::compute_metrics(fig2);
  const auto m3 = layout::compute_metrics(fig3);
  EXPECT_DOUBLE_EQ(m2.max_parity_overhead, m3.max_parity_overhead);
}

}  // namespace
}  // namespace pdl
