// pdl::fleet::Fleet -- many arrays behind one front door.  The suite
// pins the fleet tier's core promises:
//
//   * the compiled shard map routes every block to the right
//     (shard, unit) pair, with extents covering the space exactly once;
//   * the shard-boundary property: randomized reads and writes
//     straddling shard split points are byte-identical to one flat
//     model store (a differential oracle over the whole block space) --
//     including while one disk in each of TWO different shards is
//     failed, so boundary routing composes with per-shard degraded
//     serving;
//   * governed rebuild restores every byte, with the RebuildGovernor's
//     pacing observable in its stats;
//   * the governor's token bucket, policy selection, and
//     foreground-activity window behave as specified in isolation;
//   * fleet serialization round-trips the shard map and per-shard array
//     headers;
//   * the fleet workload driver's canonical-content discipline verifies
//     through the fleet front door.

#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/governor.hpp"
#include "fleet/workload.hpp"
#include "io/workload_driver.hpp"

namespace pdl::fleet {
namespace {

constexpr std::uint32_t kBlockBytes = 64;
constexpr std::uint64_t kSeed = 0xF1EE7;

[[nodiscard]] ShardSpec make_shard(std::uint32_t v, std::uint32_t k,
                                   core::CodecKind codec,
                                   std::uint32_t iterations = 1) {
  auto array = api::Array::create({.num_disks = v, .stripe_size = k}, {},
                                  {.codec = codec});
  EXPECT_TRUE(array.ok()) << array.status().to_string();
  return ShardSpec{.array = std::move(array).value(),
                   .iterations = iterations};
}

/// A heterogeneous three-shard fleet: XOR next to Reed-Solomon P+Q,
/// different geometries and iteration counts.
[[nodiscard]] Fleet make_fleet(FleetOptions options = {
                                   .block_bytes = kBlockBytes}) {
  std::vector<ShardSpec> shards;
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 2));
  shards.push_back(make_shard(17, 5, core::CodecKind::kReedSolomonPQ, 1));
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  auto fleet = Fleet::create(std::move(shards), options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().to_string();
  return std::move(fleet).value();
}

TEST(Fleet, CreateValidation) {
  EXPECT_EQ(Fleet::create({}, {}).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<ShardSpec> shards;
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity));
  EXPECT_EQ(Fleet::create(std::move(shards), {.block_bytes = 0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  shards.clear();
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity));
  FleetOptions bad_governor;
  bad_governor.governor.policy = GovernorPolicy::kForegroundProtecting;
  bad_governor.governor.protected_bytes_per_sec = 0;
  EXPECT_EQ(Fleet::create(std::move(shards), bad_governor).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Fleet, GeometryAndExtentsCoverTheSpaceOnce) {
  Fleet fleet = make_fleet();
  ASSERT_EQ(fleet.num_shards(), 3u);
  EXPECT_EQ(fleet.block_bytes(), kBlockBytes);

  std::uint64_t expected = 0;
  for (std::uint32_t s = 0; s < fleet.num_shards(); ++s)
    expected += fleet.shard(s).num_logical_units();
  EXPECT_EQ(fleet.num_blocks(), expected);
  EXPECT_EQ(fleet.logical_bytes(), expected * kBlockBytes);

  // Extents tile [0, num_blocks) exactly once, in order.
  std::uint64_t next = 0;
  for (const Extent& e : fleet.extents()) {
    EXPECT_EQ(e.first, next);
    EXPECT_GT(e.count, 0u);
    next = e.first + e.count;
  }
  EXPECT_EQ(next, fleet.num_blocks());

  // Boundary blocks route to the owning shard at the right local unit.
  std::uint64_t base = 0;
  for (std::uint32_t s = 0; s < fleet.num_shards(); ++s) {
    const std::uint64_t cap = fleet.shard(s).num_logical_units();
    auto first = fleet.route_of(base);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().shard, s);
    EXPECT_EQ(first.value().unit, 0u);
    auto last = fleet.route_of(base + cap - 1);
    ASSERT_TRUE(last.ok());
    EXPECT_EQ(last.value().shard, s);
    EXPECT_EQ(last.value().unit, cap - 1);
    base += cap;
  }
  EXPECT_EQ(fleet.route_of(fleet.num_blocks()).status().code(),
            StatusCode::kOutOfRange);
}

TEST(Fleet, ArrayGeometryObserversMatchStoreDerivations) {
  // The api::Array byte-capacity observers the router is built on must
  // agree with the store-level derivations they replaced.
  Fleet fleet = make_fleet();
  for (std::uint32_t s = 0; s < fleet.num_shards(); ++s) {
    const io::StripeStore& store = fleet.shard(s);
    const api::Array& array = store.array();
    EXPECT_EQ(array.capacity_units(store.iterations()),
              store.num_logical_units());
    EXPECT_EQ(array.capacity_bytes(store.unit_bytes(), store.iterations()),
              store.logical_bytes());
    EXPECT_EQ(array.disk_bytes(store.unit_bytes(), store.iterations()),
              store.disk_bytes());
    EXPECT_EQ(array.max_stripe_bytes(store.unit_bytes()),
              static_cast<std::uint64_t>(array.max_stripe_size()) *
                  store.unit_bytes());
  }
}

/// The shard-boundary differential property: a mixed read/write stream
/// biased toward shard split points must be byte-identical to a flat
/// in-memory model of the whole block space -- healthy AND with one
/// failed disk in each of two different shards.
TEST(Fleet, ShardBoundaryRoutingMatchesFlatModel) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();

  // The flat oracle: block -> last bytes written (empty = never).
  std::vector<std::vector<std::uint8_t>> model(n);
  std::mt19937_64 rng(kSeed);

  // Split points (extent firsts) to bias addresses toward.
  std::vector<std::uint64_t> boundaries;
  for (const Extent& e : fleet.extents()) boundaries.push_back(e.first);

  const auto pick_block = [&]() -> std::uint64_t {
    if (rng() % 2 == 0) return rng() % n;
    // Straddle a boundary: a few blocks on either side of a split.
    const std::uint64_t b = boundaries[rng() % boundaries.size()];
    const std::int64_t jitter =
        static_cast<std::int64_t>(rng() % 9) - 4;  // [-4, +4]
    const std::int64_t raw = static_cast<std::int64_t>(b) + jitter;
    return static_cast<std::uint64_t>(
        std::clamp<std::int64_t>(raw, 0, static_cast<std::int64_t>(n) - 1));
  };

  std::vector<std::uint8_t> buf(kBlockBytes);
  const auto run_ops = [&](std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t block = pick_block();
      if (rng() % 2 == 0) {
        for (auto& byte : buf)
          byte = static_cast<std::uint8_t>(rng());
        ASSERT_TRUE(fleet.write(block, buf).ok()) << "block " << block;
        model[block] = buf;
      } else {
        ASSERT_TRUE(fleet.read(block, buf).ok()) << "block " << block;
        if (!model[block].empty()) {
          ASSERT_EQ(buf, model[block]) << "block " << block;
        }
      }
    }
  };

  run_ops(3000);

  // One failed disk in each of two DIFFERENT shards: boundary routing
  // must compose with per-shard degraded serving.
  ASSERT_TRUE(fleet.fail_disk(0, 2).ok());
  ASSERT_TRUE(fleet.fail_disk(1, 5).ok());
  run_ops(3000);

  // Repair both shards and make a full verification sweep.
  ASSERT_TRUE(fleet.replace_disk(0, 2).ok());
  ASSERT_TRUE(fleet.replace_disk(1, 5).ok());
  auto outcome = fleet.rebuild_all();
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_TRUE(fleet.healthy());
  for (std::uint64_t block = 0; block < n; ++block) {
    if (model[block].empty()) continue;
    ASSERT_TRUE(fleet.read(block, buf).ok());
    ASSERT_EQ(buf, model[block]) << "block " << block;
  }
}

TEST(Fleet, ReadBatchSpansShardsAndIsolatesFailures) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  // A batch crossing every shard boundary, plus one out-of-range block.
  std::vector<std::uint64_t> blocks;
  for (const Extent& e : fleet.extents()) {
    if (e.first > 0) blocks.push_back(e.first - 1);
    blocks.push_back(e.first);
  }
  blocks.push_back(n - 1);
  blocks.push_back(n + 7);  // out of range, must not veto batchmates

  std::vector<std::uint8_t> out(blocks.size() * kBlockBytes);
  std::vector<Status> statuses(blocks.size());
  std::vector<io::ReadReceipt> receipts(blocks.size());
  const Status overall =
      fleet.read_batch(blocks, out, statuses, receipts);
  EXPECT_EQ(overall.code(), StatusCode::kOutOfRange);

  std::vector<std::uint8_t> expected(kBlockBytes);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i] >= n) {
      EXPECT_EQ(statuses[i].code(), StatusCode::kOutOfRange);
      continue;
    }
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].to_string();
    io::canonical_fill(blocks[i], kSeed, expected);
    EXPECT_EQ(std::vector<std::uint8_t>(
                  out.begin() + static_cast<std::ptrdiff_t>(i * kBlockBytes),
                  out.begin() +
                      static_cast<std::ptrdiff_t>((i + 1) * kBlockBytes)),
              expected)
        << "block " << blocks[i];
  }
}

TEST(Fleet, GovernedRebuildRestoresBytesAndChargesTheGovernor) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  ASSERT_TRUE(fleet.fail_disk(1, 3).ok());
  ASSERT_TRUE(fleet.replace_disk(1, 3).ok());
  auto outcome = fleet.rebuild(1);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_GT(outcome.value().applied, 0u);
  EXPECT_TRUE(fleet.healthy());

  std::vector<std::uint8_t> buf(kBlockBytes), expected(kBlockBytes);
  for (std::uint64_t block = 0; block < n; ++block) {
    ASSERT_TRUE(fleet.read(block, buf).ok());
    io::canonical_fill(block, kSeed, expected);
    ASSERT_EQ(buf, expected) << "block " << block;
  }

  // Every governed pass reserved bytes for shard 1 and refunded the
  // over-estimate; untouched shards were never charged.
  const GovernorStats charged = fleet.governor().shard_stats(1);
  EXPECT_GT(charged.grants, 0u);
  EXPECT_GT(charged.granted_bytes, 0u);
  EXPECT_GT(charged.refunded_bytes, 0u);  // final empty pass refunds fully
  EXPECT_EQ(fleet.governor().shard_stats(0).granted_bytes, 0u);
  EXPECT_EQ(fleet.governor().shard_stats(2).granted_bytes, 0u);
}

TEST(Fleet, RebuildSomeValidatesShard) {
  Fleet fleet = make_fleet();
  EXPECT_EQ(fleet.rebuild_some(99, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.fail_disk(99, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.replace_disk(99, 0).code(), StatusCode::kInvalidArgument);
}

TEST(Governor, PolicyNamesRoundTrip) {
  for (const GovernorPolicy policy :
       {GovernorPolicy::kFifo, GovernorPolicy::kFairShare,
        GovernorPolicy::kForegroundProtecting}) {
    auto parsed = governor_policy_from_name(governor_policy_name(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), policy);
  }
  EXPECT_EQ(governor_policy_from_name("round-robin").status().code(),
            StatusCode::kParseError);
}

TEST(Governor, CreateValidation) {
  GovernorOptions options;
  options.policy = GovernorPolicy::kForegroundProtecting;
  options.protected_bytes_per_sec = 0;
  EXPECT_EQ(RebuildGovernor::create(options).status().code(),
            StatusCode::kInvalidArgument);
  options.protected_bytes_per_sec = 1;
  EXPECT_TRUE(RebuildGovernor::create(options).ok());
}

TEST(Governor, UnlimitedGrantsNeverWait) {
  auto governor = RebuildGovernor::create({});  // fifo, unlimited
  ASSERT_TRUE(governor.ok());
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(governor.value().acquire(0, 64 * 1024 * 1024), 0u);
  const GovernorStats stats = governor.value().stats();
  EXPECT_EQ(stats.grants, 4u);
  EXPECT_EQ(stats.waits, 0u);
}

TEST(Governor, RateLimitedGrantsWaitForRefill) {
  GovernorOptions options;
  options.rebuild_bytes_per_sec = 10.0 * 1024 * 1024;
  options.burst_bytes = 64 * 1024;
  auto governor = RebuildGovernor::create(options);
  ASSERT_TRUE(governor.ok());
  // Debt model: the first grant drains the burst, the second still
  // passes (a non-negative bucket grants and goes into debt), and the
  // THIRD must wait for the 64 KiB debt to refill (~6 ms at 10 MiB/s).
  EXPECT_EQ(governor.value().acquire(0, 64 * 1024), 0u);
  EXPECT_EQ(governor.value().acquire(0, 64 * 1024), 0u);
  const std::uint64_t blocked = governor.value().acquire(0, 64 * 1024);
  EXPECT_GT(blocked, 0u);
  const GovernorStats stats = governor.value().stats();
  EXPECT_EQ(stats.grants, 3u);
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_GT(stats.wait_us, 0u);
  EXPECT_EQ(stats.granted_bytes, 3u * 64 * 1024);
}

TEST(Governor, RefundTopsTheBucketBack) {
  GovernorOptions options;
  options.rebuild_bytes_per_sec = 1024;  // glacial: refill is negligible
  options.burst_bytes = 64 * 1024;
  auto governor = RebuildGovernor::create(options);
  ASSERT_TRUE(governor.ok());
  EXPECT_EQ(governor.value().acquire(0, 64 * 1024), 0u);
  // The bucket is empty; an immediate refund makes the next grant free.
  governor.value().refund(0, 64 * 1024);
  EXPECT_EQ(governor.value().acquire(0, 64 * 1024), 0u);
  EXPECT_EQ(governor.value().stats().refunded_bytes, 64u * 1024);
}

TEST(Governor, ForegroundWindowGatesTheProtectedRate) {
  GovernorOptions options;
  options.policy = GovernorPolicy::kForegroundProtecting;
  options.protected_bytes_per_sec = 1024.0 * 1024;
  options.foreground_window_us = 100000;
  options.burst_bytes = 4 * 1024;
  auto governor = RebuildGovernor::create(options);
  ASSERT_TRUE(governor.ok());

  EXPECT_FALSE(governor.value().foreground_active());
  // Idle fleet: unlimited rate, the burst covers the grant for free.
  EXPECT_EQ(governor.value().acquire(0, 4096), 0u);

  governor.value().note_foreground(4096);
  EXPECT_TRUE(governor.value().foreground_active());
  // Debt model: the empty-but-not-negative bucket still grants once
  // (charged at the protected rate), and the NEXT grant pays off the
  // 8 KiB debt at the 1 MiB/s floor (~8 ms).
  EXPECT_EQ(governor.value().acquire(0, 8192), 0u);
  const std::uint64_t blocked = governor.value().acquire(0, 8192);
  EXPECT_GT(blocked, 0u);
  EXPECT_GT(governor.value().stats().throttled_grants, 0u);
  EXPECT_EQ(governor.value().stats().foreground_bytes, 4096u);

  // The window expires once foreground traffic goes quiet.
  std::this_thread::sleep_for(std::chrono::milliseconds(110));
  EXPECT_FALSE(governor.value().foreground_active());
}

TEST(Governor, FairShareTracksPerShardGrants) {
  GovernorOptions options;
  options.policy = GovernorPolicy::kFairShare;
  auto governor = RebuildGovernor::create(options);
  ASSERT_TRUE(governor.ok());
  governor.value().acquire(0, 1000);
  governor.value().acquire(1, 2000);
  governor.value().acquire(0, 3000);
  EXPECT_EQ(governor.value().shard_stats(0).granted_bytes, 4000u);
  EXPECT_EQ(governor.value().shard_stats(1).granted_bytes, 2000u);
  EXPECT_EQ(governor.value().stats().granted_bytes, 6000u);
  EXPECT_EQ(governor.value().shard_stats(7).grants, 0u);  // never seen
}

TEST(Fleet, SerializationRoundTripsTheShardMap) {
  Fleet fleet = make_fleet();
  const std::string text = fleet.serialize();
  auto reopened = Fleet::deserialize(text);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();

  EXPECT_EQ(reopened.value().num_shards(), fleet.num_shards());
  EXPECT_EQ(reopened.value().num_blocks(), fleet.num_blocks());
  EXPECT_EQ(reopened.value().block_bytes(), fleet.block_bytes());
  const auto a = fleet.extents();
  const auto b = reopened.value().extents();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].shard, b[i].shard);
    EXPECT_EQ(a[i].base, b[i].base);
  }
  for (std::uint32_t s = 0; s < fleet.num_shards(); ++s) {
    EXPECT_EQ(reopened.value().shard(s).array().codec_kind(),
              fleet.shard(s).array().codec_kind());
    EXPECT_EQ(reopened.value().shard(s).num_logical_units(),
              fleet.shard(s).num_logical_units());
  }

  // The reopened fleet (fresh memory backends) serves its space.
  std::vector<std::uint8_t> buf(kBlockBytes);
  ASSERT_TRUE(reopened.value().write(0, buf).ok());
  ASSERT_TRUE(reopened.value().read(fleet.num_blocks() - 1, buf).ok());

  EXPECT_EQ(Fleet::deserialize("not a fleet").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Fleet::deserialize("pdl-fleet v1\nblock-bytes 0\n")
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(Fleet, DeserializeRejectsMalformedExtents) {
  Fleet fleet = make_fleet();
  const std::string text = fleet.serialize();

  // Split the serialized text into lines, locate the extents section
  // (searching from the end -- embedded array headers are opaque), and
  // parse the extent quadruples so each variant below can mutate them.
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) lines.push_back(line);
  }
  std::size_t extents_at = lines.size();
  for (std::size_t i = lines.size(); i-- > 0;)
    if (lines[i].rfind("extents ", 0) == 0) {
      extents_at = i;
      break;
    }
  ASSERT_LT(extents_at, lines.size());
  using Quad = std::array<std::uint64_t, 4>;  // first count shard base
  std::vector<Quad> extents;
  for (std::size_t i = extents_at + 1; i < lines.size(); ++i) {
    if (lines[i].rfind("extent ", 0) != 0) break;
    std::istringstream in(lines[i]);
    std::string word;
    Quad q{};
    ASSERT_TRUE(static_cast<bool>(in >> word >> q[0] >> q[1] >> q[2] >> q[3]));
    extents.push_back(q);
  }
  ASSERT_GE(extents.size(), 3u);

  const auto rebuild = [&](const std::vector<Quad>& es) {
    std::string out;
    for (std::size_t i = 0; i < extents_at; ++i) out += lines[i] + "\n";
    out += "extents " + std::to_string(es.size()) + "\n";
    for (const Quad& q : es)
      out += "extent " + std::to_string(q[0]) + " " + std::to_string(q[1]) +
             " " + std::to_string(q[2]) + " " + std::to_string(q[3]) + "\n";
    out += "end pdl-fleet\n";
    return out;
  };

  // The reassembled, unmutated text must still parse (pins the helper).
  ASSERT_TRUE(Fleet::deserialize(rebuild(extents)).ok());

  const auto expect_rejected = [&](std::vector<Quad> es, const char* what) {
    const auto result = Fleet::deserialize(rebuild(es));
    ASSERT_FALSE(result.ok()) << what;
    EXPECT_EQ(result.status().code(), StatusCode::kParseError) << what;
  };

  {  // An extent covering zero blocks is meaningless.
    auto es = extents;
    es[0][1] = 0;
    expect_rejected(es, "zero-count extent");
  }
  {  // A hole in the block space: extent 1 starts one block late.
    auto es = extents;
    es[1][0] += 1;
    expect_rejected(es, "gap in block space");
  }
  {  // Block-space overlap: extent 1 starts one block early.
    auto es = extents;
    es[1][0] -= 1;
    expect_rejected(es, "overlap in block space");
  }
  {  // Shard-local aliasing: two block ranges backed by the SAME unit
    // of shard 0 -- contiguous in block space, so only the per-shard
    // overlap check can catch it.
    const std::vector<Quad> es = {{0, 1, 0, 0}, {1, 1, 0, 0}};
    expect_rejected(es, "shard-local unit aliasing");
  }
}

TEST(Fleet, SaveLoadRoundTripsThroughAFile) {
  Fleet fleet = make_fleet();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("pdl_fleet_" + std::to_string(::getpid()) + ".txt"))
          .string();
  ASSERT_TRUE(fleet.save(path).ok());
  auto reopened = Fleet::load(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened.value().num_blocks(), fleet.num_blocks());
  std::filesystem::remove(path);

  EXPECT_EQ(Fleet::load("/nonexistent/fleet.txt").status().code(),
            StatusCode::kIoError);
}

TEST(FleetWorkload, CanonicalContentVerifiesThroughTheFleet) {
  Fleet fleet = make_fleet();
  ASSERT_TRUE(fill_canonical(fleet, 0, fleet.num_blocks(), 42).ok());

  io::WorkloadOptions options;
  options.num_threads = 2;
  options.ops_per_thread = 1500;
  options.read_fraction = 0.6;
  options.pattern = io::AccessPattern::kZipfian;
  options.seed = 42;
  options.verify_reads = true;
  WorkloadDriver driver(fleet, options);
  const io::WorkloadStats stats = driver.run();

  EXPECT_EQ(stats.reads + stats.writes + stats.errors + stats.data_loss_ops,
            2u * 1500u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_GT(stats.reads, 0u);
  EXPECT_GT(stats.writes, 0u);
  EXPECT_GT(stats.bytes_moved, 0u);
  // The serving path reported its traffic to the governor.
  EXPECT_GT(fleet.governor().stats().foreground_bytes, 0u);
}

}  // namespace
}  // namespace pdl::fleet
