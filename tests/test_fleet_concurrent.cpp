// Fleet-tier concurrency: rebuild-under-fire across TWO shards at once,
// and migration staging racing foreground traffic -- the fleet's lock
// hierarchy (fleet map lock over per-shard store locks over stripe
// shard locks) exercised from many threads.  Built to run under TSan:
// every cross-thread protocol the fleet adds (governed rebuild passes
// from two rebuilder threads arbitrated by one fair-share governor,
// chunk-state CAS invalidation between a migrator and writers, the
// shared-stage / exclusive-commit cutover) runs here with verification
// on, so a data race OR a served-byte divergence fails the test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/workload.hpp"
#include "io/workload_driver.hpp"

namespace pdl::fleet {
namespace {

constexpr std::uint32_t kBlockBytes = 64;
constexpr std::uint64_t kSeed = 0xC0C0;

[[nodiscard]] ShardSpec make_shard(std::uint32_t v, std::uint32_t k,
                                   core::CodecKind codec,
                                   std::uint32_t iterations = 1) {
  auto array = api::Array::create({.num_disks = v, .stripe_size = k}, {},
                                  {.codec = codec});
  EXPECT_TRUE(array.ok()) << array.status().to_string();
  return ShardSpec{.array = std::move(array).value(),
                   .iterations = iterations};
}

TEST(FleetConcurrent, RebuildUnderFireAcrossTwoShards) {
  std::vector<ShardSpec> shards;
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 2));
  shards.push_back(make_shard(9, 4, core::CodecKind::kReedSolomonPQ, 1));
  FleetOptions options{.block_bytes = kBlockBytes};
  // Fair-share: the two rebuilder threads contend for one budget and
  // the governor arbitrates between the shards.
  options.governor.policy = GovernorPolicy::kFairShare;
  options.governor.rebuild_bytes_per_sec = 64.0 * 1024 * 1024;
  options.governor.burst_bytes = 256 * 1024;
  auto created = Fleet::create(std::move(shards), options);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Fleet& fleet = created.value();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  // One disk down in EACH shard, both replaced: both shards have
  // rebuildable work at the same time.
  ASSERT_TRUE(fleet.fail_disk(0, 3).ok());
  ASSERT_TRUE(fleet.fail_disk(1, 6).ok());
  ASSERT_TRUE(fleet.replace_disk(0, 3).ok());
  ASSERT_TRUE(fleet.replace_disk(1, 6).ok());

  // Two rebuilder threads (one per shard) race a verifying workload.
  std::vector<std::thread> rebuilders;
  std::atomic<bool> rebuild_failed{false};
  for (std::uint32_t s = 0; s < 2; ++s)
    rebuilders.emplace_back([&fleet, &rebuild_failed, s] {
      auto outcome = fleet.rebuild(s);
      if (!outcome.ok()) rebuild_failed.store(true);
    });

  io::WorkloadOptions workload;
  workload.num_threads = 3;
  workload.ops_per_thread = 2000;
  workload.read_fraction = 0.7;
  workload.seed = kSeed;
  workload.verify_reads = true;
  WorkloadDriver driver(fleet, workload);
  const io::WorkloadStats stats = driver.run();

  for (std::thread& t : rebuilders) t.join();
  ASSERT_FALSE(rebuild_failed.load());

  // Both shards healed under fire; every byte is canonical again.
  EXPECT_TRUE(fleet.healthy());
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.errors, 0u);
  std::vector<std::uint8_t> buf(kBlockBytes), expected(kBlockBytes);
  for (std::uint64_t block = 0; block < n; ++block) {
    ASSERT_TRUE(fleet.read(block, buf).ok());
    io::canonical_fill(block, kSeed, expected);
    ASSERT_EQ(buf, expected) << "block " << block;
  }

  // Both shards drew from the one budget, and the serving path fed the
  // governor's foreground observation.
  EXPECT_GT(fleet.governor().shard_stats(0).granted_bytes, 0u);
  EXPECT_GT(fleet.governor().shard_stats(1).granted_bytes, 0u);
  EXPECT_GT(fleet.governor().stats().foreground_bytes, 0u);
}

TEST(FleetConcurrent, MigrationStagingRacesForegroundTraffic) {
  std::vector<ShardSpec> shards;
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 2));
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  auto created = Fleet::create(std::move(shards),
                               {.block_bytes = kBlockBytes,
                                .migration_chunk_blocks = 8});
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Fleet& fleet = created.value();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  auto attached =
      fleet.attach_shard(make_shard(17, 5, core::CodecKind::kXorParity, 1));
  ASSERT_TRUE(attached.ok());
  const std::uint64_t count =
      std::min<std::uint64_t>(64, fleet.shard(attached.value())
                                      .num_logical_units());
  ASSERT_TRUE(fleet.start_migration(0, count, attached.value()).ok());

  // Workload threads write canonical content (same seed), so whatever
  // interleaving wins, the final bytes are canonical -- any divergence
  // the cutover could introduce is caught by the sweep below.
  std::thread traffic([&fleet] {
    io::WorkloadOptions workload;
    workload.num_threads = 3;
    workload.ops_per_thread = 1500;
    workload.read_fraction = 0.5;
    workload.seed = kSeed;
    workload.verify_reads = true;
    WorkloadDriver driver(fleet, workload);
    const io::WorkloadStats stats = driver.run();
    EXPECT_EQ(stats.verify_failures, 0u);
    EXPECT_EQ(stats.errors, 0u);
  });

  // Two migrator threads claim chunks concurrently (CAS arbitration).
  std::vector<std::thread> migrators;
  std::atomic<bool> migrate_failed{false};
  for (int m = 0; m < 2; ++m)
    migrators.emplace_back([&fleet, &migrate_failed] {
      for (int pass = 0; pass < 200; ++pass) {
        auto copied = fleet.migrate_some(8);
        if (!copied.ok()) {
          migrate_failed.store(true);
          return;
        }
        if (copied.value() == 0) std::this_thread::yield();
      }
    });
  for (std::thread& t : migrators) t.join();
  traffic.join();
  ASSERT_FALSE(migrate_failed.load());

  auto report = fleet.complete_migration();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().source_checksum, report.value().target_checksum);

  // Post-cutover sweep: everything canonical, moved range included.
  std::vector<std::uint8_t> buf(kBlockBytes), expected(kBlockBytes);
  for (std::uint64_t block = 0; block < n; ++block) {
    ASSERT_TRUE(fleet.read(block, buf).ok());
    io::canonical_fill(block, kSeed, expected);
    ASSERT_EQ(buf, expected) << "block " << block;
  }
}

}  // namespace
}  // namespace pdl::fleet
