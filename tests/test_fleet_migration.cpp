// Online shard addition and extent migration: the fleet's
// shared-stage / exclusive-commit protocol for moving a block range to
// a new shard while the range keeps serving reads and writes from the
// authoritative source side.  The suite pins:
//
//   * the happy path -- attach, plan, chunked staging, checksum-verified
//     exclusive cutover, route flip, byte-for-byte content preservation;
//   * write-during-migration invalidation: a foreground write inside the
//     range dirties its chunk, the migrator re-copies it, and the bytes
//     served after cutover are the LAST written ones (zero served-byte
//     divergence);
//   * a concurrent writer hammering the range through the whole
//     migration, with a final differential sweep against the writer's
//     own record;
//   * migration out of a DEGRADED source shard (staging reads
//     reconstruct on the fly);
//   * cancel (reservation released, routing untouched) and the
//     validation matrix of start_migration;
//   * add_shard's automatic rebalancing plan and expand()'s end-to-end
//     drive.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/workload.hpp"
#include "io/workload_driver.hpp"

namespace pdl::fleet {
namespace {

constexpr std::uint32_t kBlockBytes = 64;
constexpr std::uint64_t kSeed = 0x316;

[[nodiscard]] ShardSpec make_shard(std::uint32_t v, std::uint32_t k,
                                   core::CodecKind codec,
                                   std::uint32_t iterations = 1) {
  auto array = api::Array::create({.num_disks = v, .stripe_size = k}, {},
                                  {.codec = codec});
  EXPECT_TRUE(array.ok()) << array.status().to_string();
  return ShardSpec{.array = std::move(array).value(),
                   .iterations = iterations};
}

[[nodiscard]] Fleet make_fleet() {
  std::vector<ShardSpec> shards;
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 2));
  shards.push_back(make_shard(9, 4, core::CodecKind::kReedSolomonPQ, 1));
  auto fleet = Fleet::create(std::move(shards),
                             {.block_bytes = kBlockBytes,
                              .migration_chunk_blocks = 8});
  EXPECT_TRUE(fleet.ok()) << fleet.status().to_string();
  return std::move(fleet).value();
}

void expect_canonical(Fleet& fleet, std::uint64_t first, std::uint64_t last,
                      std::uint64_t seed) {
  std::vector<std::uint8_t> buf(kBlockBytes), expected(kBlockBytes);
  for (std::uint64_t block = first; block < last; ++block) {
    ASSERT_TRUE(fleet.read(block, buf).ok()) << "block " << block;
    io::canonical_fill(block, seed, expected);
    ASSERT_EQ(buf, expected) << "block " << block;
  }
}

TEST(FleetMigration, MovesExtentWithChecksumIdenticalCutover) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  auto attached =
      fleet.attach_shard(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  ASSERT_TRUE(attached.ok()) << attached.status().to_string();
  const std::uint32_t target = attached.value();
  EXPECT_EQ(fleet.num_shards(), 3u);
  EXPECT_EQ(fleet.num_blocks(), n);  // headroom, not address space

  // Move a range straddling the shard 0 / shard 1 boundary.
  const std::uint64_t first = fleet.shard(0).num_logical_units() - 10;
  const std::uint64_t count = 20;
  ASSERT_TRUE(fleet.start_migration(first, count, target).ok());

  MigrationProgress progress = fleet.migration_progress();
  EXPECT_TRUE(progress.active);
  EXPECT_EQ(progress.first_block, first);
  EXPECT_EQ(progress.num_blocks, count);
  EXPECT_EQ(progress.target_shard, target);
  EXPECT_EQ(progress.copied_blocks, 0u);

  // Stage in small passes; reads stay on the source throughout.
  std::uint64_t staged = 0;
  for (;;) {
    auto copied = fleet.migrate_some(6);
    ASSERT_TRUE(copied.ok()) << copied.status().to_string();
    if (copied.value() == 0) break;
    staged += copied.value();
    expect_canonical(fleet, first, first + count, kSeed);
  }
  EXPECT_EQ(staged, count);
  EXPECT_EQ(fleet.migration_progress().copied_blocks, count);

  auto report = fleet.complete_migration();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().first_block, first);
  EXPECT_EQ(report.value().num_blocks, count);
  EXPECT_EQ(report.value().blocks_moved, count);
  EXPECT_EQ(report.value().target_shard, target);
  // The cutover evidence: both sides hashed identically.
  EXPECT_EQ(report.value().source_checksum, report.value().target_checksum);
  EXPECT_FALSE(fleet.migration_progress().active);

  // Routing flipped: every moved block now lives on the target.
  for (std::uint64_t block = first; block < first + count; ++block) {
    auto route = fleet.route_of(block);
    ASSERT_TRUE(route.ok());
    EXPECT_EQ(route.value().shard, target) << "block " << block;
  }
  // And every byte of the whole space still reads canonical.
  expect_canonical(fleet, 0, n, kSeed);
}

TEST(FleetMigration, WritesDuringMigrationInvalidateAndRecopy) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  auto attached =
      fleet.attach_shard(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  ASSERT_TRUE(attached.ok());
  const std::uint64_t first = 4;
  const std::uint64_t count = 24;
  ASSERT_TRUE(fleet.start_migration(first, count, attached.value()).ok());

  // Stage everything clean...
  for (;;) {
    auto copied = fleet.migrate_some(1 << 16);
    ASSERT_TRUE(copied.ok());
    if (copied.value() == 0) break;
  }
  // ...then write NEW content into the staged range: the affected
  // chunks must be invalidated, not silently cut over stale.
  constexpr std::uint64_t kNewSeed = 0xBEEF;
  std::vector<std::uint8_t> buf(kBlockBytes);
  for (std::uint64_t block = first; block < first + 9; ++block) {
    io::canonical_fill(block, kNewSeed, buf);
    ASSERT_TRUE(fleet.write(block, buf).ok());
  }
  EXPECT_GT(fleet.migration_progress().dirty_chunks, 0u);

  auto report = fleet.complete_migration();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report.value().chunks_recopied, 0u);
  EXPECT_EQ(report.value().source_checksum, report.value().target_checksum);

  // The target serves the LAST written bytes.
  expect_canonical(fleet, first, first + 9, kNewSeed);
  expect_canonical(fleet, first + 9, first + count, kSeed);
}

TEST(FleetMigration, ConcurrentWriterSeesZeroDivergence) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  auto attached =
      fleet.attach_shard(make_shard(17, 5, core::CodecKind::kXorParity, 1));
  ASSERT_TRUE(attached.ok());
  const std::uint64_t first = 8;
  const std::uint64_t count = 48;
  ASSERT_TRUE(fleet.start_migration(first, count, attached.value()).ok());

  // One writer hammers random blocks (inside and outside the range)
  // with per-round content while the migrator stages chunk by chunk.
  constexpr std::uint64_t kWriterSeed = 0xD00D;
  std::atomic<bool> stop{false};
  std::vector<std::uint32_t> last_round(n, 0);  // 0 = still kSeed content
  std::thread writer([&] {
    std::mt19937_64 rng(7);
    std::vector<std::uint8_t> block(kBlockBytes);
    std::uint32_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t target = rng() % n;
      io::canonical_fill(target ^ (kWriterSeed + round), kWriterSeed, block);
      ASSERT_TRUE(fleet.write(target, block).ok());
      last_round[target] = round;  // single writer: plain stores are safe
      ++round;
    }
  });

  // Drain in small passes while the writer keeps dirtying chunks; a
  // bounded number of passes is enough -- complete_migration re-copies
  // whatever is still dirty under the exclusive lock.
  for (int pass = 0; pass < 400; ++pass) {
    auto copied = fleet.migrate_some(4);
    ASSERT_TRUE(copied.ok());
    if (copied.value() == 0 &&
        fleet.migration_progress().dirty_chunks == 0)
      break;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  auto report = fleet.complete_migration();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().source_checksum, report.value().target_checksum);

  // Differential sweep: every block serves exactly what the writer's
  // record says it should -- no block lost a write to the cutover.
  std::vector<std::uint8_t> buf(kBlockBytes), expected(kBlockBytes);
  for (std::uint64_t block = 0; block < n; ++block) {
    ASSERT_TRUE(fleet.read(block, buf).ok());
    if (last_round[block] == 0)
      io::canonical_fill(block, kSeed, expected);
    else
      io::canonical_fill(block ^ (kWriterSeed + last_round[block]),
                         kWriterSeed, expected);
    ASSERT_EQ(buf, expected) << "block " << block;
  }
}

TEST(FleetMigration, DegradedSourceMigratesThroughReconstruction) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  // Fail a disk in shard 0 and migrate OUT of it while degraded: the
  // staging reads reconstruct from survivors.
  ASSERT_TRUE(fleet.fail_disk(0, 1).ok());
  auto attached =
      fleet.attach_shard(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  ASSERT_TRUE(attached.ok());
  const std::uint64_t count = 16;
  ASSERT_TRUE(fleet.start_migration(0, count, attached.value()).ok());
  for (;;) {
    auto copied = fleet.migrate_some(1 << 16);
    ASSERT_TRUE(copied.ok()) << copied.status().to_string();
    if (copied.value() == 0) break;
  }
  auto report = fleet.complete_migration();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().source_checksum, report.value().target_checksum);

  // The moved blocks now serve DIRECTLY from the healthy target.
  std::vector<std::uint8_t> buf(kBlockBytes);
  for (std::uint64_t block = 0; block < count; ++block) {
    io::ReadReceipt receipt;
    ASSERT_TRUE(fleet.read(block, buf, &receipt).ok());
    EXPECT_EQ(receipt.kind, api::ReadPlan::Kind::kDirect);
  }
  expect_canonical(fleet, 0, n, kSeed);
}

TEST(FleetMigration, CancelReleasesTheReservation) {
  Fleet fleet = make_fleet();
  auto attached =
      fleet.attach_shard(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  ASSERT_TRUE(attached.ok());
  const std::uint64_t capacity =
      fleet.shard(attached.value()).num_logical_units();

  EXPECT_EQ(fleet.cancel_migration().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.start_migration(0, capacity, attached.value()).ok());
  auto copied = fleet.migrate_some(4);
  ASSERT_TRUE(copied.ok());
  const auto before = fleet.extents();
  ASSERT_TRUE(fleet.cancel_migration().ok());
  EXPECT_FALSE(fleet.migration_progress().active);
  // Routing untouched, and the FULL capacity is reservable again --
  // the cancelled migration's landing zone was rolled back.
  EXPECT_EQ(fleet.extents().size(), before.size());
  ASSERT_TRUE(fleet.start_migration(0, capacity, attached.value()).ok());
  ASSERT_TRUE(fleet.cancel_migration().ok());
}

TEST(FleetMigration, StartValidationMatrix) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  EXPECT_EQ(fleet.migrate_some(1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.complete_migration().status().code(),
            StatusCode::kFailedPrecondition);

  // Range already routed to the target shard.
  EXPECT_EQ(fleet.start_migration(0, 4, 0).code(),
            StatusCode::kFailedPrecondition);
  // Unknown shard / zero blocks / out of range.
  EXPECT_EQ(fleet.start_migration(0, 4, 99).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.start_migration(0, 0, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.start_migration(n - 2, 4, 0).code(),
            StatusCode::kOutOfRange);
  // Target too small for the range.
  auto attached =
      fleet.attach_shard(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  ASSERT_TRUE(attached.ok());
  const std::uint64_t capacity =
      fleet.shard(attached.value()).num_logical_units();
  ASSERT_LT(capacity, n);
  EXPECT_EQ(fleet.start_migration(0, capacity + 1, attached.value()).code(),
            StatusCode::kFailedPrecondition);
  // Only one migration at a time.
  ASSERT_TRUE(fleet.start_migration(0, 4, attached.value()).ok());
  EXPECT_EQ(fleet.start_migration(8, 4, attached.value()).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.cancel_migration().ok());
}

TEST(FleetMigration, AddShardPlansTheTailAndExpandDrivesItHome) {
  Fleet fleet = make_fleet();
  const std::uint64_t n = fleet.num_blocks();
  ASSERT_TRUE(fill_canonical(fleet, 0, n, kSeed).ok());

  const std::uint32_t shards_before = fleet.num_shards();
  ASSERT_TRUE(
      fleet.expand(make_shard(9, 4, core::CodecKind::kReedSolomonPQ, 1))
          .ok());
  EXPECT_EQ(fleet.num_shards(), shards_before + 1);
  EXPECT_FALSE(fleet.migration_progress().active);
  EXPECT_EQ(fleet.num_blocks(), n);

  // The tail of the space now routes to the new shard (fair share,
  // bounded by the new shard's capacity)...
  auto tail = fleet.route_of(n - 1);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().shard, shards_before);
  // ...and every byte survived the rebalance.
  expect_canonical(fleet, 0, n, kSeed);
}

}  // namespace
}  // namespace pdl::fleet
