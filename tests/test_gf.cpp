#include "algebra/gf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "algebra/numtheory.hpp"

namespace pdl::algebra {
namespace {

TEST(GaloisField, RejectsNonPrimePowers) {
  EXPECT_THROW(GaloisField(6), std::invalid_argument);
  EXPECT_THROW(GaloisField(12), std::invalid_argument);
  EXPECT_THROW(GaloisField(1), std::invalid_argument);
  EXPECT_THROW(GaloisField(0), std::invalid_argument);
}

TEST(GaloisField, ExplicitModulusPinsTheRepresentation) {
  // The RS codec's modulus x^8+x^4+x^3+x^2+1 (0x11d), little-endian
  // coefficients.  Under it, x (element 2) is primitive and byte values
  // ARE polynomial bit patterns -- the property the wire format pins.
  const Polynomial rs_mod(2, std::vector<std::uint32_t>{1, 0, 1, 1, 1,
                                                        0, 0, 0, 1});
  const GaloisField field(256, rs_mod);
  EXPECT_EQ(field.order(), 256u);
  EXPECT_EQ(field.characteristic(), 2u);
  // x * x^7 = x^8 = x^4+x^3+x^2+1 = 0x1d under this modulus.
  EXPECT_EQ(field.mul(2, 0x80), 0x1Du);
  // Element 2 generates the full multiplicative group.
  Elem power = 1;
  std::set<Elem> seen;
  for (int i = 0; i < 255; ++i) {
    seen.insert(power);
    power = field.mul(power, 2);
  }
  EXPECT_EQ(power, 1u);  // order divides 255 and lands back at 1
  EXPECT_EQ(seen.size(), 255u);

  // Reducible moduli (x^8+1 = (x+1)^8 over Z_2) and wrong-degree ones
  // are rejected.
  EXPECT_THROW(
      GaloisField(256, Polynomial(2, std::vector<std::uint32_t>{
                                         1, 0, 0, 0, 0, 0, 0, 0, 1})),
      std::invalid_argument);
  EXPECT_THROW(
      GaloisField(256, Polynomial(2, std::vector<std::uint32_t>{1, 1, 1})),
      std::invalid_argument);
}

// Exhaustive ring-axiom check on small fields.
class GfAxioms : public ::testing::TestWithParam<Elem> {};

TEST_P(GfAxioms, SatisfiesRingAxioms) {
  const GaloisField field(GetParam());
  EXPECT_TRUE(check_ring_axioms(field).empty());
}

TEST_P(GfAxioms, EveryNonzeroElementIsAUnit) {
  const GaloisField field(GetParam());
  EXPECT_FALSE(field.inverse(0).has_value());
  for (Elem a = 1; a < field.order(); ++a) {
    const auto inv = field.inverse(a);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(field.mul(a, *inv), field.one());
  }
}

TEST_P(GfAxioms, PrimitiveElementGeneratesTheGroup) {
  const GaloisField field(GetParam());
  const Elem g = field.primitive_element();
  std::set<Elem> seen;
  Elem acc = field.one();
  for (Elem i = 0; i + 1 < field.order(); ++i) {
    seen.insert(acc);
    acc = field.mul(acc, g);
  }
  EXPECT_EQ(acc, field.one()) << "g^(q-1) must be 1";
  EXPECT_EQ(seen.size(), field.order() - 1u);
}

TEST_P(GfAxioms, CharacteristicIsTheAdditiveOrderOfOne) {
  const GaloisField field(GetParam());
  EXPECT_EQ(field.additive_order(field.one()), field.characteristic());
}

INSTANTIATE_TEST_SUITE_P(SmallFields, GfAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           25, 27, 32));

// Larger fields: sampled consistency checks instead of O(q^3) axioms.
class GfLarge : public ::testing::TestWithParam<Elem> {};

TEST_P(GfLarge, LogExpRoundTripAndDistributivitySamples) {
  const GaloisField field(GetParam());
  const Elem q = field.order();
  for (Elem a = 1; a < q; ++a) {
    ASSERT_EQ(field.exp(field.log(a)), a);
  }
  // Deterministic sample of triples.
  for (Elem i = 1; i < 200; ++i) {
    const Elem a = (i * 7919) % q;
    const Elem b = (i * 104729) % q;
    const Elem c = (i * 1299709) % q;
    ASSERT_EQ(field.mul(a, field.add(b, c)),
              field.add(field.mul(a, b), field.mul(a, c)));
    ASSERT_EQ(field.mul(a, b), field.mul(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(Fields, GfLarge,
                         ::testing::Values(49, 64, 81, 121, 125, 128, 243,
                                           256, 343, 512, 625, 1024));

TEST(GaloisField, ElementOfMultiplicativeOrder) {
  const GaloisField field(16);
  for (const std::uint32_t n : {1u, 3u, 5u, 15u}) {
    const Elem a = field.element_of_multiplicative_order(n);
    EXPECT_EQ(field.multiplicative_order(a), n);
  }
  EXPECT_THROW((void)field.element_of_multiplicative_order(7),
               std::invalid_argument);
  EXPECT_THROW((void)field.element_of_multiplicative_order(0),
               std::invalid_argument);
}

TEST(GaloisField, SubfieldStructure) {
  const GaloisField field(64);  // GF(64) contains GF(2), GF(4), GF(8)
  for (const Elem k : {2u, 4u, 8u, 64u}) {
    const auto sub = field.subfield(k);
    ASSERT_EQ(sub.size(), k);
    const std::set<Elem> elems(sub.begin(), sub.end());
    ASSERT_EQ(elems.size(), k) << "subfield elements must be distinct";
    EXPECT_TRUE(elems.count(0));
    EXPECT_TRUE(elems.count(field.one()));
    // Closure under both operations, and under inverses.
    for (const Elem a : sub) {
      for (const Elem b : sub) {
        EXPECT_TRUE(elems.count(field.add(a, b)));
        EXPECT_TRUE(elems.count(field.mul(a, b)));
      }
      if (a != 0) {
        EXPECT_TRUE(elems.count(*field.inverse(a)));
      }
    }
  }
  // GF(16) is not a subfield of GF(64) (4 does not divide 6).
  EXPECT_THROW(field.subfield(16), std::invalid_argument);
  EXPECT_THROW(field.subfield(3), std::invalid_argument);
}

TEST(GaloisField, SubfieldOfPrimeFieldIsWholeField) {
  const GaloisField field(7);
  const auto sub = field.subfield(7);
  EXPECT_EQ(sub.size(), 7u);
}

TEST(GaloisField, PrimeFieldMatchesModularArithmetic) {
  const GaloisField field(13);
  for (Elem a = 0; a < 13; ++a) {
    for (Elem b = 0; b < 13; ++b) {
      EXPECT_EQ(field.add(a, b), (a + b) % 13);
      EXPECT_EQ(field.mul(a, b), (a * b) % 13);
    }
    EXPECT_EQ(field.neg(a), (13 - a) % 13);
  }
}

TEST(GaloisField, Characteristic2AdditionIsXor) {
  const GaloisField field(16);
  for (Elem a = 0; a < 16; ++a) {
    for (Elem b = 0; b < 16; ++b) {
      EXPECT_EQ(field.add(a, b), a ^ b);
    }
    EXPECT_EQ(field.neg(a), a);  // -a = a in characteristic 2
  }
}

TEST(GaloisField, FrobeniusFixesPrimeSubfield) {
  // a -> a^p fixes exactly the prime subfield GF(p).
  const GaloisField field(27);
  const auto prime_subfield = field.subfield(3);
  const std::set<Elem> fixed_expected(prime_subfield.begin(),
                                      prime_subfield.end());
  std::set<Elem> fixed;
  for (Elem a = 0; a < 27; ++a) {
    if (field.pow(a, 3) == a) fixed.insert(a);
  }
  EXPECT_EQ(fixed, fixed_expected);
}

TEST(GaloisField, GetFieldCachesInstances) {
  auto f1 = get_field(81);
  auto f2 = get_field(81);
  EXPECT_EQ(f1.get(), f2.get());
  EXPECT_EQ(f1->order(), 81u);
}

TEST(GaloisField, GeneratorSetAnySubsetOfField) {
  // In a field every set of distinct elements is a generator set (all
  // nonzero differences are invertible).
  const GaloisField field(9);
  std::vector<Elem> all(9);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_TRUE(is_generator_set(field, all));
}

TEST(GaloisField, LogOfZeroThrows) {
  const GaloisField field(8);
  EXPECT_THROW((void)field.log(0), std::invalid_argument);
  EXPECT_THROW((void)field.log(8), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::algebra
