// End-to-end integration tests: build an array through the pdl::api::Array
// front door, map addresses, simulate failures, and recover actual data
// through the XOR codec -- the full pipeline a storage system would run.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/pdl.hpp"

namespace pdl {
namespace {

TEST(Integration, EndToEndDataRecovery) {
  // Build a declustered array, write synthetic data through the mapper,
  // fail a disk, and recover every lost unit via the recovery plan.
  const auto array = api::Array::create({.num_disks = 13, .stripe_size = 4});
  ASSERT_TRUE(array.ok()) << array.status().to_string();
  const layout::Layout& l = array->layout();
  const layout::AddressMapper mapper(l);

  // Simulated physical storage: (disk, offset) -> unit contents.
  constexpr std::size_t kUnitBytes = 8;
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::vector<std::uint8_t>>
      storage;
  std::mt19937_64 rng(1234);

  // Write every logical data unit with random content.
  for (std::uint64_t logical = 0;
       logical < mapper.data_units_per_iteration(); ++logical) {
    std::vector<std::uint8_t> unit(kUnitBytes);
    for (auto& byte : unit) byte = static_cast<std::uint8_t>(rng());
    const auto phys = mapper.map(logical);
    storage[{phys.disk, phys.offset}] = std::move(unit);
  }
  // Compute parity for every stripe.
  for (const layout::Stripe& st : l.stripes()) {
    std::vector<std::vector<std::uint8_t>> data;
    for (std::uint32_t pos = 0; pos < st.units.size(); ++pos) {
      if (pos == st.parity_pos) continue;
      data.push_back(storage.at({st.units[pos].disk, st.units[pos].offset}));
    }
    storage[{st.parity_unit().disk, st.parity_unit().offset}] =
        core::xor_parity(data);
  }

  // Fail disk 5; recover every unit from the plan.
  const layout::DiskId failed = 5;
  const auto plan = core::plan_recovery(l, failed);
  ASSERT_EQ(plan.repairs.size(), l.units_per_disk());
  for (const auto& repair : plan.repairs) {
    std::vector<std::vector<std::uint8_t>> survivors;
    for (const auto& read : repair.reads) {
      survivors.push_back(storage.at({read.disk, read.offset}));
    }
    const auto recovered = core::xor_reconstruct(survivors);
    EXPECT_EQ(recovered, storage.at({repair.lost.disk, repair.lost.offset}))
        << "stripe " << repair.stripe;
  }
}

TEST(Integration, MapperAndSimulatorAgreeOnWorkingSet) {
  const auto array = api::Array::create({.num_disks = 16, .stripe_size = 4});
  ASSERT_TRUE(array.ok());
  const sim::ArraySimulator simulator(
      array->layout(), sim::ArrayConfig{.disk = {}, .rebuild_depth = 2,
                                        .iterations = 3});
  EXPECT_EQ(simulator.working_set(),
            3 * array->data_units_per_iteration());
}

TEST(Integration, RebuildSimulationMatchesRecoveryPlanReadCounts) {
  const auto array = api::Array::create({.num_disks = 9, .stripe_size = 3});
  ASSERT_TRUE(array.ok());
  const layout::DiskId failed = 7;
  const sim::ArraySimulator simulator(
      array->layout(),
      sim::ArrayConfig{.disk = {}, .rebuild_depth = 4, .iterations = 1});
  const auto rebuild = simulator.run_rebuild({}, failed);
  const auto plan = core::plan_recovery(array->layout(), failed);
  for (layout::DiskId d = 0; d < 9; ++d) {
    EXPECT_EQ(rebuild.rebuild_reads_per_disk[d],
              plan.analysis.units_to_read[d]);
  }
}

TEST(Integration, DeclusteredBeatsRaid5OnRebuildAcrossSizes) {
  // The paper's headline shape: at equal array size, smaller k rebuilds
  // faster (reads less of each survivor).
  for (const std::uint32_t v : {8u, 13u}) {
    const auto declustered =
        api::Array::create({.num_disks = v, .stripe_size = 3});
    ASSERT_TRUE(declustered.ok());
    const auto raid5 = layout::raid5_layout(
        v, declustered->units_per_disk());
    const sim::ArrayConfig config{
        .disk = {}, .rebuild_depth = 4, .iterations = 1};
    const auto d =
        sim::ArraySimulator(declustered->layout(), config).run_rebuild({}, 0);
    const auto r = sim::ArraySimulator(raid5, config).run_rebuild({}, 0);
    EXPECT_LT(d.rebuild_ms, r.rebuild_ms) << "v=" << v;
  }
}

TEST(Integration, UmbrellaHeaderExposesEverything) {
  // Compile-time check that pdl.hpp pulls in all the public pieces;
  // exercise one symbol from each namespace.
  EXPECT_TRUE(algebra::is_prime(13));
  EXPECT_TRUE(design::ring_design_exists(13, 4));
  EXPECT_EQ(flow::copies_for_perfect_balance(39, 13), 1u);
  EXPECT_EQ(layout::kDefaultUnitBudget, 10'000u);
}

}  // namespace
}  // namespace pdl
