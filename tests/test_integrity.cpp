// The end-to-end integrity layer of io::StripeStore: per-unit CRC32C
// checksums verified on every read path.  The suite pins:
//
//   * a store without api::ArrayOptions::integrity is inert -- no
//     counters move, scrub is an empty report;
//   * healthy reads verify and count; seeded on-media rot (written
//     behind the store's back) is detected on read, served canonically
//     anyway (codec reconstruction), healed IN PLACE, and the media
//     ends checksum-identical to the pre-rot oracle;
//   * degraded reads verify every survivor: rot in a survivor of a
//     degraded stripe is caught (never silently decoded into the
//     "reconstructed" unit) and healed when the erasure budget covers
//     lost + rotted;
//   * rot past the codec's tolerance surfaces kChecksumMismatch -- the
//     store refuses to serve bytes it cannot vouch for;
//   * units never written carry the stored-zero "unverified" sentinel
//     and are adopted (given fresh CRCs) by scrub, exactly once;
//   * verify_stripes (the parity re-encode audit) flags rotted
//     instances before healing and none after;
//   * the integrity flag round-trips api::Array serialization, and a
//     file-backed store's checksum region round-trips reopen;
//   * fail/replace/rebuild refreshes the replacement's CRCs (rebuilt
//     bytes verify; the rebuilt disk is checksum-identical).

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/array.hpp"
#include "io/disk_backend.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

constexpr std::uint32_t kV = 17;
constexpr std::uint32_t kK = 5;
constexpr std::uint32_t kUnitBytes = 64;
constexpr std::uint32_t kIterations = 2;
constexpr std::uint64_t kSeed = 0xC4C5;

Result<StripeStore> make_store(core::CodecKind codec, bool integrity,
                               std::unique_ptr<DiskBackend> backend = {}) {
  auto array = api::Array::create({kV, kK}, {},
                                  {.codec = codec, .integrity = integrity});
  EXPECT_TRUE(array.ok()) << array.status().to_string();
  if (!array.ok()) return array.status();
  return StripeStore::create(
      std::move(array).value(),
      {.unit_bytes = kUnitBytes, .iterations = kIterations},
      std::move(backend));
}

/// Flips one bit of `p`'s on-media unit behind the store's back: the
/// store's CRC cache still vouches for the original bytes, so the next
/// read of this unit must detect the mismatch.
void rot_unit(StripeStore& store, Physical p) {
  const std::uint64_t byte =
      static_cast<std::uint64_t>(p.offset) * store.unit_bytes();
  std::uint8_t media = 0;
  ASSERT_TRUE(store.backend().read(p.disk, byte, {&media, 1}).ok());
  media ^= 0x40;
  ASSERT_TRUE(store.backend().write(p.disk, byte, {&media, 1}).ok());
}

void expect_canonical(StripeStore& store, std::uint64_t logical) {
  std::vector<std::uint8_t> unit(store.unit_bytes());
  std::vector<std::uint8_t> expected(store.unit_bytes());
  ASSERT_TRUE(store.read(logical, unit).ok()) << "logical " << logical;
  canonical_fill(logical, kSeed, expected);
  EXPECT_EQ(unit, expected) << "logical " << logical;
}

TEST(Integrity, NonIntegrityStoreIsInert) {
  auto store = make_store(core::CodecKind::kXorParity, false);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->integrity());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  expect_canonical(*store, 0);

  const IntegrityStats stats = store->integrity_stats();
  EXPECT_EQ(stats.verified, 0u);
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_EQ(stats.healed, 0u);
  EXPECT_EQ(stats.adopted, 0u);

  const auto report = store->scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances, 0u);
}

TEST(Integrity, HealthyReadsVerifyAndCount) {
  auto store = make_store(core::CodecKind::kXorParity, true);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->integrity());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical)
    expect_canonical(*store, logical);

  const IntegrityStats stats = store->integrity_stats();
  EXPECT_GE(stats.verified, store->num_logical_units());
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_EQ(stats.healed, 0u);
  EXPECT_EQ(stats.unhealable, 0u);
}

TEST(Integrity, OnMediaRotIsDetectedHealedInPlace) {
  auto store = make_store(core::CodecKind::kXorParity, true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  const auto oracle = store->checksum_disks();
  ASSERT_TRUE(oracle.ok());

  const std::uint64_t logical = store->num_logical_units() / 2;
  rot_unit(*store, store->array().map(logical));

  // The read serves canonical bytes anyway: detect, reconstruct through
  // the codec, heal the media, retry.
  expect_canonical(*store, logical);
  IntegrityStats stats = store->integrity_stats();
  // Mismatch counts are detection EVENTS (the foreground read detects,
  // then the heal pass re-verifies the instance), so >= 1, not == 1.
  EXPECT_GE(stats.mismatches, 1u);
  EXPECT_EQ(stats.healed, 1u);
  EXPECT_EQ(stats.unhealable, 0u);
  const std::uint64_t detections = stats.mismatches;

  // The heal rewrote the unit: a second read verifies cleanly (the
  // detection counter is stable) and the media is byte-identical to
  // before the corruption.
  expect_canonical(*store, logical);
  stats = store->integrity_stats();
  EXPECT_EQ(stats.mismatches, detections);
  const auto after = store->checksum_disks();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *oracle);
}

TEST(Integrity, DegradedReadVerifiesSurvivorsAndHeals) {
  // Reed-Solomon P+Q: one disk lost AND one survivor rotted is still
  // within the two-erasure budget -- the degraded read must catch the
  // rotted survivor (not decode garbage) and serve canonical bytes.
  auto store = make_store(core::CodecKind::kReedSolomonPQ, true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());

  const layout::DiskId failed = 0;
  ASSERT_TRUE(store->fail_disk(failed).ok());
  // A logical whose unit lived on the failed disk now reads degraded.
  std::uint64_t degraded_logical = store->num_logical_units();
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical)
    if (store->array().map(logical).disk == failed) {
      degraded_logical = logical;
      break;
    }
  ASSERT_LT(degraded_logical, store->num_logical_units());

  std::array<Physical, 64> survivors;
  const auto plan = store->array().locate(degraded_logical, survivors);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->kind, api::ReadPlan::Kind::kDegraded);
  ASSERT_GT(plan->num_survivors, 0u);
  rot_unit(*store, survivors[0]);

  expect_canonical(*store, degraded_logical);
  const IntegrityStats stats = store->integrity_stats();
  EXPECT_GE(stats.mismatches, 1u);
  EXPECT_GE(stats.healed, 1u);
  EXPECT_EQ(stats.unhealable, 0u);
}

TEST(Integrity, RotBeyondTheCodecBudgetSurfaces) {
  // XOR tolerates one erasure; rot TWO units of one stripe and the
  // store must refuse the read (kChecksumMismatch), never serve bytes
  // it cannot vouch for.
  auto store = make_store(core::CodecKind::kXorParity, true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());

  const std::uint64_t logical = 0;
  const Physical own = store->array().map(logical);
  const auto ref = store->array().logical_ref(logical);
  std::array<api::Array::StripeUnitStatus, 64> units;
  const auto width = store->array().stripe_units(ref.stripe, units);
  ASSERT_TRUE(width.ok());
  // logical 0 lives at iteration 0, so stripe_units' iteration-0 homes
  // are the right physicals to rot.
  ASSERT_EQ(ref.iteration, 0u);
  rot_unit(*store, own);
  for (std::uint32_t u = 0; u < *width; ++u)
    if (!(units[u].unit.disk == own.disk &&
          units[u].unit.offset == own.offset)) {
      rot_unit(*store, units[u].unit);
      break;
    }

  std::vector<std::uint8_t> unit(store->unit_bytes());
  const Status status = store->read(logical, unit);
  EXPECT_EQ(status.code(), StatusCode::kChecksumMismatch);
  const IntegrityStats stats = store->integrity_stats();
  EXPECT_GE(stats.mismatches, 1u);
  EXPECT_GE(stats.unhealable, 1u);
}

TEST(Integrity, ScrubAdoptsUnverifiedUnitsExactlyOnce) {
  // Fill only the first half of the address space: everything never
  // written still carries the stored-zero "unverified" sentinel.  A
  // scrub cycle adopts those units (fresh CRCs, no mismatch); a second
  // cycle finds nothing left to adopt.
  auto store = make_store(core::CodecKind::kXorParity, true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units() / 2, kSeed).ok());

  const auto first = store->scrub();
  ASSERT_TRUE(first.ok());
  const IntegrityStats after_first = store->integrity_stats();
  EXPECT_GT(after_first.adopted, 0u);
  EXPECT_EQ(after_first.mismatches, 0u);
  EXPECT_EQ(first->mismatches, 0u);

  const auto second = store->scrub();
  ASSERT_TRUE(second.ok());
  const IntegrityStats after_second = store->integrity_stats();
  EXPECT_EQ(after_second.adopted, after_first.adopted);
  EXPECT_EQ(after_second.mismatches, 0u);
}

TEST(Integrity, VerifyStripesFlagsRotThenScrubClearsIt) {
  auto store = make_store(core::CodecKind::kReedSolomonPQ, true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  const auto clean = store->verify_stripes();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, 0u);

  rot_unit(*store, store->array().map(3));
  const auto rotted = store->verify_stripes();
  ASSERT_TRUE(rotted.ok());
  EXPECT_EQ(*rotted, 1u);

  const auto report = store->scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mismatches, 1u);
  EXPECT_EQ(report->healed, 1u);
  const auto healed = store->verify_stripes();
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, 0u);
}

TEST(Integrity, FlagRoundTripsArraySerialization) {
  auto with = api::Array::create({kV, kK}, {}, {.integrity = true});
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with->integrity());
  auto reopened = api::Array::deserialize(with->serialize());
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_TRUE(reopened->integrity());

  auto without = api::Array::create({kV, kK}, {}, {});
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->integrity());
  auto reopened_plain = api::Array::deserialize(without->serialize());
  ASSERT_TRUE(reopened_plain.ok());
  EXPECT_FALSE(reopened_plain->integrity());
}

TEST(Integrity, ChecksumRegionRoundTripsFileReopen) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("pdl_integrity_reopen_" +
       std::to_string(static_cast<unsigned long>(::getpid())));
  std::string array_text;
  {
    auto store = make_store(core::CodecKind::kXorParity, true,
                            make_file_backend({.directory = dir.string()}));
    ASSERT_TRUE(store.ok()) << store.status().to_string();
    ASSERT_TRUE(
        fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
    array_text = store->array().serialize();
    ASSERT_TRUE(store->sync().ok());
  }
  {
    auto array = api::Array::deserialize(array_text);
    ASSERT_TRUE(array.ok());
    auto store = StripeStore::create(
        std::move(array).value(),
        {.unit_bytes = kUnitBytes, .iterations = kIterations},
        make_file_backend({.directory = dir.string()}));
    ASSERT_TRUE(store.ok()) << store.status().to_string();

    // Reopened CRCs verify every unit with zero false mismatches...
    for (std::uint64_t logical = 0; logical < store->num_logical_units();
         ++logical)
      expect_canonical(*store, logical);
    IntegrityStats stats = store->integrity_stats();
    EXPECT_GT(stats.verified, 0u);
    EXPECT_EQ(stats.mismatches, 0u);
    EXPECT_EQ(stats.adopted, 0u);

    // ...and still catch rot seeded AFTER the reopen (the detection
    // authority is the persisted region, reloaded into the cache).
    rot_unit(*store, store->array().map(1));
    expect_canonical(*store, 1);
    stats = store->integrity_stats();
    EXPECT_GE(stats.mismatches, 1u);
    EXPECT_EQ(stats.healed, 1u);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Integrity, RebuildRefreshesReplacementCrcs) {
  auto store = make_store(core::CodecKind::kXorParity, true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  const auto oracle = store->checksum_disks();
  ASSERT_TRUE(oracle.ok());

  const layout::DiskId failed = kV / 2;
  ASSERT_TRUE(store->fail_disk(failed).ok());
  ASSERT_TRUE(store->replace_disk(failed).ok());
  ASSERT_TRUE(store->rebuild().ok());
  EXPECT_TRUE(store->array().healthy());

  // Every rebuilt byte verifies against a FRESH checksum (a stale CRC
  // region would flag every rebuilt unit as rotted)...
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical)
    expect_canonical(*store, logical);
  const IntegrityStats stats = store->integrity_stats();
  EXPECT_EQ(stats.mismatches, 0u);

  // ...the parity audit is clean, and the rebuilt disk is
  // checksum-identical to its pre-failure contents.
  const auto inconsistent = store->verify_stripes();
  ASSERT_TRUE(inconsistent.ok());
  EXPECT_EQ(*inconsistent, 0u);
  const auto rebuilt = store->checksum_disk(failed);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, (*oracle)[failed]);
}

}  // namespace
}  // namespace pdl::io
