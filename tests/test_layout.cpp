#include "layout/layout.hpp"

#include <gtest/gtest.h>

namespace pdl::layout {
namespace {

TEST(Layout, ConstructionValidation) {
  EXPECT_THROW(Layout(1, 5), std::invalid_argument);
  EXPECT_THROW(Layout(4, 0), std::invalid_argument);
  const Layout l(4, 3);
  EXPECT_EQ(l.num_disks(), 4u);
  EXPECT_EQ(l.units_per_disk(), 3u);
  EXPECT_EQ(l.num_stripes(), 0u);
}

TEST(Layout, AppendStripeAssignsNextFreeOffsets) {
  Layout l(4, 2);
  const auto s0 = l.append_stripe({0, 1, 2}, 0);
  const auto s1 = l.append_stripe({1, 2, 3}, 2);
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  // Disk 1's units: offset 0 in stripe 0, offset 1 in stripe 1.
  EXPECT_EQ(l.at(1, 0).stripe, 0u);
  EXPECT_EQ(l.at(1, 1).stripe, 1u);
  EXPECT_EQ(l.at(3, 0).stripe, 1u);
  EXPECT_FALSE(l.at(0, 1).used());
}

TEST(Layout, AppendStripeRejectsDuplicateDisk) {
  Layout l(4, 4);
  EXPECT_THROW(l.append_stripe({0, 1, 0}, 0), std::invalid_argument);
}

TEST(Layout, AppendStripeRejectsFullDisk) {
  Layout l(3, 1);
  l.append_stripe({0, 1}, 0);
  EXPECT_THROW(l.append_stripe({0, 2}, 0), std::invalid_argument);
}

TEST(Layout, AddStripeAtExplicitPositions) {
  Layout l(3, 2);
  l.add_stripe_at({{0, 1}, {1, 0}}, 1);
  EXPECT_EQ(l.at(0, 1).stripe, 0u);
  EXPECT_EQ(l.at(1, 0).stripe, 0u);
  EXPECT_FALSE(l.at(0, 0).used());
  // Occupied slot rejected.
  EXPECT_THROW(l.add_stripe_at({{0, 1}, {2, 0}}, 0), std::invalid_argument);
  // Out-of-range rejected.
  EXPECT_THROW(l.add_stripe_at({{0, 0}, {2, 5}}, 0), std::invalid_argument);
  EXPECT_THROW(l.add_stripe_at({{5, 0}}, 0), std::invalid_argument);
}

TEST(Layout, AddStripeAtIsAtomicOnFailure) {
  Layout l(3, 2);
  l.add_stripe_at({{0, 0}}, 0);
  // This stripe conflicts at its second unit; the first must not be placed.
  EXPECT_THROW(l.add_stripe_at({{1, 0}, {0, 0}}, 0), std::invalid_argument);
  EXPECT_FALSE(l.at(1, 0).used());
}

TEST(Layout, ParityReassignmentAndCounts) {
  Layout l(3, 2);
  l.append_stripe({0, 1, 2}, 0);
  l.append_stripe({0, 1, 2}, 0);
  auto counts = l.parity_units_per_disk();
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{2, 0, 0}));
  l.set_parity_pos(1, 2);
  counts = l.parity_units_per_disk();
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{1, 0, 1}));
  EXPECT_THROW(l.set_parity_pos(5, 0), std::invalid_argument);
  EXPECT_THROW(l.set_parity_pos(0, 3), std::invalid_argument);
}

TEST(Layout, ValidateDetectsHoles) {
  Layout l(2, 2);
  l.append_stripe({0, 1}, 0);
  EXPECT_FALSE(l.validate().empty()) << "half the slots are unused";
  EXPECT_TRUE(l.validate(/*allow_holes=*/true).empty());
  l.append_stripe({0, 1}, 1);
  EXPECT_TRUE(l.validate().empty());
}

TEST(Layout, ValidateOkOnCompleteLayout) {
  Layout l(4, 3);
  // Three full-width stripes fill every slot.
  for (int i = 0; i < 3; ++i) l.append_stripe({0, 1, 2, 3}, i);
  EXPECT_TRUE(l.validate().empty());
  EXPECT_EQ(l.stripes()[2].parity_unit().disk, 2u);
}

TEST(Layout, StripeAccessors) {
  Layout l(4, 1);
  l.append_stripe({2, 0, 3}, 1);
  const Stripe& st = l.stripes()[0];
  EXPECT_EQ(st.size(), 3u);
  EXPECT_EQ(st.parity_unit().disk, 0u);
  EXPECT_EQ(st.units[0].disk, 2u);
}

TEST(Layout, AtOutOfRangeThrows) {
  const Layout l(2, 2);
  EXPECT_THROW((void)l.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)l.at(0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::layout
