#include "engine/layout_cache.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"

namespace pdl::engine {
namespace {

using core::ArraySpec;
using core::BuildOptions;

TEST(LayoutCache, RepeatedGetsShareOneInstance) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 16, .stripe_size = 4};
  const auto first = cache.get(spec);
  const auto second = cache.get(spec);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LayoutCache, OptionsArePartOfTheKey) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 16, .stripe_size = 4};
  const auto default_opts = cache.get(spec);
  const auto big_budget = cache.get(spec, {.unit_budget = 100'000});
  ASSERT_NE(default_opts, nullptr);
  ASSERT_NE(big_budget, nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(LayoutCache, NegativeResultsAreCached) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 100, .stripe_size = 5};
  const BuildOptions tiny{.unit_budget = 10};
  EXPECT_EQ(cache.get(spec, tiny), nullptr);
  EXPECT_EQ(cache.get(spec, tiny), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(LayoutCache, InvalidSpecThrowsAndIsNotCached) {
  LayoutCache cache;
  EXPECT_THROW((void)cache.get({.num_disks = 4, .stripe_size = 5}),
               std::invalid_argument);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LayoutCache, ClearResetsEverything) {
  LayoutCache cache;
  (void)cache.get({.num_disks = 9, .stripe_size = 3});
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(LayoutCache, CachedResultMatchesDirectBuild) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 33, .stripe_size = 5};
  const BuildOptions options{.unit_budget = 100'000};
  const auto cached = cache.get(spec, options);
  const auto direct =
      ConstructionPlanner::default_planner().build_best(spec, options);
  ASSERT_NE(cached, nullptr);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(cached->construction, direct->construction);
  EXPECT_EQ(cached->metrics.units_per_disk, direct->metrics.units_per_disk);
}

TEST(Engine, GlobalFacadeBuildsAndCaches) {
  auto& engine = Engine::global();
  const ArraySpec spec{.num_disks = 13, .stripe_size = 4};
  const auto first = engine.build(spec);
  const auto second = engine.build(spec);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_FALSE(engine.rank_plans(spec).empty());
  EXPECT_EQ(&engine.planner(), &ConstructionPlanner::default_planner());
}

}  // namespace
}  // namespace pdl::engine
