#include "engine/layout_cache.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"

namespace pdl::engine {
namespace {

using core::ArraySpec;
using core::BuildOptions;

TEST(LayoutCache, RepeatedGetsShareOneInstance) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 16, .stripe_size = 4};
  const auto first = cache.get(spec);
  const auto second = cache.get(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LayoutCache, OptionsArePartOfTheKey) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 16, .stripe_size = 4};
  const auto default_opts = cache.get(spec);
  const auto big_budget = cache.get(spec, {.unit_budget = 100'000});
  ASSERT_TRUE(default_opts.ok());
  ASSERT_TRUE(big_budget.ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(LayoutCache, NegativeResultsAreCachedAsUnsupported) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 100, .stripe_size = 5};
  const BuildOptions tiny{.unit_budget = 10};
  const auto first = cache.get(spec, tiny);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnsupported);
  const auto second = cache.get(spec, tiny);
  EXPECT_EQ(second.status().code(), StatusCode::kUnsupported);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(LayoutCache, InvalidSpecIsTypedErrorAndNotCached) {
  LayoutCache cache;
  const auto result = cache.get({.num_disks = 4, .stripe_size = 5});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(LayoutCache, ClearResetsEverything) {
  LayoutCache cache;
  (void)cache.get({.num_disks = 9, .stripe_size = 3});
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(LayoutCache, CachedResultMatchesDirectBuild) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 33, .stripe_size = 5};
  const BuildOptions options{.unit_budget = 100'000};
  const auto cached = cache.get(spec, options);
  const auto direct =
      ConstructionPlanner::default_planner().build_best(spec, options);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ((*cached)->construction, direct->construction);
  EXPECT_EQ((*cached)->metrics.units_per_disk,
            direct->metrics.units_per_disk);
}

TEST(LayoutCache, SparedSharesTheBaseDerivation) {
  LayoutCache cache;
  const ArraySpec spec{.num_disks = 17, .stripe_size = 5};
  const auto spared = cache.get_spared(spec);
  ASSERT_TRUE(spared.ok());
  EXPECT_EQ((*spared)->spare_pos.size(), (*spared)->layout.num_stripes());
  // A second lookup is a pure hit.
  const auto again = cache.get_spared(spec);
  EXPECT_EQ((*again).get(), (*spared).get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(LayoutCache, DeprecatedShimsPreserveOldContract) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  LayoutCache cache;
  EXPECT_EQ(cache.get_or_null({.num_disks = 100, .stripe_size = 5},
                              {.unit_budget = 10}),
            nullptr);
  EXPECT_NE(cache.get_or_null({.num_disks = 16, .stripe_size = 4}), nullptr);
  EXPECT_THROW((void)cache.get_or_null({.num_disks = 4, .stripe_size = 5}),
               std::invalid_argument);
  EXPECT_NE(cache.get_spared_or_null({.num_disks = 17, .stripe_size = 5}),
            nullptr);
#pragma GCC diagnostic pop
}

TEST(Engine, GlobalFacadeBuildsAndCaches) {
  auto& engine = Engine::global();
  const ArraySpec spec{.num_disks = 13, .stripe_size = 4};
  const auto first = engine.build(spec);
  const auto second = engine.build(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_FALSE(engine.rank_plans(spec).empty());
  EXPECT_EQ(&engine.planner(), &ConstructionPlanner::default_planner());
}

}  // namespace
}  // namespace pdl::engine
