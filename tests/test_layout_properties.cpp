// Property-based invariant tests over every registered engine builder: a
// table-driven (v, k) sweep in which each builder that plans a layout must
// deliver the paper's structural conditions --
//   1. single correction: no stripe touches a disk twice (so one disk
//      failure costs each stripe at most one unit),
//   hole-free coverage: every slot of every disk belongs to exactly one
//      stripe (Layout::validate checks both),
//   2. parity balance within the bounds its BalanceClass advertises:
//      perfect -> identical counts, near-perfect -> within one unit
//      (Corollary 16), approximate -> inside the Section 3 factor-two
//      interval around the ideal s/k;
// plus seeded-RNG spot checks that the mapping round-trips.

#include <gtest/gtest.h>

#include <random>

#include "engine/planner.hpp"
#include "layout/mapping.hpp"
#include "layout/metrics.hpp"

namespace pdl {
namespace {

using engine::BalanceClass;
using engine::ConstructionPlanner;
using engine::LayoutBuilder;

struct SweepPoint {
  std::uint32_t v;
  std::uint32_t k;
};

// Table chosen to exercise every builder: primes, prime powers, composites,
// and a k == v RAID5 point.  Plans above the size cap (the lambda-blowup
// corners like v=21 k=5) are skipped to keep the suite fast.
const SweepPoint kSweep[] = {
    {7, 7},  {9, 3},  {9, 4},  {9, 5},  {10, 3}, {10, 4}, {13, 3},
    {13, 4}, {13, 5}, {16, 3}, {16, 4}, {16, 5}, {17, 3}, {17, 4},
    {17, 5}, {21, 3}, {21, 4}, {25, 3}, {25, 4}, {25, 5},
};
constexpr std::uint64_t kSizeCap = 2000;

TEST(LayoutProperties, EveryBuilderEveryPointHoldsItsGuarantees) {
  const ConstructionPlanner& planner = ConstructionPlanner::default_planner();
  ASSERT_GE(planner.num_builders(), 6u);
  std::mt19937_64 rng(20260731);
  std::size_t built_layouts = 0;

  for (const SweepPoint& point : kSweep) {
    const core::ArraySpec spec{point.v, point.k};
    for (const auto& builder : planner.builders()) {
      const auto plan = builder->plan(spec, core::BuildOptions{});
      if (!plan) continue;
      if (plan->units_per_disk > kSizeCap) continue;
      SCOPED_TRACE(std::string(builder->name()) + " v=" +
                   std::to_string(point.v) + " k=" + std::to_string(point.k));

      const core::BuiltLayout built = builder->build(*plan);
      ++built_layouts;
      const layout::Layout& l = built.layout;

      // Conditions 1 + hole-free coverage (single correction, no gaps).
      const auto violations = l.validate();
      EXPECT_TRUE(violations.empty())
          << "first violation: "
          << (violations.empty() ? "" : violations.front());

      // plan() is a closed form; the built layout must match it exactly.
      EXPECT_EQ(l.units_per_disk(), plan->units_per_disk);
      EXPECT_EQ(l.num_disks(), point.v);

      // Condition 2: parity balance within the advertised class.
      const layout::LayoutMetrics& m = built.metrics;
      const double ideal = static_cast<double>(m.units_per_disk) / point.k;
      switch (plan->balance) {
        case BalanceClass::kPerfect:
          EXPECT_EQ(m.min_parity_units, m.max_parity_units);
          break;
        case BalanceClass::kNearPerfect:
          EXPECT_LE(m.max_parity_units - m.min_parity_units, 1u);
          break;
        case BalanceClass::kApproximate:
          EXPECT_GE(m.min_parity_units, 0.5 * ideal);
          EXPECT_LE(m.max_parity_units, 2.0 * ideal);
          break;
      }
      if (plan->perfect_parity) {
        EXPECT_EQ(m.min_parity_units, m.max_parity_units);
      }

      // Every stripe has 2..k units and exactly one parity unit in range.
      for (const layout::Stripe& st : l.stripes()) {
        EXPECT_GE(st.units.size(), 2u);
        EXPECT_LE(st.units.size(), point.k);
        EXPECT_LT(st.parity_pos, st.units.size());
      }

      // Seeded spot check: the mapping round-trips on random logicals.
      const layout::AddressMapper mapper(l);
      const std::uint64_t d = mapper.data_units_per_iteration();
      ASSERT_GT(d, 0u);
      std::uniform_int_distribution<std::uint64_t> pick(0, d - 1);
      for (int trial = 0; trial < 32; ++trial) {
        const std::uint64_t logical = pick(rng);
        EXPECT_EQ(mapper.logical_at(mapper.map(logical)), logical);
        const auto parity = mapper.parity_of(logical);
        EXPECT_EQ(mapper.logical_at(parity), layout::AddressMapper::kParity);
      }
    }
  }
  // The sweep must actually exercise a healthy cross-section of builders.
  EXPECT_GE(built_layouts, 50u);
}

// The reconstruction-workload counts (Condition 3) must agree with the
// stripe table: for random disk pairs, the metric equals a direct count of
// shared stripes.
TEST(LayoutProperties, ReconstructionMatrixMatchesDirectCount) {
  const ConstructionPlanner& planner = ConstructionPlanner::default_planner();
  std::mt19937_64 rng(7);
  for (const SweepPoint& point : {SweepPoint{13, 4}, SweepPoint{16, 5}}) {
    for (const auto& builder : planner.builders()) {
      const auto plan = builder->plan({point.v, point.k}, {});
      if (!plan || plan->units_per_disk > kSizeCap) continue;
      SCOPED_TRACE(std::string(builder->name()));
      const core::BuiltLayout built = builder->build(*plan);
      const auto matrix = layout::reconstruction_matrix(built.layout);
      std::uniform_int_distribution<std::uint32_t> pick(0, point.v - 1);
      for (int trial = 0; trial < 16; ++trial) {
        const std::uint32_t f = pick(rng);
        const std::uint32_t s = pick(rng);
        if (f == s) continue;
        std::uint32_t shared = 0;
        for (const layout::Stripe& st : built.layout.stripes()) {
          bool has_f = false, has_s = false;
          for (const layout::StripeUnit& u : st.units) {
            has_f |= u.disk == f;
            has_s |= u.disk == s;
          }
          if (has_f && has_s) ++shared;
        }
        EXPECT_EQ(matrix[f * point.v + s], shared)
            << "pair (" << f << ", " << s << ")";
      }
    }
  }
}

}  // namespace
}  // namespace pdl
