// Differential test of the three address-mapping implementations: the
// serving-path CompiledMapper, the construction-time AddressMapper, and an
// independent naive table walk rebuilt here straight from the Layout's
// stripe list (stripe-major numbering, parity skipped).  Randomized
// logicals plus the systematic edge addresses -- first/last data unit of
// every disk and the boundaries of vertical iterations -- must agree
// across all three, for map, parity_of, stripe_of, map_batch, and the
// inverse map.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "engine/planner.hpp"
#include "layout/compiled_mapper.hpp"
#include "layout/mapping.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

namespace pdl {
namespace {

using layout::AddressMapper;
using layout::CompiledMapper;
using layout::Layout;

/// The naive reference: an explicit logical -> (stripe, position) table in
/// the documented numbering, with every lookup answered by scanning that
/// table (no shared code with either mapper under test).
struct NaiveMapper {
  explicit NaiveMapper(const Layout& layout) : layout(&layout) {
    for (std::uint32_t si = 0; si < layout.num_stripes(); ++si) {
      const layout::Stripe& st = layout.stripes()[si];
      for (std::uint32_t pos = 0; pos < st.units.size(); ++pos) {
        if (pos == st.parity_pos) continue;
        table.push_back({si, pos});
      }
    }
  }

  [[nodiscard]] std::uint64_t data_units() const { return table.size(); }

  [[nodiscard]] AddressMapper::Physical map(std::uint64_t logical) const {
    const auto [si, pos] = table[logical % table.size()];
    const layout::StripeUnit& u = layout->stripes()[si].units[pos];
    return {u.disk,
            (logical / table.size()) * layout->units_per_disk() + u.offset};
  }

  [[nodiscard]] AddressMapper::Physical parity(std::uint64_t logical) const {
    const auto [si, pos] = table[logical % table.size()];
    (void)pos;
    const layout::StripeUnit& u = layout->stripes()[si].parity_unit();
    return {u.disk,
            (logical / table.size()) * layout->units_per_disk() + u.offset};
  }

  [[nodiscard]] std::vector<AddressMapper::Physical> stripe(
      std::uint64_t logical) const {
    const auto [si, pos] = table[logical % table.size()];
    (void)pos;
    const std::uint64_t lift =
        (logical / table.size()) * layout->units_per_disk();
    std::vector<AddressMapper::Physical> out;
    for (const layout::StripeUnit& u : layout->stripes()[si].units)
      out.push_back({u.disk, lift + u.offset});
    return out;
  }

  const Layout* layout;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> table;
};

/// Edge addresses: logical 0, the last logical, the first and last data
/// unit on each disk (within iteration 0), and both sides of every
/// iteration boundary.
std::vector<std::uint64_t> edge_addresses(const NaiveMapper& naive,
                                          std::uint32_t iterations) {
  const std::uint64_t d = naive.data_units();
  std::map<std::uint32_t, std::uint64_t> first_on_disk, last_on_disk;
  for (std::uint64_t l = 0; l < d; ++l) {
    const auto where = naive.map(l);
    if (!first_on_disk.count(where.disk)) first_on_disk[where.disk] = l;
    last_on_disk[where.disk] = l;
  }
  std::vector<std::uint64_t> edges;
  for (const auto& [disk, l] : first_on_disk) edges.push_back(l);
  for (const auto& [disk, l] : last_on_disk) edges.push_back(l);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    edges.push_back(it * d);            // first logical of the iteration
    edges.push_back(it * d + (d - 1));  // last logical of the iteration
  }
  return edges;
}

void check_logical(const CompiledMapper& compiled, const AddressMapper& ref,
                   const NaiveMapper& naive, std::uint64_t logical) {
  SCOPED_TRACE("logical " + std::to_string(logical));
  const auto naive_map = naive.map(logical);
  EXPECT_EQ(compiled.map(logical), naive_map);
  EXPECT_EQ(ref.map(logical), naive_map);

  const auto naive_parity = naive.parity(logical);
  EXPECT_EQ(compiled.parity_of(logical), naive_parity);
  EXPECT_EQ(ref.parity_of(logical), naive_parity);

  const auto naive_stripe = naive.stripe(logical);
  const auto ref_stripe = ref.stripe_of(logical);
  std::vector<CompiledMapper::Physical> compiled_stripe(
      compiled.max_stripe_size());
  const std::uint32_t n =
      compiled.stripe_of(logical, compiled_stripe);
  ASSERT_EQ(n, naive_stripe.size());
  ASSERT_EQ(ref_stripe.size(), naive_stripe.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(compiled_stripe[i], naive_stripe[i]);
    EXPECT_EQ(ref_stripe[i], naive_stripe[i]);
  }

  // Inverse maps agree on data positions.
  EXPECT_EQ(compiled.logical_at(naive_map), logical);
  EXPECT_EQ(ref.logical_at(naive_map), logical);
  EXPECT_EQ(compiled.logical_at(naive_parity), CompiledMapper::kParity);
}

void differential(const Layout& layout, std::uint64_t seed) {
  const AddressMapper ref(layout);
  const CompiledMapper compiled(layout);
  const NaiveMapper naive(layout);
  ASSERT_EQ(compiled.data_units_per_iteration(), naive.data_units());
  ASSERT_EQ(ref.data_units_per_iteration(), naive.data_units());

  constexpr std::uint32_t kIterations = 3;
  for (const std::uint64_t l : edge_addresses(naive, kIterations))
    check_logical(compiled, ref, naive, l);

  std::mt19937_64 rng(seed);
  const std::uint64_t span = naive.data_units() * kIterations;
  std::uniform_int_distribution<std::uint64_t> pick(0, span - 1);
  std::vector<std::uint64_t> batch;
  for (int trial = 0; trial < 256; ++trial) {
    const std::uint64_t l = pick(rng);
    check_logical(compiled, ref, naive, l);
    batch.push_back(l);
  }

  // map_batch must equal element-wise map over the same randomized batch.
  std::vector<CompiledMapper::Physical> out(batch.size());
  compiled.map_batch(batch, out);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(out[i], naive.map(batch[i])) << "batch index " << i;
}

TEST(MapperDifferential, RingLayout) {
  differential(layout::ring_based_layout(13, 4), 1);
}

TEST(MapperDifferential, Raid5) { differential(layout::raid5_layout(8, 16), 2); }

TEST(MapperDifferential, Stairway) {
  differential(layout::stairway_layout(8, 10, 3), 3);
}

TEST(MapperDifferential, EveryEngineBuilderAtOnePoint) {
  const auto& planner = engine::ConstructionPlanner::default_planner();
  std::uint64_t seed = 100;
  for (const auto& builder : planner.builders()) {
    for (const core::ArraySpec spec :
         {core::ArraySpec{17, 5}, core::ArraySpec{17, 17}}) {
      const auto plan = builder->plan(spec, {});
      if (!plan || plan->units_per_disk > 500) continue;
      SCOPED_TRACE(std::string(builder->name()));
      differential(builder->build(*plan).layout, ++seed);
    }
  }
}

}  // namespace
}  // namespace pdl
