#include "layout/mapping.hpp"

#include <gtest/gtest.h>

#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"

namespace pdl::layout {
namespace {

TEST(AddressMapper, RejectsInvalidLayouts) {
  Layout holey(3, 2);
  holey.append_stripe({0, 1, 2}, 0);
  EXPECT_THROW(AddressMapper m(holey), std::invalid_argument);
}

TEST(AddressMapper, DataUnitsExcludeParity) {
  const Layout l = raid5_layout(4, 4);  // 16 units, 4 parity
  const AddressMapper mapper(l);
  EXPECT_EQ(mapper.data_units_per_iteration(), 12u);
  EXPECT_EQ(mapper.units_per_disk(), 4u);
  EXPECT_EQ(mapper.num_disks(), 4u);
}

TEST(AddressMapper, MapInverseRoundTripOneIteration) {
  const Layout l = ring_based_layout(7, 3);
  const AddressMapper mapper(l);
  for (std::uint64_t logical = 0; logical < mapper.data_units_per_iteration();
       ++logical) {
    const auto phys = mapper.map(logical);
    EXPECT_LT(phys.disk, 7u);
    EXPECT_LT(phys.offset, mapper.units_per_disk());
    EXPECT_EQ(mapper.logical_at(phys), logical);
  }
}

TEST(AddressMapper, MultiIterationArithmetic) {
  const Layout l = raid5_layout(4, 4);
  const AddressMapper mapper(l);
  const std::uint64_t d = mapper.data_units_per_iteration();
  for (const std::uint64_t logical : {d, d + 5, 3 * d + 11, 100 * d}) {
    const auto phys = mapper.map(logical);
    const auto base = mapper.map(logical % d);
    EXPECT_EQ(phys.disk, base.disk) << "same disk across iterations";
    EXPECT_EQ(phys.offset % mapper.units_per_disk(), base.offset);
    EXPECT_EQ(phys.offset / mapper.units_per_disk(), logical / d);
    EXPECT_EQ(mapper.logical_at(phys), logical);
  }
}

TEST(AddressMapper, ParityPositionsReportKParity) {
  const Layout l = raid5_layout(4, 4);
  const AddressMapper mapper(l);
  std::uint32_t parity_slots = 0;
  for (DiskId d = 0; d < 4; ++d) {
    for (std::uint32_t o = 0; o < 4; ++o) {
      if (mapper.logical_at({d, o}) == AddressMapper::kParity) ++parity_slots;
    }
  }
  EXPECT_EQ(parity_slots, 4u);
}

TEST(AddressMapper, ParityOfIsInSameStripe) {
  const Layout l = ring_based_layout(8, 3);
  const AddressMapper mapper(l);
  for (std::uint64_t logical = 0; logical < mapper.data_units_per_iteration();
       logical += 7) {
    const auto stripe = mapper.stripe_of(logical);
    const auto parity = mapper.parity_of(logical);
    const auto self = mapper.map(logical);
    bool parity_found = false, self_found = false;
    for (const auto& unit : stripe) {
      if (unit == parity) parity_found = true;
      if (unit == self) self_found = true;
    }
    EXPECT_TRUE(parity_found);
    EXPECT_TRUE(self_found);
    EXPECT_NE(parity, self) << "a data unit is never its own parity";
  }
}

TEST(AddressMapper, StripeOfCrossesDistinctDisks) {
  const Layout l = ring_based_layout(8, 3);
  const AddressMapper mapper(l);
  const auto stripe = mapper.stripe_of(5);
  std::set<DiskId> disks;
  for (const auto& unit : stripe) disks.insert(unit.disk);
  EXPECT_EQ(disks.size(), stripe.size()) << "Condition 1";
  EXPECT_EQ(stripe.size(), 3u);
}

TEST(AddressMapper, ConsecutiveLogicalUnitsFillStripes) {
  // Logical numbering is stripe-major: units 0..k-2 share a stripe.
  const Layout l = raid5_layout(5, 5);
  const AddressMapper mapper(l);
  const auto s0 = mapper.stripe_of(0);
  for (std::uint64_t logical = 1; logical < 4; ++logical) {
    EXPECT_EQ(mapper.stripe_of(logical), s0);
  }
  EXPECT_NE(mapper.stripe_of(4), s0);
}

TEST(AddressMapper, TableBytesIsPlausible) {
  const Layout l = ring_based_layout(7, 3);
  const AddressMapper mapper(l);
  // At least one entry per slot; bounded by a small constant per slot.
  const std::uint64_t slots = 7ull * mapper.units_per_disk();
  EXPECT_GE(mapper.table_bytes(), slots * 8);
  EXPECT_LE(mapper.table_bytes(), slots * 64);
}

TEST(AddressMapper, LogicalAtRejectsBadDisk) {
  const Layout l = raid5_layout(4, 4);
  const AddressMapper mapper(l);
  EXPECT_THROW((void)mapper.logical_at({9, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::layout
