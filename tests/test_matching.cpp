#include "flow/matching.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pdl::flow {
namespace {

std::size_t matching_size(const std::vector<std::int64_t>& match) {
  std::size_t size = 0;
  std::set<std::int64_t> used;
  for (const auto m : match) {
    if (m >= 0) {
      ++size;
      EXPECT_TRUE(used.insert(m).second) << "right vertex matched twice";
    }
  }
  return size;
}

TEST(Matching, PerfectMatchingExists) {
  const std::vector<std::vector<std::uint32_t>> adj = {
      {0, 1}, {0, 2}, {1, 2}};
  const auto match = max_bipartite_matching(adj, 3);
  EXPECT_EQ(matching_size(match), 3u);
}

TEST(Matching, AugmentingPathRequired) {
  // Greedy (0->0, 1->?) fails; augmentation finds 0->1, 1->0.
  const std::vector<std::vector<std::uint32_t>> adj = {{0, 1}, {0}};
  const auto match = max_bipartite_matching(adj, 2);
  EXPECT_EQ(matching_size(match), 2u);
  EXPECT_EQ(match[1], 0);
  EXPECT_EQ(match[0], 1);
}

TEST(Matching, DeficientGraph) {
  // Three left vertices all adjacent only to right vertex 0.
  const std::vector<std::vector<std::uint32_t>> adj = {{0}, {0}, {0}};
  const auto match = max_bipartite_matching(adj, 1);
  EXPECT_EQ(matching_size(match), 1u);
}

TEST(Matching, EmptyCases) {
  EXPECT_TRUE(max_bipartite_matching({}, 5).empty());
  const std::vector<std::vector<std::uint32_t>> adj = {{}};
  const auto match = max_bipartite_matching(adj, 3);
  EXPECT_EQ(match[0], -1);
}

TEST(Matching, HallViolatorDetected) {
  // Left {0,1,2} all map into right {0,1}: max matching 2.
  const std::vector<std::vector<std::uint32_t>> adj = {{0, 1}, {0, 1}, {0, 1}};
  EXPECT_EQ(matching_size(max_bipartite_matching(adj, 2)), 2u);
}

TEST(Matching, LargeRegularGraphIsPerfect) {
  // 100x100, left i adjacent to {i, i+1, i+2 mod 100}: 3-regular bipartite
  // graphs always have perfect matchings.
  std::vector<std::vector<std::uint32_t>> adj(100);
  for (std::uint32_t i = 0; i < 100; ++i) {
    adj[i] = {i, (i + 1) % 100, (i + 2) % 100};
  }
  EXPECT_EQ(matching_size(max_bipartite_matching(adj, 100)), 100u);
}

}  // namespace
}  // namespace pdl::flow
