#include "layout/metrics.hpp"

#include <gtest/gtest.h>

namespace pdl::layout {
namespace {

// The paper's Figure 2 layout: v = 4 disks, k = 3, built from the complete
// design on 4 points with 3-element blocks.
Layout figure2_layout() {
  Layout l(4, 3);
  l.append_stripe({0, 1, 2}, 2);  // parity on disk 2
  l.append_stripe({0, 1, 3}, 2);  // parity on disk 3
  l.append_stripe({0, 2, 3}, 0);  // parity on disk 0
  l.append_stripe({1, 2, 3}, 0);  // parity on disk 1
  return l;
}

TEST(Metrics, Figure2LayoutIsPerfectlyBalanced) {
  const auto m = compute_metrics(figure2_layout());
  EXPECT_EQ(m.num_disks, 4u);
  EXPECT_EQ(m.units_per_disk, 3u);
  EXPECT_EQ(m.num_stripes, 4u);
  EXPECT_EQ(m.min_stripe_size, 3u);
  EXPECT_EQ(m.max_stripe_size, 3u);
  // One parity unit per disk.
  EXPECT_EQ(m.min_parity_units, 1u);
  EXPECT_EQ(m.max_parity_units, 1u);
  EXPECT_DOUBLE_EQ(m.max_parity_overhead, 1.0 / 3.0);
  // Every pair of disks shares exactly lambda = 2 stripes.
  EXPECT_EQ(m.min_recon_units, 2u);
  EXPECT_EQ(m.max_recon_units, 2u);
  EXPECT_DOUBLE_EQ(m.max_recon_workload, 2.0 / 3.0);
  EXPECT_EQ(m.table_entries(), 12u);
}

TEST(Metrics, ReconstructionMatrixIsSymmetricForEqualSizedStripes) {
  const auto matrix = reconstruction_matrix(figure2_layout());
  for (std::uint32_t a = 0; a < 4; ++a) {
    EXPECT_EQ(matrix[a * 4 + a], 0u);
    for (std::uint32_t b = 0; b < 4; ++b) {
      EXPECT_EQ(matrix[a * 4 + b], matrix[b * 4 + a]);
    }
  }
}

TEST(Metrics, DetectsImbalancedParity) {
  Layout l(3, 2);
  l.append_stripe({0, 1, 2}, 0);
  l.append_stripe({0, 1, 2}, 0);  // both parity units on disk 0
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.max_parity_units, 2u);
  EXPECT_EQ(m.min_parity_units, 0u);
  EXPECT_DOUBLE_EQ(m.max_parity_overhead, 1.0);
}

TEST(Metrics, DetectsImbalancedReconstruction) {
  // Disks 0,1 share two stripes; disks 0,2 share one.
  Layout l(4, 2);
  l.append_stripe({0, 1}, 0);
  l.append_stripe({0, 1}, 1);
  l.append_stripe({2, 3}, 0);
  l.append_stripe({2, 3}, 1);
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.max_recon_units, 2u);
  EXPECT_EQ(m.min_recon_units, 0u);
}

TEST(Metrics, MixedStripeSizes) {
  Layout l(3, 2);
  l.append_stripe({0, 1, 2}, 0);
  l.append_stripe({0, 1}, 0);
  l.append_stripe({2}, 0);
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.min_stripe_size, 1u);
  EXPECT_EQ(m.max_stripe_size, 3u);
}

TEST(Metrics, ToStringMentionsKeyNumbers) {
  const auto m = compute_metrics(figure2_layout());
  const std::string s = m.to_string();
  EXPECT_NE(s.find("v=4"), std::string::npos);
  EXPECT_NE(s.find("size=3"), std::string::npos);
}

TEST(Metrics, RenderLayoutShowsGrid) {
  const std::string grid = render_layout(figure2_layout());
  // 3 offset rows plus a header.
  EXPECT_NE(grid.find("disk0"), std::string::npos);
  EXPECT_NE(grid.find("S0.P"), std::string::npos);
  EXPECT_NE(grid.find("S0.D"), std::string::npos);
  // Figure 2's stripe 0 has parity on disk 2.
  EXPECT_NE(grid.find("u0"), std::string::npos);
}

TEST(Metrics, RenderLayoutShowsHoles) {
  Layout l(2, 2);
  l.append_stripe({0, 1}, 0);
  const std::string grid = render_layout(l);
  EXPECT_NE(grid.find("-"), std::string::npos);
}

}  // namespace
}  // namespace pdl::layout
