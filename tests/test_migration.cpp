#include "layout/migration.hpp"

#include <gtest/gtest.h>

#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

namespace pdl::layout {
namespace {

TEST(Migration, IdenticalLayoutsMoveNothing) {
  const auto layout = ring_based_layout(9, 3);
  const auto plan = plan_migration(layout, layout);
  EXPECT_EQ(plan.moved_units, 0u);
  EXPECT_DOUBLE_EQ(plan.moved_fraction(), 0.0);
  EXPECT_GT(plan.compared_units, 0u);
}

TEST(Migration, GrowingRaid5MovesMostData) {
  // Restriping RAID5 from 5 to 6 disks reshuffles nearly everything:
  // stripe boundaries change, so unit positions shift.
  const auto plan = plan_migration(raid5_layout(5, 12), raid5_layout(6, 12));
  EXPECT_GT(plan.moved_fraction(), 0.5);
}

TEST(Migration, WritesPerDiskAccountsMovedUnits) {
  const auto from = raid5_layout(5, 12);
  const auto to = raid5_layout(6, 12);
  const auto plan = plan_migration(from, to);
  std::uint64_t writes = 0;
  for (const auto w : plan.writes_per_disk) writes += w;
  EXPECT_EQ(writes, plan.moved_units);
  EXPECT_EQ(plan.writes_per_disk.size(), 6u);
  // The added disk receives some of the data.
  EXPECT_GT(plan.writes_per_disk[5], 0u);
}

TEST(Migration, ShrinkingRejected) {
  EXPECT_THROW(plan_migration(raid5_layout(6, 6), raid5_layout(5, 5)),
               std::invalid_argument);
}

TEST(Migration, StairwayReplanFractionIsMeasurable) {
  // Extending v=10 -> v=11 by replanning the stairway from the same base
  // q=8: quantifies the Section 5 "extendible layouts" open problem.
  const auto from = stairway_layout(8, 10, 3);
  const auto to = stairway_layout(8, 11, 3);
  const auto plan = plan_migration(from, to);
  EXPECT_GT(plan.compared_units, 0u);
  // Some data moves (the layouts differ)...
  EXPECT_GT(plan.moved_units, 0u);
  // ...but the plan is well-formed: moved <= compared.
  EXPECT_LE(plan.moved_units, plan.compared_units);
}

TEST(Migration, ComparedUnitsIsCommonPrefix) {
  const auto small = ring_based_layout(8, 3);   // 8 * 21 * 2/3 data units
  const auto large = ring_based_layout(9, 3);
  const auto plan = plan_migration(small, large);
  // Compared = min of the two data-unit counts.
  EXPECT_EQ(plan.compared_units,
            std::min(static_cast<std::uint64_t>(8 * 21 * 2 / 3 * 1),
                     static_cast<std::uint64_t>(9 * 24 * 2 / 3 * 1)));
}

}  // namespace
}  // namespace pdl::layout
