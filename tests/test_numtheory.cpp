#include "algebra/numtheory.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pdl::algebra {
namespace {

TEST(NumTheory, SmallPrimes) {
  const std::set<std::uint64_t> primes = {2,  3,  5,  7,  11, 13, 17, 19,
                                          23, 29, 31, 37, 41, 43, 47};
  for (std::uint64_t n = 0; n <= 48; ++n) {
    EXPECT_EQ(is_prime(n), primes.count(n) == 1) << "n=" << n;
  }
}

TEST(NumTheory, PrimesAgreeWithTrialDivisionUpTo10000) {
  for (std::uint64_t n = 2; n <= 10'000; ++n) {
    bool composite = false;
    for (std::uint64_t d = 2; d * d <= n; ++d) {
      if (n % d == 0) {
        composite = true;
        break;
      }
    }
    ASSERT_EQ(is_prime(n), !composite) << "n=" << n;
  }
}

TEST(NumTheory, LargePrimes) {
  EXPECT_TRUE(is_prime(1'000'000'007ULL));
  EXPECT_TRUE(is_prime(1'000'000'009ULL));
  EXPECT_FALSE(is_prime(1'000'000'007ULL * 3));
  // Carmichael numbers must be rejected.
  EXPECT_FALSE(is_prime(561));
  EXPECT_FALSE(is_prime(1105));
  EXPECT_FALSE(is_prime(41041));
}

TEST(NumTheory, FactorizeRoundTrip) {
  for (std::uint64_t n = 1; n <= 5'000; ++n) {
    std::uint64_t product = 1;
    std::uint64_t last_prime = 0;
    for (const PrimePower& pp : factorize(n)) {
      EXPECT_TRUE(is_prime(pp.prime));
      EXPECT_GT(pp.prime, last_prime) << "factors must be sorted";
      last_prime = pp.prime;
      product *= pp.value();
    }
    ASSERT_EQ(product, n);
  }
}

TEST(NumTheory, FactorizeRejectsZero) {
  EXPECT_THROW(factorize(0), std::invalid_argument);
}

TEST(NumTheory, PrimePowerDecomposition) {
  EXPECT_EQ(prime_power_decomposition(8), (PrimePower{2, 3}));
  EXPECT_EQ(prime_power_decomposition(81), (PrimePower{3, 4}));
  EXPECT_EQ(prime_power_decomposition(17), (PrimePower{17, 1}));
  EXPECT_EQ(prime_power_decomposition(1).prime, 0u);
  EXPECT_EQ(prime_power_decomposition(12).prime, 0u);
  EXPECT_EQ(prime_power_decomposition(1024), (PrimePower{2, 10}));
}

TEST(NumTheory, IsPrimePowerMatchesFactorize) {
  for (std::uint64_t n = 2; n <= 3'000; ++n) {
    const auto factors = factorize(n);
    EXPECT_EQ(is_prime_power(n), factors.size() == 1) << "n=" << n;
  }
}

TEST(NumTheory, MinPrimePowerFactor) {
  EXPECT_EQ(min_prime_power_factor(12), 3u);   // 4 * 3 -> min 3
  EXPECT_EQ(min_prime_power_factor(72), 8u);   // 8 * 9 -> min 8
  EXPECT_EQ(min_prime_power_factor(30), 2u);   // 2 * 3 * 5
  EXPECT_EQ(min_prime_power_factor(49), 49u);  // prime power: itself
  EXPECT_EQ(min_prime_power_factor(97), 97u);
  EXPECT_EQ(min_prime_power_factor(100), 4u);  // 4 * 25
  EXPECT_THROW((void)min_prime_power_factor(1), std::invalid_argument);
}

TEST(NumTheory, PrimePowerNeighbors) {
  EXPECT_EQ(largest_prime_power_leq(100), 97u);
  EXPECT_EQ(largest_prime_power_leq(128), 128u);
  EXPECT_EQ(largest_prime_power_leq(1), 0u);
  EXPECT_EQ(smallest_prime_power_geq(100), 101u);
  EXPECT_EQ(smallest_prime_power_geq(124), 125u);
  EXPECT_EQ(smallest_prime_power_geq(2), 2u);
}

TEST(NumTheory, PrimePowersInRange) {
  const auto pps = prime_powers_in(2, 32);
  const std::vector<std::uint64_t> expected = {2,  3,  4,  5,  7,  8,  9, 11,
                                               13, 16, 17, 19, 23, 25, 27, 29,
                                               31, 32};
  EXPECT_EQ(pps, expected);
}

TEST(NumTheory, EulerPhi) {
  EXPECT_EQ(euler_phi(1), 1u);
  EXPECT_EQ(euler_phi(12), 4u);
  EXPECT_EQ(euler_phi(97), 96u);
  EXPECT_EQ(euler_phi(100), 40u);
  // Multiplicativity spot check.
  EXPECT_EQ(euler_phi(35), euler_phi(5) * euler_phi(7));
}

TEST(NumTheory, MulmodPowmodLarge) {
  const std::uint64_t m = 0xffffffffffffffc5ULL;  // large prime
  EXPECT_EQ(mulmod(m - 1, m - 1, m), 1u);         // (-1)^2 = 1
  EXPECT_EQ(powmod(2, 10, 1'000'000), 1024u);
  // Fermat's little theorem for the large prime.
  EXPECT_EQ(powmod(123456789, m - 1, m), 1u);
}

TEST(NumTheory, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
}

// Property sweep: M(v) <= every prime-power factor, and divides v's shape.
class MinPrimePowerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinPrimePowerSweep, IsAPrimePowerFactorLowerBound) {
  const std::uint64_t v = GetParam();
  const std::uint64_t m = min_prime_power_factor(v);
  EXPECT_TRUE(is_prime_power(m));
  for (const PrimePower& pp : factorize(v)) {
    EXPECT_LE(m, pp.value());
  }
  // M(v) = v exactly when v is a prime power.
  EXPECT_EQ(m == v, is_prime_power(v));
}

INSTANTIATE_TEST_SUITE_P(Values, MinPrimePowerSweep,
                         ::testing::Values(2, 4, 6, 12, 24, 36, 60, 97, 100,
                                           128, 210, 243, 360, 720, 1000,
                                           1024, 2310, 4096, 9973, 10000));

}  // namespace
}  // namespace pdl::algebra
