#include "layout/parallelism.hpp"

#include <gtest/gtest.h>

#include "layout/bibd_layout.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

#include "design/catalog.hpp"

namespace pdl::layout {
namespace {

TEST(Condition5, StripeMajorNumberingIsFullyContiguous) {
  // The AddressMapper numbers data units stripe-major, so every layout
  // built by this library satisfies the Large Write Optimization exactly.
  for (const auto& layout :
       {raid5_layout(5, 10), ring_based_layout(9, 3),
        stairway_layout(8, 10, 3)}) {
    EXPECT_DOUBLE_EQ(large_write_contiguity(layout), 1.0);
  }
}

TEST(Condition6, Raid5HasPerfectWindowParallelism) {
  // RAID5's v-1 data units per stripe roll across all disks; windows of
  // v-1 hit v-1 distinct disks.
  const auto layout = raid5_layout(8, 8);
  EXPECT_EQ(min_window_parallelism(layout, 7), 7u);
}

TEST(Condition6, WindowBounds) {
  for (const auto& layout : {ring_based_layout(9, 3), raid5_layout(6, 6)}) {
    const auto v = layout.num_disks();
    const auto min_par = min_window_parallelism(layout);
    const auto mean_par = mean_window_parallelism(layout);
    EXPECT_GE(min_par, 1u);
    EXPECT_LE(min_par, v);
    EXPECT_GE(mean_par, static_cast<double>(min_par));
    EXPECT_LE(mean_par, static_cast<double>(v));
  }
}

TEST(Condition6, DeclusteredLayoutsLoseSomeParallelism) {
  // Stockmeyer's observation: BIBD-based layouts do not generally achieve
  // maximal parallelism -- a window of v consecutive units spans v/(k-1)
  // stripes whose disk sets may overlap.
  const auto ring = ring_based_layout(9, 3);
  EXPECT_LT(min_window_parallelism(ring), 9u);
  // But parallelism is still substantially above a single stripe's k.
  EXPECT_GT(mean_window_parallelism(ring), 3.0);
}

TEST(Condition6, SmallWindowsSaturate) {
  // A window of k-1 units lies within one stripe: exactly k-1 disks.
  const auto ring = ring_based_layout(9, 4);
  EXPECT_EQ(min_window_parallelism(ring, 3), 3u);
}

TEST(Condition6, WindowLargerThanArrayIsCappedByV) {
  const auto layout = raid5_layout(4, 8);
  EXPECT_LE(min_window_parallelism(layout, 24), 4u);
  EXPECT_EQ(min_window_parallelism(layout, 24), 4u);
}

}  // namespace
}  // namespace pdl::layout
