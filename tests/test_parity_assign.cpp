#include "flow/parity_assign.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace pdl::flow {
namespace {

using Stripes = std::vector<std::vector<std::uint32_t>>;

// Random fixed-size stripes over `v` disks, each stripe hitting distinct
// disks.
Stripes random_stripes(std::uint32_t v, std::uint32_t k, std::size_t count,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Stripes stripes;
  std::vector<std::uint32_t> disks(v);
  std::iota(disks.begin(), disks.end(), 0);
  for (std::size_t s = 0; s < count; ++s) {
    std::shuffle(disks.begin(), disks.end(), rng);
    stripes.emplace_back(disks.begin(), disks.begin() + k);
  }
  return stripes;
}

TEST(ParityLoads, ExactRationalArithmetic) {
  // Two stripes of size 3 and one of size 2 over 4 disks.
  const Stripes stripes = {{0, 1, 2}, {1, 2, 3}, {0, 3}};
  const auto loads = parity_loads(stripes, 4);
  EXPECT_EQ(loads.denominator, 6u);
  // L(0) = 1/3 + 1/2 = 5/6; L(1) = 2/3 = 4/6.
  EXPECT_EQ(loads.numerators[0], 5u);
  EXPECT_EQ(loads.numerators[1], 4u);
  EXPECT_EQ(loads.floor_of(0), 0u);
  EXPECT_EQ(loads.ceil_of(0), 1u);
}

TEST(ParityAssign, EveryStripeGetsExactlyOneParityUnit) {
  const Stripes stripes = random_stripes(10, 4, 57, 1);
  const auto assignment = assign_parity_balanced(stripes, 10);
  ASSERT_EQ(assignment.chosen.size(), stripes.size());
  for (const auto& chosen : assignment.chosen) {
    ASSERT_EQ(chosen.size(), 1u);
  }
  // per_disk must sum to the number of stripes.
  std::uint64_t total = 0;
  for (const auto c : assignment.per_disk) total += c;
  EXPECT_EQ(total, stripes.size());
}

// Theorem 14: every disk holds floor(L(d)) or ceil(L(d)).
class Theorem14Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem14Sweep, PerDiskCountsWithinFloorCeil) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  const std::uint32_t v = 5 + static_cast<std::uint32_t>(seed % 13);
  // Mixed stripe sizes to exercise the rational arithmetic.
  Stripes stripes;
  std::vector<std::uint32_t> disks(v);
  std::iota(disks.begin(), disks.end(), 0);
  const std::size_t count = 20 + seed % 50;
  for (std::size_t s = 0; s < count; ++s) {
    std::shuffle(disks.begin(), disks.end(), rng);
    const std::uint32_t k =
        2 + static_cast<std::uint32_t>(rng() % (v - 2));
    stripes.emplace_back(disks.begin(), disks.begin() + k);
  }
  const auto loads = parity_loads(stripes, v);
  const auto assignment = assign_parity_balanced(stripes, v);
  for (std::uint32_t d = 0; d < v; ++d) {
    EXPECT_GE(assignment.per_disk[d], loads.floor_of(d)) << "disk " << d;
    EXPECT_LE(assignment.per_disk[d], loads.ceil_of(d)) << "disk " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem14Sweep,
                         ::testing::Range<std::uint64_t>(0, 20));

// Regular fixed-size stripes: every disk participates in exactly b*k/v
// stripes (the layout setting Corollary 16 assumes: each disk has exactly
// r units).  Requires v | b*k.
Stripes regular_stripes(std::uint32_t v, std::uint32_t k, std::size_t b) {
  EXPECT_EQ((b * k) % v, 0u) << "test configuration must be regular";
  Stripes stripes;
  for (std::size_t s = 0; s < b; ++s) {
    std::vector<std::uint32_t> stripe;
    for (std::uint32_t j = 0; j < k; ++j) {
      stripe.push_back(static_cast<std::uint32_t>((s * k + j) % v));
    }
    stripes.push_back(std::move(stripe));
  }
  return stripes;
}

// Corollary 16: fixed stripe size over size-r disks -> per-disk parity
// counts within {floor(b/v), ceil(b/v)}.
class Corollary16Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::size_t>> {};

TEST_P(Corollary16Sweep, FixedSizeCountsWithinOne) {
  const auto [v, k, b] = GetParam();
  const Stripes stripes = regular_stripes(v, k, b);
  const auto assignment = assign_parity_balanced(stripes, v);
  const std::uint64_t lo = b / v;
  const std::uint64_t hi = (b + v - 1) / v;
  for (std::uint32_t d = 0; d < v; ++d) {
    EXPECT_GE(assignment.per_disk[d], lo);
    EXPECT_LE(assignment.per_disk[d], hi);
  }
}

// All cases satisfy v | b*k; half have v | b (perfect balance possible).
INSTANTIATE_TEST_SUITE_P(
    Cases, Corollary16Sweep,
    ::testing::Values(std::tuple{6u, 3u, 20u}, std::tuple{6u, 3u, 24u},
                      std::tuple{10u, 4u, 55u}, std::tuple{10u, 4u, 60u},
                      std::tuple{7u, 3u, 7u}, std::tuple{13u, 5u, 13u},
                      std::tuple{8u, 2u, 28u}, std::tuple{15u, 5u, 21u}));

TEST(ParityAssign, Corollary17PerfectBalanceIffDivisible) {
  // b = 20 stripes over v = 5 disks (v | b): perfectly balanced, 4 each.
  {
    const Stripes stripes = regular_stripes(5, 3, 20);
    const auto a = assign_parity_balanced(stripes, 5);
    for (const auto c : a.per_disk) EXPECT_EQ(c, 4u);
  }
  // b = 21 over v = 6 (v | bk but not v | b): counts must be 3 or 4, with
  // exactly b mod v = 3 disks at the ceiling.
  {
    const Stripes stripes = regular_stripes(6, 2, 21);
    const auto a = assign_parity_balanced(stripes, 6);
    std::uint32_t threes = 0, fours = 0;
    for (const auto c : a.per_disk) {
      EXPECT_TRUE(c == 3 || c == 4);
      c == 3 ? ++threes : ++fours;
    }
    EXPECT_EQ(fours, 3u);
    EXPECT_EQ(threes, 3u);
  }
}

TEST(ParityAssign, LcmConjectureFormula) {
  EXPECT_EQ(copies_for_perfect_balance(7, 7), 1u);
  EXPECT_EQ(copies_for_perfect_balance(7, 14), 2u);
  EXPECT_EQ(copies_for_perfect_balance(39, 13), 1u);
  EXPECT_EQ(copies_for_perfect_balance(20, 16), 4u);
  EXPECT_EQ(copies_for_perfect_balance(9, 6), 2u);
  EXPECT_THROW((void)copies_for_perfect_balance(0, 5), std::invalid_argument);
}

TEST(ParityAssign, GeneralizedDistinguishedUnits) {
  // Select 2 distinguished units per stripe (the distributed-sparing
  // extension after Theorem 14).
  const Stripes stripes = random_stripes(9, 4, 30, 99);
  const std::vector<std::uint32_t> cs(stripes.size(), 2);
  const auto loads = parity_loads(stripes, 9, cs);
  const auto assignment = assign_distinguished_balanced(stripes, 9, cs);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    ASSERT_EQ(assignment.chosen[s].size(), 2u);
    // Chosen positions must be distinct.
    EXPECT_NE(assignment.chosen[s][0], assignment.chosen[s][1]);
  }
  for (std::uint32_t d = 0; d < 9; ++d) {
    total += assignment.per_disk[d];
    EXPECT_GE(assignment.per_disk[d], loads.floor_of(d));
    EXPECT_LE(assignment.per_disk[d], loads.ceil_of(d));
  }
  EXPECT_EQ(total, 2 * stripes.size());
}

TEST(ParityAssign, HeterogeneousPerStripeCounts) {
  const Stripes stripes = {{0, 1, 2, 3}, {1, 2, 4}, {0, 3, 4}, {2, 3, 4}};
  const std::vector<std::uint32_t> cs = {2, 1, 1, 3};
  const auto assignment = assign_distinguished_balanced(stripes, 5, cs);
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    EXPECT_EQ(assignment.chosen[s].size(), cs[s]);
  }
}

TEST(ParityAssign, InvalidInputs) {
  const Stripes stripes = {{0, 1}, {1, 2}};
  EXPECT_THROW(parity_loads(stripes, 2), std::invalid_argument);  // disk 2
  const std::vector<std::uint32_t> bad_cs = {3, 1};  // 3 > stripe size 2
  EXPECT_THROW(assign_distinguished_balanced(stripes, 3, bad_cs),
               std::invalid_argument);
  const std::vector<std::uint32_t> wrong_len = {1};
  EXPECT_THROW(assign_distinguished_balanced(stripes, 3, wrong_len),
               std::invalid_argument);
  const Stripes with_empty = {{}};
  EXPECT_THROW(parity_loads(with_empty, 3), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::flow
