#include "algebra/polynomial.hpp"

#include <gtest/gtest.h>

namespace pdl::algebra {
namespace {

TEST(Polynomial, NormalizesTrailingZeros) {
  const Polynomial p(5, {1, 2, 0, 0});
  EXPECT_EQ(p.degree(), 1);
  EXPECT_EQ(p.coeff(0), 1u);
  EXPECT_EQ(p.coeff(1), 2u);
  EXPECT_EQ(p.coeff(7), 0u);
}

TEST(Polynomial, ZeroPolynomial) {
  const Polynomial z(3);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(Polynomial(3, {0, 0, 0}), z);
}

TEST(Polynomial, AdditionAndSubtraction) {
  const Polynomial a(3, {1, 2, 1});  // 1 + 2x + x^2
  const Polynomial b(3, {2, 1, 2});  // 2 + x + 2x^2
  EXPECT_EQ(a + b, Polynomial(3, {0, 0, 0}));  // coefficients cancel mod 3
  EXPECT_EQ(a - a, Polynomial(3));
  EXPECT_EQ((a - b) + b, a);
}

TEST(Polynomial, MultiplicationKnownProduct) {
  // (x + 1)^2 = x^2 + 2x + 1 over Z_5.
  const Polynomial x_plus_1(5, {1, 1});
  EXPECT_EQ(x_plus_1 * x_plus_1, Polynomial(5, {1, 2, 1}));
  // Over Z_2, (x+1)^2 = x^2 + 1.
  const Polynomial f(2, {1, 1});
  EXPECT_EQ(f * f, Polynomial(2, {1, 0, 1}));
}

TEST(Polynomial, MultiplicationByZero) {
  const Polynomial a(7, {3, 1, 4});
  EXPECT_TRUE((a * Polynomial(7)).is_zero());
}

TEST(Polynomial, ModEuclidean) {
  // x^2 + 1 mod (x + 1) over Z_2: remainder is 0 since x^2+1 = (x+1)^2.
  EXPECT_TRUE(Polynomial(2, {1, 0, 1}).mod(Polynomial(2, {1, 1})).is_zero());
  // x^3 mod (x^2 + 1) over Z_5: x^3 = x * (x^2+1) - x -> remainder -x = 4x.
  EXPECT_EQ(Polynomial(5, {0, 0, 0, 1}).mod(Polynomial(5, {1, 0, 1})),
            Polynomial(5, {0, 4}));
}

TEST(Polynomial, ModRejectsZeroDivisor) {
  EXPECT_THROW(Polynomial(3, {1}).mod(Polynomial(3)), std::invalid_argument);
}

TEST(Polynomial, PowmodMatchesRepeatedMultiplication) {
  const Polynomial x(7, {0, 1});
  const Polynomial mod(7, {3, 1, 1});  // x^2 + x + 3
  Polynomial expected = Polynomial::constant(7, 1);
  for (int i = 0; i < 11; ++i) expected = (expected * x).mod(mod);
  EXPECT_EQ(x.powmod(11, mod), expected);
}

TEST(Polynomial, GcdKnownValues) {
  // gcd((x+1)(x+2), (x+1)(x+3)) = x+1 over Z_5.
  const Polynomial a = Polynomial(5, {1, 1}) * Polynomial(5, {2, 1});
  const Polynomial b = Polynomial(5, {1, 1}) * Polynomial(5, {3, 1});
  EXPECT_EQ(Polynomial::gcd(a, b), Polynomial(5, {1, 1}));
  // Coprime polynomials have gcd 1.
  EXPECT_EQ(Polynomial::gcd(Polynomial(5, {1, 1}), Polynomial(5, {2, 1})),
            Polynomial::constant(5, 1));
}

TEST(Polynomial, MonicScalesLeadingCoefficient) {
  const Polynomial p(7, {2, 4, 3});
  const Polynomial m = p.monic();
  EXPECT_EQ(m.coeff(2), 1u);
  // monic(p) = (1/3) * p; 3 * 5 = 15 = 1 mod 7.
  EXPECT_EQ(m, Polynomial(7, {2 * 5 % 7, 4 * 5 % 7, 1}));
}

TEST(Polynomial, Evaluate) {
  const Polynomial p(11, {1, 2, 3});  // 1 + 2x + 3x^2
  EXPECT_EQ(p.evaluate(0), 1u);
  EXPECT_EQ(p.evaluate(1), 6u);
  EXPECT_EQ(p.evaluate(2), (1 + 4 + 12) % 11);
}

TEST(Polynomial, IrreducibilityKnownCases) {
  // x^2 + x + 1 is irreducible over Z_2; x^2 + 1 = (x+1)^2 is not.
  EXPECT_TRUE(is_irreducible(Polynomial(2, {1, 1, 1})));
  EXPECT_FALSE(is_irreducible(Polynomial(2, {1, 0, 1})));
  // x^2 + 1 is irreducible over Z_3 (no root: 0,1,2 -> 1,2,2).
  EXPECT_TRUE(is_irreducible(Polynomial(3, {1, 0, 1})));
  // x^2 - 1 factors everywhere.
  EXPECT_FALSE(is_irreducible(Polynomial(7, {6, 0, 1})));
  // Degree-1 polynomials are always irreducible.
  EXPECT_TRUE(is_irreducible(Polynomial(5, {3, 1})));
  // x^3 + x + 1 over Z_2 (classic GF(8) modulus).
  EXPECT_TRUE(is_irreducible(Polynomial(2, {1, 1, 0, 1})));
}

TEST(Polynomial, IrreducibleHasNoRootsDegree2and3) {
  // For degrees 2 and 3, irreducible <=> no roots; cross-check the Rabin
  // test against exhaustive root search.
  for (std::uint32_t p : {2u, 3u, 5u, 7u}) {
    for (std::uint32_t c0 = 0; c0 < p; ++c0) {
      for (std::uint32_t c1 = 0; c1 < p; ++c1) {
        const Polynomial f(p, {c0, c1, 1});
        bool has_root = false;
        for (std::uint32_t x = 0; x < p; ++x) {
          if (f.evaluate(x) == 0) has_root = true;
        }
        ASSERT_EQ(is_irreducible(f), !has_root)
            << "p=" << p << " f=" << f.to_string();
      }
    }
  }
}

class FindIrreducibleSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(FindIrreducibleSweep, FindsAnIrreducibleOfRightDegree) {
  const auto [p, degree] = GetParam();
  const Polynomial f = find_irreducible(p, degree);
  EXPECT_EQ(f.degree(), static_cast<int>(degree));
  EXPECT_EQ(f.coeff(degree), 1u) << "must be monic";
  EXPECT_TRUE(is_irreducible(f)) << f.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FindIrreducibleSweep,
    ::testing::Values(std::pair{2u, 1u}, std::pair{2u, 2u}, std::pair{2u, 3u},
                      std::pair{2u, 4u}, std::pair{2u, 8u}, std::pair{3u, 2u},
                      std::pair{3u, 3u}, std::pair{3u, 4u}, std::pair{5u, 2u},
                      std::pair{5u, 3u}, std::pair{7u, 2u}, std::pair{11u, 2u},
                      std::pair{13u, 2u}));

TEST(Polynomial, ToStringReadable) {
  EXPECT_EQ(Polynomial(3, {1, 2, 1}).to_string(), "x^2 + 2x + 1 (mod 3)");
  EXPECT_EQ(Polynomial(3).to_string(), "0 (mod 3)");
}

}  // namespace
}  // namespace pdl::algebra
