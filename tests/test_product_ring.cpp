#include "algebra/product_ring.hpp"

#include <gtest/gtest.h>

#include "algebra/gf.hpp"
#include "algebra/numtheory.hpp"
#include "algebra/zmod.hpp"

namespace pdl::algebra {
namespace {

std::unique_ptr<const Ring> gf(Elem q) {
  return std::make_unique<GaloisField>(q);
}

TEST(ProductRing, ComposeDecomposeRoundTrip) {
  std::vector<std::unique_ptr<const Ring>> comps;
  comps.push_back(gf(4));
  comps.push_back(gf(3));
  comps.push_back(gf(5));
  const ProductRing ring(std::move(comps));
  EXPECT_EQ(ring.order(), 60u);
  for (Elem a = 0; a < 60; ++a) {
    const auto parts = ring.decompose(a);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_LT(parts[0], 4u);
    EXPECT_LT(parts[1], 3u);
    EXPECT_LT(parts[2], 5u);
    EXPECT_EQ(ring.compose(parts), a);
  }
}

TEST(ProductRing, SatisfiesRingAxiomsSmall) {
  std::vector<std::unique_ptr<const Ring>> comps;
  comps.push_back(gf(2));
  comps.push_back(gf(3));
  const ProductRing ring(std::move(comps));  // order 6, iso to Z_6
  EXPECT_TRUE(check_ring_axioms(ring).empty());
}

TEST(ProductRing, AxiomsWithExtensionFieldComponent) {
  std::vector<std::unique_ptr<const Ring>> comps;
  comps.push_back(gf(4));
  comps.push_back(gf(3));
  const ProductRing ring(std::move(comps));  // order 12
  EXPECT_TRUE(check_ring_axioms(ring).empty());
}

TEST(ProductRing, UnitsAreComponentwiseUnits) {
  std::vector<std::unique_ptr<const Ring>> comps;
  comps.push_back(gf(4));
  comps.push_back(gf(5));
  const ProductRing ring(std::move(comps));
  std::uint32_t units = 0;
  for (Elem a = 0; a < ring.order(); ++a) {
    const auto parts = ring.decompose(a);
    const bool expect_unit = parts[0] != 0 && parts[1] != 0;
    ASSERT_EQ(ring.is_unit(a), expect_unit);
    if (ring.is_unit(a)) ++units;
  }
  EXPECT_EQ(units, 3u * 4u);  // (4-1)(5-1)
}

TEST(ProductRing, OperationsAreComponentwise) {
  std::vector<std::unique_ptr<const Ring>> comps;
  comps.push_back(gf(8));
  comps.push_back(gf(9));
  const ProductRing ring(std::move(comps));
  const GaloisField f8(8);
  const GaloisField f9(9);
  for (Elem a = 0; a < ring.order(); a += 5) {
    for (Elem b = 0; b < ring.order(); b += 7) {
      const auto pa = ring.decompose(a);
      const auto pb = ring.decompose(b);
      const auto sum = ring.decompose(ring.add(a, b));
      const auto prod = ring.decompose(ring.mul(a, b));
      EXPECT_EQ(sum[0], f8.add(pa[0], pb[0]));
      EXPECT_EQ(sum[1], f9.add(pa[1], pb[1]));
      EXPECT_EQ(prod[0], f8.mul(pa[0], pb[0]));
      EXPECT_EQ(prod[1], f9.mul(pa[1], pb[1]));
    }
  }
}

TEST(ProductRing, Name) {
  std::vector<std::unique_ptr<const Ring>> comps;
  comps.push_back(gf(4));
  comps.push_back(gf(25));
  const ProductRing ring(std::move(comps));
  EXPECT_EQ(ring.name(), "GF(4) x GF(25)");
}

TEST(ProductRing, RejectsEmpty) {
  EXPECT_THROW(ProductRing({}), std::invalid_argument);
}

class MakeRingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MakeRingSweep, ProducesMaximumGeneratorSet) {
  const std::uint64_t v = GetParam();
  const auto [ring, gens] = make_ring_with_generators(v);
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->order(), v);
  EXPECT_EQ(gens.size(), min_prime_power_factor(v))
      << "generator set must achieve the Theorem 2 maximum M(v)";
  EXPECT_TRUE(is_generator_set(*ring, gens));
  // g_0 must be 0 so that tuple position 0 of block (x, y) is x itself.
  EXPECT_EQ(gens[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(Orders, MakeRingSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 9, 10, 12, 15, 20,
                                           30, 36, 49, 60, 72, 100, 144, 210,
                                           1000));

TEST(MakeRing, PrimePowerGivesField) {
  const auto [ring, gens] = make_ring_with_generators(27);
  EXPECT_EQ(gens.size(), 27u);
  EXPECT_EQ(ring->name(), "GF(27)");
  // Every nonzero element is a unit.
  for (Elem a = 1; a < 27; ++a) EXPECT_TRUE(ring->is_unit(a));
}

TEST(MakeRing, RejectsDegenerate) {
  EXPECT_THROW(make_ring_with_generators(0), std::invalid_argument);
  EXPECT_THROW(make_ring_with_generators(1), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::algebra
