// Cross-cutting property tests over every layout family the library can
// produce: structural invariants, mapping round-trips, balance bounds, and
// failure-injection checks on the validators.

#include <gtest/gtest.h>

#include "core/pdl.hpp"

namespace pdl {
namespace {

using layout::Layout;

struct Family {
  std::string name;
  Layout layout;
};

std::vector<Family> all_families() {
  std::vector<Family> families;
  families.push_back({"raid5_7", layout::raid5_layout(7, 14)});
  families.push_back({"raid4_6", layout::raid4_layout(6, 6)});
  families.push_back({"ring_9_3", layout::ring_based_layout(9, 3)});
  families.push_back({"ring_13_4", layout::ring_based_layout(13, 4)});
  families.push_back({"ring_12_3", layout::ring_based_layout(12, 3)});
  families.push_back({"removal_9_4_1", layout::removal_layout(9, 4, 1)});
  families.push_back({"removal_16_9_3", layout::removal_layout(16, 9, 3)});
  families.push_back({"stairway_8_10_3", layout::stairway_layout(8, 10, 3)});
  families.push_back({"stairway_9_13_4", layout::stairway_layout(9, 13, 4)});
  families.push_back(
      {"hg_7_3", layout::holland_gibson_layout(design::build_best_design(7, 3))});
  families.push_back(
      {"flow_16_4",
       layout::flow_balanced_layout(design::make_subfield_design(16, 4), 1)});
  return families;
}

class LayoutFamily : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const Family& family() {
    static const std::vector<Family> families = all_families();
    return families[GetParam()];
  }
};

TEST_P(LayoutFamily, StructurallyValid) {
  EXPECT_TRUE(family().layout.validate().empty()) << family().name;
}

TEST_P(LayoutFamily, MappingRoundTripsEveryDataUnit) {
  const layout::AddressMapper mapper(family().layout);
  for (std::uint64_t l = 0; l < mapper.data_units_per_iteration(); ++l) {
    ASSERT_EQ(mapper.logical_at(mapper.map(l)), l) << family().name;
  }
}

TEST_P(LayoutFamily, EverySlotIsDataOrParityExactlyOnce) {
  const Layout& l = family().layout;
  const layout::AddressMapper mapper(l);
  std::uint64_t data = 0, parity = 0;
  for (layout::DiskId d = 0; d < l.num_disks(); ++d) {
    for (std::uint32_t o = 0; o < l.units_per_disk(); ++o) {
      if (mapper.logical_at({d, o}) == layout::AddressMapper::kParity) {
        ++parity;
      } else {
        ++data;
      }
    }
  }
  EXPECT_EQ(parity, l.num_stripes());
  EXPECT_EQ(data + parity,
            static_cast<std::uint64_t>(l.num_disks()) * l.units_per_disk());
}

TEST_P(LayoutFamily, ParityUnitIsInItsOwnStripe) {
  const Layout& l = family().layout;
  for (const layout::Stripe& st : l.stripes()) {
    const auto& p = st.parity_unit();
    const auto& occ = l.at(p.disk, p.offset);
    EXPECT_EQ(occ.stripe, &st - l.stripes().data());
  }
}

TEST_P(LayoutFamily, ReconstructionMatrixRowSumsMatchStripeSizes) {
  // Sum over survivors of units read when d fails = sum over stripes
  // crossing d of (size - 1).
  const Layout& l = family().layout;
  const auto matrix = layout::reconstruction_matrix(l);
  const std::uint32_t v = l.num_disks();
  std::vector<std::uint64_t> expected(v, 0);
  for (const layout::Stripe& st : l.stripes()) {
    for (const auto& u : st.units) {
      expected[u.disk] += st.units.size() - 1;
    }
  }
  for (std::uint32_t f = 0; f < v; ++f) {
    std::uint64_t row = 0;
    for (std::uint32_t d = 0; d < v; ++d) {
      row += matrix[static_cast<std::size_t>(f) * v + d];
    }
    EXPECT_EQ(row, expected[f]) << family().name << " disk " << f;
  }
}

TEST_P(LayoutFamily, RecoveryPlanIsConsistentWithAnalysis) {
  const Layout& l = family().layout;
  const auto plan = core::plan_recovery(l, 0);
  std::uint64_t total = 0;
  for (const auto& repair : plan.repairs) total += repair.reads.size();
  EXPECT_EQ(total, plan.analysis.total_units) << family().name;
}

TEST_P(LayoutFamily, SerializationRoundTrip) {
  const Layout& original = family().layout;
  const Layout restored =
      layout::parse_layout(layout::serialize_layout(original)).value();
  ASSERT_EQ(restored.num_stripes(), original.num_stripes());
  for (std::size_t s = 0; s < original.num_stripes(); ++s) {
    ASSERT_EQ(restored.stripes()[s].units, original.stripes()[s].units);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, LayoutFamily,
                         ::testing::Range<std::size_t>(0, 11),
                         [](const auto& info) {
                           return all_families()[info.param].name;
                         });

// ---- Failure injection on the validators -------------------------------

TEST(FailureInjection, VerifyBibdCatchesSingleElementCorruption) {
  auto design = design::make_ring_design(9, 3).design;
  ASSERT_TRUE(design::verify_bibd(design).ok);
  // Corrupt one element of one block; the verifier must notice (either a
  // duplicate in the block or replication/pair imbalance).
  for (const std::size_t victim : {0ul, design.blocks.size() / 2}) {
    auto corrupted = design;
    corrupted.blocks[victim][0] =
        (corrupted.blocks[victim][0] + 1) % design.v;
    EXPECT_FALSE(design::verify_bibd(corrupted).ok) << victim;
  }
}

TEST(FailureInjection, Theorem2ExhaustiveOnSmallComposites) {
  // Brute-force confirmation of Theorem 2's "only if" direction: in the
  // canonical ring of order v, NO subset of size M(v)+1 has all pairwise
  // differences invertible.
  for (const std::uint32_t v : {6u, 10u, 12u}) {
    const auto [ring, gens] = algebra::make_ring_with_generators(v);
    const auto m = static_cast<std::uint32_t>(
        algebra::min_prime_power_factor(v));
    // Enumerate all (m+1)-subsets of the ring's elements.
    std::vector<std::uint32_t> idx(m + 1);
    for (std::uint32_t i = 0; i <= m; ++i) idx[i] = i;
    bool found = false;
    while (!found) {
      std::vector<algebra::Elem> subset(idx.begin(), idx.end());
      if (algebra::is_generator_set(*ring, subset)) found = true;
      // Next combination.
      int i = static_cast<int>(m);
      while (i >= 0 && idx[i] == v - (m + 1) + i) --i;
      if (i < 0) break;
      ++idx[i];
      for (std::uint32_t j = i + 1; j <= m; ++j) idx[j] = idx[j - 1] + 1;
    }
    EXPECT_FALSE(found) << "v=" << v
                        << ": found a generator set larger than M(v)";
  }
}

TEST(FailureInjection, MetricsDetectParityPileup) {
  // Move every stripe's parity to position 0; metrics must show imbalance
  // for layouts where position 0 is disk-correlated.
  auto layout = layout::raid4_layout(5, 10);
  const auto m = layout::compute_metrics(layout);
  EXPECT_GT(m.max_parity_units, m.min_parity_units);
}

}  // namespace
}  // namespace pdl
