#include "layout/raid.hpp"

#include <gtest/gtest.h>

#include "layout/metrics.hpp"

namespace pdl::layout {
namespace {

TEST(Raid5, RotatedParityPerfectlyBalancedWhenRowsMultipleOfV) {
  const Layout l = raid5_layout(5, 10);
  EXPECT_EQ(l.num_disks(), 5u);
  EXPECT_EQ(l.units_per_disk(), 10u);
  EXPECT_TRUE(l.validate().empty());
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.min_parity_units, 2u);
  EXPECT_EQ(m.max_parity_units, 2u);
  EXPECT_DOUBLE_EQ(m.max_parity_overhead, 1.0 / 5);
}

TEST(Raid5, ReconstructionReadsEverythingFromEveryDisk) {
  // The k = v extreme: every stripe crosses every disk, so rebuilding one
  // disk reads 100% of every survivor -- the pathology declustering fixes.
  const Layout l = raid5_layout(6, 6);
  const auto m = compute_metrics(l);
  EXPECT_DOUBLE_EQ(m.max_recon_workload, 1.0);
  EXPECT_DOUBLE_EQ(m.min_recon_workload, 1.0);
}

TEST(Raid5, ParityRotatesAcrossRows) {
  const Layout l = raid5_layout(4, 4);
  std::set<DiskId> parity_disks;
  for (const Stripe& st : l.stripes()) {
    parity_disks.insert(st.parity_unit().disk);
  }
  EXPECT_EQ(parity_disks.size(), 4u) << "each disk takes one parity turn";
}

TEST(Raid5, UnevenRowsWithinOne) {
  const Layout l = raid5_layout(4, 6);
  const auto m = compute_metrics(l);
  EXPECT_LE(m.max_parity_units - m.min_parity_units, 1u);
}

TEST(Raid4, AllParityOnLastDisk) {
  const Layout l = raid4_layout(5, 8);
  const auto m = compute_metrics(l);
  EXPECT_EQ(m.max_parity_units, 8u);
  EXPECT_EQ(m.min_parity_units, 0u);
  for (const Stripe& st : l.stripes()) {
    EXPECT_EQ(st.parity_unit().disk, 4u);
  }
}

TEST(Raid, RejectsZeroRows) {
  EXPECT_THROW(raid5_layout(4, 0), std::invalid_argument);
  EXPECT_THROW(raid4_layout(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::layout
