#include "layout/randomized.hpp"

#include <gtest/gtest.h>

#include "layout/metrics.hpp"

namespace pdl::layout {
namespace {

TEST(Randomized, ProducesValidHoleFreeLayout) {
  const Layout l = randomized_layout(10, 5, 20, /*seed=*/7);
  EXPECT_EQ(l.num_disks(), 10u);
  EXPECT_EQ(l.units_per_disk(), 20u);
  EXPECT_EQ(l.num_stripes(), 10u * 20 / 5);
  EXPECT_TRUE(l.validate().empty());
}

TEST(Randomized, AllStripesHaveSizeK) {
  const Layout l = randomized_layout(13, 4, 16, 3);
  for (const Stripe& st : l.stripes()) {
    EXPECT_EQ(st.size(), 4u);
  }
}

TEST(Randomized, DeterministicInSeed) {
  const Layout a = randomized_layout(9, 3, 12, 42);
  const Layout b = randomized_layout(9, 3, 12, 42);
  ASSERT_EQ(a.num_stripes(), b.num_stripes());
  for (std::size_t s = 0; s < a.num_stripes(); ++s) {
    EXPECT_EQ(a.stripes()[s].units, b.stripes()[s].units);
  }
  const Layout c = randomized_layout(9, 3, 12, 43);
  bool any_diff = false;
  for (std::size_t s = 0; s < a.num_stripes(); ++s) {
    if (a.stripes()[s].units != c.stripes()[s].units) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds must differ";
}

TEST(Randomized, ParityIsFlowBalanced) {
  // b = v*rounds/k stripes; per-disk parity within floor/ceil of b/v.
  const std::uint32_t v = 12, k = 4, rounds = 16;
  const Layout l = randomized_layout(v, k, rounds, 5);
  const std::uint64_t b = static_cast<std::uint64_t>(v) * rounds / k;
  const auto m = compute_metrics(l);
  EXPECT_GE(m.min_parity_units, b / v);
  EXPECT_LE(m.max_parity_units, (b + v - 1) / v);
}

TEST(Randomized, ReconstructionOnlyApproximatelyBalanced) {
  // The point of the comparison: random stripes do NOT give the exact
  // pairwise balance of a BIBD; spread must exist but stay moderate.
  const Layout l = randomized_layout(15, 5, 56, 11);
  const auto m = compute_metrics(l);
  EXPECT_GT(m.max_recon_units, m.min_recon_units)
      << "randomized layouts should not be perfectly balanced";
  EXPECT_GT(m.min_recon_units, 0u)
      << "every pair should co-occur at this density";
}

TEST(Randomized, InvalidArguments) {
  EXPECT_THROW(randomized_layout(5, 6, 10), std::invalid_argument);
  EXPECT_THROW(randomized_layout(5, 1, 10), std::invalid_argument);
  EXPECT_THROW(randomized_layout(10, 4, 0), std::invalid_argument);
  // k must divide v * rounds.
  EXPECT_THROW(randomized_layout(10, 4, 3), std::invalid_argument);
}

TEST(Randomized, ManySeedsAlwaysValid) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const Layout l = randomized_layout(11, 4, 8, seed);
    ASSERT_TRUE(l.validate().empty()) << "seed " << seed;
  }
}

TEST(Randomized, KEqualsVDegeneratesToFullStripes) {
  const Layout l = randomized_layout(6, 6, 6, 1);
  for (const Stripe& st : l.stripes()) EXPECT_EQ(st.size(), 6u);
  EXPECT_TRUE(l.validate().empty());
}

}  // namespace
}  // namespace pdl::layout
