#include "sim/reconstruction.hpp"

#include <gtest/gtest.h>

#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

namespace pdl::sim {
namespace {

TEST(Reconstruction, RingLayoutReadsExactFraction) {
  const auto layout = layout::ring_based_layout(9, 3);
  const auto analysis = analyze_reconstruction(layout, 4);
  EXPECT_EQ(analysis.failed, 4u);
  EXPECT_EQ(analysis.units_per_disk, 24u);
  EXPECT_EQ(analysis.units_to_read[4], 0u);
  // Every survivor reads lambda = k(k-1) = 6 units = (k-1)/(v-1) of itself.
  for (layout::DiskId d = 0; d < 9; ++d) {
    if (d == 4) continue;
    EXPECT_EQ(analysis.units_to_read[d], 6u);
  }
  EXPECT_DOUBLE_EQ(analysis.max_fraction(), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(analysis.min_fraction(), 2.0 / 8.0);
  EXPECT_EQ(analysis.total_units, 8u * 6u);
}

TEST(Reconstruction, Raid5ReadsWholeArray) {
  const auto layout = layout::raid5_layout(5, 10);
  const auto analysis = analyze_reconstruction(layout, 0);
  EXPECT_DOUBLE_EQ(analysis.max_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(analysis.min_fraction(), 1.0);
}

TEST(Reconstruction, ReadBoundScalesWithMaxUnits) {
  const auto layout = layout::ring_based_layout(9, 3);
  const auto analysis = analyze_reconstruction(layout, 0);
  const DiskParams disk{10.0, 2.0};
  EXPECT_DOUBLE_EQ(analysis.read_bound_ms(disk), 6 * 12.0);
}

TEST(Reconstruction, WorstCaseOverAllFailures) {
  const auto ring = layout::ring_based_layout(9, 3);
  EXPECT_DOUBLE_EQ(worst_case_reconstruction_fraction(ring), 0.25);
  const auto raid5 = layout::raid5_layout(9, 9);
  EXPECT_DOUBLE_EQ(worst_case_reconstruction_fraction(raid5), 1.0);
}

TEST(Reconstruction, StairwayWithinTheoremBounds) {
  const auto plan = layout::plan_stairway(9, 12, 3);
  ASSERT_TRUE(plan.has_value());
  const auto layout = layout::build_stairway_layout(
      design::make_ring_design(9, 3), *plan);
  for (layout::DiskId f = 0; f < 12; ++f) {
    const auto analysis = analyze_reconstruction(layout, f);
    EXPECT_LE(analysis.max_fraction(), plan->recon_workload_hi() + 1e-12);
    EXPECT_GE(analysis.min_fraction(), plan->recon_workload_lo() - 1e-12);
  }
}

TEST(Reconstruction, DeclusteringRatioDrivesTheFraction) {
  // Holland-Gibson's declustering ratio alpha = (k-1)/(v-1): the fraction
  // read from each survivor.  Check monotonicity in k at fixed v.
  double last = 0.0;
  for (const std::uint32_t k : {2u, 3u, 5u, 7u, 9u}) {
    const auto layout = layout::ring_based_layout(13, k);
    const double f = worst_case_reconstruction_fraction(layout);
    EXPECT_DOUBLE_EQ(f, static_cast<double>(k - 1) / 12.0);
    EXPECT_GT(f, last);
    last = f;
  }
}

TEST(Reconstruction, BadDiskRejected) {
  const auto layout = layout::raid5_layout(4, 4);
  EXPECT_THROW(analyze_reconstruction(layout, 4), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::sim
