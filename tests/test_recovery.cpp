#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <set>

#include "layout/ring_layout.hpp"

namespace pdl::core {
namespace {

TEST(Recovery, PlanCoversEveryLostUnitExactlyOnce) {
  const auto layout = layout::ring_based_layout(7, 3);
  const layout::DiskId failed = 2;
  const auto plan = plan_recovery(layout, failed);
  EXPECT_EQ(plan.failed, failed);
  // One repair per unit of the failed disk.
  EXPECT_EQ(plan.repairs.size(), layout.units_per_disk());
  std::set<std::uint32_t> offsets;
  for (const auto& repair : plan.repairs) {
    EXPECT_EQ(repair.lost.disk, failed);
    EXPECT_TRUE(offsets.insert(repair.lost.offset).second);
    // Reads = the other k-1 units of the stripe, none on the failed disk.
    EXPECT_EQ(repair.reads.size(), 2u);
    for (const auto& read : repair.reads) {
      EXPECT_NE(read.disk, failed);
    }
  }
}

TEST(Recovery, AnalysisMatchesRepairReads) {
  const auto layout = layout::ring_based_layout(8, 3);
  const auto plan = plan_recovery(layout, 0);
  std::vector<std::uint32_t> reads(8, 0);
  for (const auto& repair : plan.repairs) {
    for (const auto& read : repair.reads) ++reads[read.disk];
  }
  EXPECT_EQ(reads, plan.analysis.units_to_read);
}

TEST(Recovery, RepairStripeIndicesAreValid) {
  const auto layout = layout::ring_based_layout(5, 3);
  const auto plan = plan_recovery(layout, 4);
  for (const auto& repair : plan.repairs) {
    ASSERT_LT(repair.stripe, layout.num_stripes());
    const auto& stripe = layout.stripes()[repair.stripe];
    // lost + reads together are exactly the stripe's units.
    EXPECT_EQ(repair.reads.size() + 1, stripe.units.size());
  }
}

TEST(Recovery, BadDiskRejected) {
  const auto layout = layout::ring_based_layout(5, 3);
  EXPECT_THROW(plan_recovery(layout, 5), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::core
