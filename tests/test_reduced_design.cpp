#include "design/reduced_design.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "algebra/gf.hpp"

namespace pdl::design {
namespace {

using Param = std::pair<std::uint32_t, std::uint32_t>;

class Theorem4Sweep : public ::testing::TestWithParam<Param> {};

TEST_P(Theorem4Sweep, ProducesBibdWithReducedParameters) {
  const auto [v, k] = GetParam();
  const BlockDesign design = make_theorem4_design(v, k);
  const auto check = verify_bibd(design);
  ASSERT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.params, theorem4_params(v, k))
      << "v=" << v << " k=" << k;
}

TEST_P(Theorem4Sweep, GeneratorsAreValidAndStartAtZero) {
  const auto [v, k] = GetParam();
  const auto gens = theorem4_generators(v, k);
  ASSERT_EQ(gens.size(), k);
  EXPECT_EQ(gens[0], 0u);
  auto field = algebra::get_field(v);
  EXPECT_TRUE(algebra::is_generator_set(*field, gens));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Theorem4Sweep,
    ::testing::Values(Param{5, 3}, Param{7, 3}, Param{7, 4}, Param{8, 3},
                      Param{9, 3}, Param{9, 5}, Param{11, 5}, Param{11, 6},
                      Param{13, 4}, Param{13, 5}, Param{16, 4}, Param{16, 6},
                      Param{17, 5}, Param{19, 7}, Param{25, 5}, Param{25, 7},
                      Param{27, 3}, Param{31, 6}, Param{32, 5}, Param{49, 5},
                      Param{64, 10}));

class Theorem5Sweep : public ::testing::TestWithParam<Param> {};

TEST_P(Theorem5Sweep, ProducesBibdWithReducedParameters) {
  const auto [v, k] = GetParam();
  const BlockDesign design = make_theorem5_design(v, k);
  const auto check = verify_bibd(design);
  ASSERT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.params, theorem5_params(v, k))
      << "v=" << v << " k=" << k;
}

TEST_P(Theorem5Sweep, GeneratorsAreValidAndStartAtZero) {
  const auto [v, k] = GetParam();
  const auto gens = theorem5_generators(v, k);
  ASSERT_EQ(gens.size(), k);
  EXPECT_EQ(gens[0], 0u);
  auto field = algebra::get_field(v);
  EXPECT_TRUE(algebra::is_generator_set(*field, gens));
  // The permutation's fixed point z = 1 is never a generator.
  for (const auto g : gens) EXPECT_NE(g, field->one());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Theorem5Sweep,
    ::testing::Values(Param{5, 2}, Param{5, 4}, Param{7, 2}, Param{7, 3},
                      Param{8, 7}, Param{9, 4}, Param{9, 8}, Param{11, 5},
                      Param{13, 3}, Param{13, 4}, Param{16, 3}, Param{16, 5},
                      Param{17, 4}, Param{19, 6}, Param{25, 4}, Param{25, 6},
                      Param{27, 13}, Param{31, 5}, Param{32, 31},
                      Param{49, 4}, Param{64, 9}));

TEST(ReducedDesign, Theorem4ReductionFactorIsGcd) {
  // v=13, k=5: gcd(12, 4) = 4, so b = 13*12/4 = 39.
  EXPECT_EQ(theorem4_params(13, 5).b, 39u);
  EXPECT_EQ(make_theorem4_design(13, 5).b(), 39u);
  // gcd = 1 degenerates to the full Theorem 1 design.
  EXPECT_EQ(theorem4_params(8, 4).b, 8u * 7u / std::gcd(7u, 3u));
}

TEST(ReducedDesign, Theorem5ReductionFactorIsGcd) {
  // v=13, k=4: gcd(12, 4) = 4, so b = 39.
  EXPECT_EQ(theorem5_params(13, 4).b, 39u);
  EXPECT_EQ(make_theorem5_design(13, 4).b(), 39u);
}

TEST(ReducedDesign, TheoremsRejectNonPrimePowerV) {
  EXPECT_THROW(make_theorem4_design(6, 3), std::invalid_argument);
  EXPECT_THROW(make_theorem5_design(10, 3), std::invalid_argument);
  EXPECT_THROW(theorem4_generators(12, 3), std::invalid_argument);
}

TEST(ReducedDesign, Theorem5RejectsKEqualsV) {
  EXPECT_THROW(make_theorem5_design(7, 7), std::invalid_argument);
}

TEST(ReducedDesign, Theorem4CanBeSmallerThanTheorem5AndViceVersa) {
  // k-1 | v-1 favors Theorem 4; k | v-1 favors Theorem 5.
  const auto t4_a = theorem4_params(13, 5);  // gcd(12,4)=4
  const auto t5_a = theorem5_params(13, 5);  // gcd(12,5)=1
  EXPECT_LT(t4_a.b, t5_a.b);
  const auto t4_b = theorem4_params(13, 4);  // gcd(12,3)=3
  const auto t5_b = theorem5_params(13, 4);  // gcd(12,4)=4
  EXPECT_LT(t5_b.b, t4_b.b);
}

TEST(ReducedDesign, GenericReducerConfirmsTheClaimedRedundancy) {
  // Build the unreduced Theorem-1 design over the Theorem 4 generators and
  // check that its uniform redundancy factor is a multiple of the gcd.
  const std::uint32_t v = 13, k = 5;
  auto field = algebra::get_field(v);
  const RingDesign rd = make_ring_design(field, theorem4_generators(v, k));
  const auto reduced = reduce_redundancy(rd.design);
  EXPECT_EQ(reduced.factor % std::gcd(v - 1, k - 1), 0u);
}

}  // namespace
}  // namespace pdl::design
