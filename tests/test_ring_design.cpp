#include "design/ring_design.hpp"

#include <gtest/gtest.h>

#include "algebra/gf.hpp"
#include "algebra/numtheory.hpp"
#include "algebra/zmod.hpp"

namespace pdl::design {
namespace {

// Theorem 1 sweep: construct and fully verify ring designs for a range of
// (v, k), both prime-power and composite v.
class RingDesignSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(RingDesignSweep, IsABibdWithTheorem1Parameters) {
  const auto [v, k] = GetParam();
  ASSERT_TRUE(ring_design_exists(v, k));
  const RingDesign rd = make_ring_design(v, k);
  EXPECT_EQ(rd.v(), v);
  EXPECT_EQ(rd.k(), k);
  EXPECT_EQ(rd.generators.size(), k);

  const auto check = verify_bibd(rd.design);
  ASSERT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.params, ring_design_params(v, k));
}

TEST_P(RingDesignSweep, BlockIndexingRoundTrips) {
  const auto [v, k] = GetParam();
  const RingDesign rd = make_ring_design(v, k);
  for (algebra::Elem x = 0; x < v; ++x) {
    for (algebra::Elem y = 1; y < v; ++y) {
      const std::size_t idx = rd.block_index(x, y);
      ASSERT_EQ(rd.block_x(idx), x);
      ASSERT_EQ(rd.block_y(idx), y);
      // Position 0 of the tuple is the g_0-th element = x (g_0 = 0).
      ASSERT_EQ(rd.design.blocks[idx][0], x);
    }
  }
}

TEST_P(RingDesignSweep, TupleFormulaMatchesStoredBlocks) {
  const auto [v, k] = GetParam();
  const RingDesign rd = make_ring_design(v, k);
  // Spot-check a diagonal of (x, y) pairs.
  for (algebra::Elem t = 1; t < v; ++t) {
    const algebra::Elem x = t % v;
    const algebra::Elem y = t;
    const auto tuple =
        ring_design_tuple(*rd.ring, rd.generators, x, y);
    ASSERT_EQ(tuple, rd.design.blocks[rd.block_index(x, y)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrimePowerV, RingDesignSweep,
    ::testing::Values(std::pair{4u, 2u}, std::pair{4u, 3u}, std::pair{5u, 3u},
                      std::pair{7u, 3u}, std::pair{8u, 5u}, std::pair{9u, 4u},
                      std::pair{13u, 5u}, std::pair{16u, 7u},
                      std::pair{17u, 5u}, std::pair{25u, 6u},
                      std::pair{27u, 9u}, std::pair{32u, 8u},
                      std::pair{49u, 10u}, std::pair{64u, 5u}));

INSTANTIATE_TEST_SUITE_P(
    CompositeV, RingDesignSweep,
    ::testing::Values(std::pair{6u, 2u}, std::pair{12u, 3u},
                      std::pair{15u, 3u}, std::pair{20u, 4u},
                      std::pair{21u, 3u}, std::pair{35u, 5u},
                      std::pair{36u, 4u}, std::pair{45u, 5u},
                      std::pair{72u, 8u}));

TEST(RingDesign, Theorem2Characterization) {
  // k <= M(v) exactly.
  EXPECT_TRUE(ring_design_exists(12, 3));
  EXPECT_FALSE(ring_design_exists(12, 4));   // M(12) = 3
  EXPECT_TRUE(ring_design_exists(72, 8));
  EXPECT_FALSE(ring_design_exists(72, 9));   // M(72) = 8
  EXPECT_TRUE(ring_design_exists(30, 2));
  EXPECT_FALSE(ring_design_exists(30, 3));   // M(30) = 2
  EXPECT_TRUE(ring_design_exists(49, 49));   // prime power: any k <= v
  EXPECT_FALSE(ring_design_exists(49, 50));
  EXPECT_FALSE(ring_design_exists(5, 1));    // k >= 2
  EXPECT_FALSE(ring_design_exists(1, 1));
}

TEST(RingDesign, ConstructionRejectsInfeasible) {
  EXPECT_THROW(make_ring_design(12, 4), std::invalid_argument);
  EXPECT_THROW(make_ring_design(30, 3), std::invalid_argument);
}

TEST(RingDesign, RejectsBadGeneratorSets) {
  auto field = algebra::get_field(7);
  // Duplicate generators: difference 0 is not a unit.
  EXPECT_THROW(make_ring_design(field, {0, 3, 3}), std::invalid_argument);
  // Too few.
  EXPECT_THROW(make_ring_design(field, {0}), std::invalid_argument);
  // In Z_6, {0, 2} has difference 2, not a unit.
  auto z6 = std::make_shared<const algebra::ZmodRing>(6);
  EXPECT_THROW(make_ring_design(z6, {0, 2}), std::invalid_argument);
  // But {0, 1} works.
  EXPECT_NO_THROW(make_ring_design(z6, {0, 1}));
}

TEST(RingDesign, ExplicitZmodConstruction) {
  // Z_10 with generators {0, 1}: b = 90, r = 2*9, lambda = 2.
  auto z10 = std::make_shared<const algebra::ZmodRing>(10);
  const RingDesign rd = make_ring_design(z10, {0, 1});
  const auto check = verify_bibd(rd.design);
  ASSERT_TRUE(check.ok);
  EXPECT_EQ(check.params.b, 90u);
  EXPECT_EQ(check.params.r, 18u);
  EXPECT_EQ(check.params.lambda, 2u);
}

TEST(RingDesign, TupleRejectsZeroY) {
  const RingDesign rd = make_ring_design(5, 3);
  EXPECT_THROW(ring_design_tuple(*rd.ring, rd.generators, 0, 0),
               std::invalid_argument);
}

TEST(RingDesign, EachTupleContainsItsX) {
  const RingDesign rd = make_ring_design(9, 3);
  for (std::size_t i = 0; i < rd.design.blocks.size(); ++i) {
    const auto& block = rd.design.blocks[i];
    EXPECT_EQ(block[0], rd.block_x(i));
  }
}

}  // namespace
}  // namespace pdl::design
