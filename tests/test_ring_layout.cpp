#include "layout/ring_layout.hpp"

#include <gtest/gtest.h>

#include "layout/metrics.hpp"

namespace pdl::layout {
namespace {

using Param = std::pair<std::uint32_t, std::uint32_t>;

class RingLayoutSweep : public ::testing::TestWithParam<Param> {};

TEST_P(RingLayoutSweep, HasPaperStatedSizeAndPerfectBalance) {
  const auto [v, k] = GetParam();
  const Layout l = ring_based_layout(v, k);
  EXPECT_EQ(l.num_disks(), v);
  EXPECT_EQ(l.units_per_disk(), k * (v - 1)) << "size k(v-1)";
  EXPECT_EQ(l.num_stripes(), static_cast<std::size_t>(v) * (v - 1));
  EXPECT_TRUE(l.validate().empty());

  const auto m = compute_metrics(l);
  // Exactly v-1 parity units per disk: parity overhead exactly 1/k.
  EXPECT_EQ(m.min_parity_units, v - 1);
  EXPECT_EQ(m.max_parity_units, v - 1);
  EXPECT_DOUBLE_EQ(m.max_parity_overhead, 1.0 / k);
  // Every ordered pair shares lambda = k(k-1) stripes: reconstruction
  // workload exactly (k-1)/(v-1).
  EXPECT_EQ(m.min_recon_units, k * (k - 1));
  EXPECT_EQ(m.max_recon_units, k * (k - 1));
  EXPECT_DOUBLE_EQ(m.max_recon_workload,
                   static_cast<double>(k - 1) / (v - 1));
}

INSTANTIATE_TEST_SUITE_P(Cases, RingLayoutSweep,
                         ::testing::Values(Param{4, 3}, Param{5, 3},
                                           Param{7, 3}, Param{8, 4},
                                           Param{9, 3}, Param{11, 5},
                                           Param{13, 4}, Param{16, 5},
                                           Param{17, 3}, Param{25, 5},
                                           // composite v with k <= M(v)
                                           Param{12, 3}, Param{15, 3},
                                           Param{20, 4}, Param{36, 4}));

TEST(RingLayout, ParityIsOnDiskX) {
  const auto rd = design::make_ring_design(7, 3);
  const Layout l = ring_based_layout(rd);
  // Stripe (x, y) is block index x*(v-1)+(y-1) and its parity disk is x.
  for (std::size_t i = 0; i < l.num_stripes(); ++i) {
    EXPECT_EQ(l.stripes()[i].parity_unit().disk, rd.block_x(i));
  }
}

TEST(RingLayout, StripeSpecsMatchLayout) {
  const auto rd = design::make_ring_design(8, 3);
  const auto specs = ring_copy_stripes(rd);
  const Layout l = ring_based_layout(rd);
  ASSERT_EQ(specs.size(), l.num_stripes());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(specs[i].disks.size(), l.stripes()[i].units.size());
    for (std::size_t j = 0; j < specs[i].disks.size(); ++j) {
      EXPECT_EQ(specs[i].disks[j], l.stripes()[i].units[j].disk);
    }
    EXPECT_EQ(specs[i].parity_pos, l.stripes()[i].parity_pos);
  }
}

TEST(RingLayout, RemovedSpecsDropTheDiskAndReassignParity) {
  const auto rd = design::make_ring_design(7, 3);
  const design::Elem removed = 2;
  const auto specs = ring_copy_stripes(rd, removed);
  std::size_t shrunk = 0;
  std::vector<std::uint32_t> parity_per_disk(7, 0);
  for (const auto& spec : specs) {
    for (const auto d : spec.disks) ASSERT_NE(d, removed);
    if (spec.disks.size() == 2) ++shrunk;
    ASSERT_LT(spec.parity_pos, spec.disks.size());
    ++parity_per_disk[spec.disks[spec.parity_pos]];
  }
  // The removed disk appeared in r = k(v-1) stripes.
  EXPECT_EQ(shrunk, 3u * 6u);
  // Theorem 8: each surviving disk now holds exactly v parity units.
  for (design::Elem d = 0; d < 7; ++d) {
    if (d == removed) {
      EXPECT_EQ(parity_per_disk[d], 0u);
    } else {
      EXPECT_EQ(parity_per_disk[d], 7u);
    }
  }
}

TEST(RingLayout, InfeasiblePairsRejected) {
  EXPECT_THROW(ring_based_layout(12, 4), std::invalid_argument);
  EXPECT_THROW(ring_copy_stripes(design::make_ring_design(7, 3), 9),
               std::invalid_argument);
}

}  // namespace
}  // namespace pdl::layout
