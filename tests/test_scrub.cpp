// The rate-limited scrub path: StripeStore's cursor-driven scrub
// slices, the io::Scrubber driver (paced passes, full sweeps, the
// background thread), and the fleet tier's governed scrub.  The suite
// pins:
//
//   * scrub_some advances a round-robin cursor in slices whose report
//     counts exactly the instances swept; a full scrub() covers every
//     stripe instance once;
//   * a scrub cycle detects and heals seeded on-media rot, leaving the
//     media checksum-identical to the pre-rot oracle;
//   * Scrubber::run_pass calls the pacer's acquire with the pass's
//     byte estimate BEFORE scrubbing and refunds the unused remainder;
//     run_sweep aggregates passes; totals and pass counts accumulate;
//   * the background sweeper thread makes progress and stops cleanly
//     (start/stop idempotence included);
//   * Fleet::scrub_some charges the shared RebuildGovernor as scrub
//     (scrub_grants / scrub_granted_bytes move, and only for the
//     scrubbed shard); scrub_all sweeps every integrity shard and
//     heals rot through the fleet front door;
//   * shards without integrity scrub as empty reports.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "api/array.hpp"
#include "fleet/fleet.hpp"
#include "fleet/governor.hpp"
#include "fleet/workload.hpp"
#include "io/disk_backend.hpp"
#include "io/scrubber.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

constexpr std::uint32_t kV = 17;
constexpr std::uint32_t kK = 5;
constexpr std::uint32_t kUnitBytes = 64;
constexpr std::uint32_t kIterations = 2;
constexpr std::uint64_t kSeed = 0x5C12B;

Result<StripeStore> make_store(bool integrity) {
  auto array = api::Array::create(
      {kV, kK}, {},
      {.codec = core::CodecKind::kXorParity, .integrity = integrity});
  EXPECT_TRUE(array.ok()) << array.status().to_string();
  if (!array.ok()) return array.status();
  return StripeStore::create(
      std::move(array).value(),
      {.unit_bytes = kUnitBytes, .iterations = kIterations}, nullptr);
}

std::uint64_t instances_of(const StripeStore& store) {
  return static_cast<std::uint64_t>(store.array().num_stripes()) *
         store.iterations();
}

void rot_unit(StripeStore& store, Physical p) {
  const std::uint64_t byte =
      static_cast<std::uint64_t>(p.offset) * store.unit_bytes();
  std::uint8_t media = 0;
  ASSERT_TRUE(store.backend().read(p.disk, byte, {&media, 1}).ok());
  media ^= 0x08;
  ASSERT_TRUE(store.backend().write(p.disk, byte, {&media, 1}).ok());
}

TEST(Scrub, SlicesCountInstancesAndAFullCycleCoversAll) {
  auto store = make_store(true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());

  const auto slice = store->scrub_some(5);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->instances, 5u);
  EXPECT_EQ(slice->mismatches, 0u);
  EXPECT_EQ(store->integrity_stats().scrubbed, 5u);

  const auto cycle = store->scrub();
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle->instances, instances_of(*store));
  EXPECT_EQ(store->integrity_stats().scrubbed, 5u + instances_of(*store));
}

TEST(Scrub, CycleHealsRotChecksumIdentical) {
  auto store = make_store(true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  const auto oracle = store->checksum_disks();
  ASSERT_TRUE(oracle.ok());

  rot_unit(*store, store->array().map(0));
  rot_unit(*store, store->array().map(store->num_logical_units() - 1));

  const auto cycle = store->scrub();
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle->mismatches, 2u);
  EXPECT_EQ(cycle->healed, 2u);
  EXPECT_EQ(cycle->unhealable, 0u);

  const auto after = store->checksum_disks();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *oracle);
  const auto again = store->scrub();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->mismatches, 0u);
}

TEST(Scrub, NonIntegrityStoreYieldsEmptyReports) {
  auto store = make_store(false);
  ASSERT_TRUE(store.ok());
  const auto report = store->scrub_some(8);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances, 0u);

  Scrubber scrubber(*store, {});
  const auto sweep = scrubber.run_sweep();
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->instances, 0u);
}

TEST(Scrubber, PassAcquiresEstimateAndRefundsUnused) {
  auto store = make_store(true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());

  std::vector<std::uint64_t> acquired;
  std::vector<std::uint64_t> refunded;
  Scrubber scrubber(*store,
                    {.instances_per_pass = 4,
                     .pacer = {.acquire = [&](std::uint64_t bytes) {
                                 acquired.push_back(bytes);
                               },
                               .refund = [&](std::uint64_t bytes) {
                                 refunded.push_back(bytes);
                               }}});
  const std::uint64_t per_instance =
      store->array().max_stripe_bytes(store->unit_bytes());

  const auto pass = scrubber.run_pass();
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(pass->instances, 4u);
  ASSERT_EQ(acquired.size(), 1u);
  EXPECT_EQ(acquired[0], 4 * per_instance);
  // A full slice uses its whole estimate: nothing to refund.
  EXPECT_TRUE(refunded.empty());
  EXPECT_EQ(scrubber.passes(), 1u);
  EXPECT_EQ(scrubber.total().instances, 4u);

  // A sweep issues ceil(instances / 4) paced passes, each acquiring.
  const auto sweep = scrubber.run_sweep();
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->instances, instances_of(*store));
  const std::uint64_t expected_passes =
      (instances_of(*store) + 3) / 4;
  EXPECT_EQ(acquired.size(), 1 + expected_passes);
  EXPECT_EQ(scrubber.passes(), 1 + expected_passes);
  EXPECT_TRUE(scrubber.last_error().ok());
}

TEST(Scrubber, BackgroundSweeperMakesProgressAndStopsCleanly) {
  auto store = make_store(true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());

  Scrubber scrubber(*store,
                    {.instances_per_pass = 8, .pass_interval_us = 100});
  EXPECT_FALSE(scrubber.running());
  scrubber.start();
  scrubber.start();  // idempotent
  EXPECT_TRUE(scrubber.running());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scrubber.passes() < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(scrubber.passes(), 3u);
  EXPECT_GT(scrubber.total().instances, 0u);

  scrubber.stop();
  scrubber.stop();  // idempotent
  EXPECT_FALSE(scrubber.running());
  EXPECT_TRUE(scrubber.last_error().ok());
  // The cursor kept wrapping; the store counted every swept instance.
  EXPECT_GE(store->integrity_stats().scrubbed, scrubber.total().instances);
}

// ------------------------------------------------------- fleet scrub

/// A shard over an explicit MemoryBackend whose raw pointer the test
/// keeps: media rot is seeded through it directly (the substrate under
/// the store), never by mutating shard state through the fleet.
[[nodiscard]] fleet::ShardSpec make_shard(std::uint32_t v, std::uint32_t k,
                                          bool integrity,
                                          DiskBackend** backend_out) {
  auto array = api::Array::create(
      {.num_disks = v, .stripe_size = k}, {},
      {.codec = core::CodecKind::kXorParity, .integrity = integrity});
  EXPECT_TRUE(array.ok()) << array.status().to_string();
  auto backend = make_memory_backend();
  if (backend_out) *backend_out = backend.get();
  return fleet::ShardSpec{.array = std::move(array).value(),
                          .iterations = 1,
                          .backend = std::move(backend)};
}

void rot_media(DiskBackend& backend, Physical p, std::uint32_t unit_bytes) {
  const std::uint64_t byte =
      static_cast<std::uint64_t>(p.offset) * unit_bytes;
  std::uint8_t media = 0;
  ASSERT_TRUE(backend.read(p.disk, byte, {&media, 1}).ok());
  media ^= 0x08;
  ASSERT_TRUE(backend.write(p.disk, byte, {&media, 1}).ok());
}

TEST(FleetScrub, GovernedScrubChargesTheGovernorAsScrub) {
  std::vector<fleet::ShardSpec> shards;
  shards.push_back(make_shard(9, 4, true, nullptr));
  shards.push_back(make_shard(9, 4, true, nullptr));
  auto fleet = fleet::Fleet::create(std::move(shards), {.block_bytes = 64});
  ASSERT_TRUE(fleet.ok()) << fleet.status().to_string();
  ASSERT_TRUE(
      fleet::fill_canonical(*fleet, 0, fleet->num_blocks(), kSeed).ok());

  std::uint64_t blocked = ~0ull;
  const auto report = fleet->scrub_some(0, 4, &blocked);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->instances, 4u);
  EXPECT_EQ(blocked, 0u);

  // Charged to shard 0 as SCRUB grants; shard 1 untouched, and nothing
  // was booked as rebuild work anywhere.
  const fleet::GovernorStats charged = fleet->governor().shard_stats(0);
  EXPECT_GT(charged.scrub_grants, 0u);
  EXPECT_GT(charged.scrub_granted_bytes, 0u);
  // A fully-swept slice consumes its whole worst-case estimate (the
  // fleet prices every instance at the max stripe footprint).
  EXPECT_EQ(charged.refunded_bytes, 0u);
  EXPECT_EQ(fleet->governor().shard_stats(1).scrub_granted_bytes, 0u);

  EXPECT_EQ(fleet->scrub_some(99, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FleetScrub, ScrubAllSweepsEveryShardAndHealsRot) {
  std::array<DiskBackend*, 2> media = {};
  std::vector<fleet::ShardSpec> shards;
  shards.push_back(make_shard(9, 4, true, &media[0]));
  shards.push_back(make_shard(13, 4, true, &media[1]));
  auto fleet = fleet::Fleet::create(std::move(shards), {.block_bytes = 64});
  ASSERT_TRUE(fleet.ok()) << fleet.status().to_string();
  ASSERT_TRUE(
      fleet::fill_canonical(*fleet, 0, fleet->num_blocks(), kSeed).ok());

  // Rot one unit in each shard, behind the stores' backs.
  for (std::uint32_t s = 0; s < fleet->num_shards(); ++s)
    rot_media(*media[s], fleet->shard(s).array().map(0), 64);

  const auto sweep = fleet->scrub_all();
  ASSERT_TRUE(sweep.ok()) << sweep.status().to_string();
  std::uint64_t expected_instances = 0;
  for (std::uint32_t s = 0; s < fleet->num_shards(); ++s)
    expected_instances += instances_of(fleet->shard(s));
  EXPECT_EQ(sweep->instances, expected_instances);
  EXPECT_EQ(sweep->mismatches, 2u);
  EXPECT_EQ(sweep->healed, 2u);
  EXPECT_EQ(sweep->unhealable, 0u);

  // Healed in place: every block reads canonical through the front
  // door with no fresh detections.
  std::vector<std::uint8_t> buf(64), expected(64);
  for (std::uint64_t block = 0; block < fleet->num_blocks(); ++block) {
    ASSERT_TRUE(fleet->read(block, buf).ok()) << "block " << block;
    canonical_fill(block, kSeed, expected);
    ASSERT_EQ(buf, expected) << "block " << block;
  }
}

TEST(FleetScrub, NonIntegrityShardScrubsAsEmpty) {
  std::vector<fleet::ShardSpec> shards;
  shards.push_back(make_shard(9, 4, false, nullptr));
  auto fleet = fleet::Fleet::create(std::move(shards), {.block_bytes = 64});
  ASSERT_TRUE(fleet.ok());
  const auto report = fleet->scrub_some(0, 4, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances, 0u);
  EXPECT_EQ(fleet->governor().shard_stats(0).scrub_grants, 0u);

  const auto sweep = fleet->scrub_all();
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->instances, 0u);
}

}  // namespace
}  // namespace pdl::io
