#include "layout/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "layout/disk_removal.hpp"
#include "layout/metrics.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

namespace pdl::layout {
namespace {

void expect_same_layout(const Layout& a, const Layout& b) {
  ASSERT_EQ(a.num_disks(), b.num_disks());
  ASSERT_EQ(a.units_per_disk(), b.units_per_disk());
  ASSERT_EQ(a.num_stripes(), b.num_stripes());
  for (std::size_t s = 0; s < a.num_stripes(); ++s) {
    EXPECT_EQ(a.stripes()[s].parity_pos, b.stripes()[s].parity_pos);
    EXPECT_EQ(a.stripes()[s].units, b.stripes()[s].units);
  }
}

TEST(Serialize, RoundTripAcrossLayoutFamilies) {
  const std::vector<Layout> layouts = {
      raid5_layout(5, 10),
      ring_based_layout(9, 3),
      removal_layout(9, 4, 1),
      removal_layout(16, 9, 3),
      stairway_layout(8, 10, 3),
  };
  for (const Layout& original : layouts) {
    const Layout restored = parse_layout(serialize_layout(original));
    expect_same_layout(original, restored);
    // Metrics agree too (belt and braces).
    EXPECT_EQ(compute_metrics(original).to_string(),
              compute_metrics(restored).to_string());
  }
}

TEST(Serialize, FormatIsStable) {
  Layout l(2, 1);
  l.append_stripe({0, 1}, 1);
  EXPECT_EQ(serialize_layout(l),
            "pdl-layout 1\n"
            "disks 2 units 1\n"
            "stripes 1\n"
            "1 0:0 1:0\n");
}

TEST(Serialize, FileRoundTrip) {
  const Layout original = ring_based_layout(7, 3);
  const std::string path = ::testing::TempDir() + "/pdl_layout_test.txt";
  save_layout(path, original);
  const Layout restored = load_layout(path);
  expect_same_layout(original, restored);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  EXPECT_THROW(parse_layout("nonsense 1\n"), std::invalid_argument);
}

TEST(Serialize, RejectsWrongVersion) {
  EXPECT_THROW(parse_layout("pdl-layout 99\ndisks 2 units 1\nstripes 0\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsTruncatedInput) {
  const std::string good = serialize_layout(raid5_layout(4, 4));
  const std::string truncated = good.substr(0, good.size() / 2);
  EXPECT_THROW(parse_layout(truncated), std::invalid_argument);
}

TEST(Serialize, RejectsMalformedUnits) {
  EXPECT_THROW(parse_layout("pdl-layout 1\n"
                            "disks 2 units 1\n"
                            "stripes 1\n"
                            "0 0:0 banana\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_layout("pdl-layout 1\n"
                            "disks 2 units 1\n"
                            "stripes 1\n"
                            "0 0:0 1-0\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsConditionOneViolation) {
  // Two units of one stripe on the same disk.
  EXPECT_THROW(parse_layout("pdl-layout 1\n"
                            "disks 2 units 2\n"
                            "stripes 1\n"
                            "0 0:0 0:1\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsOverlappingStripes) {
  EXPECT_THROW(parse_layout("pdl-layout 1\n"
                            "disks 2 units 1\n"
                            "stripes 2\n"
                            "0 0:0 1:0\n"
                            "0 0:0\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsBadParityPosition) {
  EXPECT_THROW(parse_layout("pdl-layout 1\n"
                            "disks 2 units 1\n"
                            "stripes 1\n"
                            "5 0:0 1:0\n"),
               std::invalid_argument);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    parse_layout("pdl-layout 1\n"
                 "disks 2 units 1\n"
                 "stripes 1\n"
                 "0 0:0 9:0\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace pdl::layout
