#include "layout/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "layout/disk_removal.hpp"
#include "layout/metrics.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/sparing.hpp"
#include "layout/stairway.hpp"

namespace pdl::layout {
namespace {

void expect_same_layout(const Layout& a, const Layout& b) {
  ASSERT_EQ(a.num_disks(), b.num_disks());
  ASSERT_EQ(a.units_per_disk(), b.units_per_disk());
  ASSERT_EQ(a.num_stripes(), b.num_stripes());
  for (std::size_t s = 0; s < a.num_stripes(); ++s) {
    EXPECT_EQ(a.stripes()[s].parity_pos, b.stripes()[s].parity_pos);
    EXPECT_EQ(a.stripes()[s].units, b.stripes()[s].units);
  }
}

TEST(Serialize, RoundTripAcrossLayoutFamilies) {
  const std::vector<Layout> layouts = {
      raid5_layout(5, 10),
      ring_based_layout(9, 3),
      removal_layout(9, 4, 1),
      removal_layout(16, 9, 3),
      stairway_layout(8, 10, 3),
  };
  for (const Layout& original : layouts) {
    const auto restored = parse_layout(serialize_layout(original));
    ASSERT_TRUE(restored.ok()) << restored.status().to_string();
    expect_same_layout(original, *restored);
    // Metrics agree too (belt and braces).
    EXPECT_EQ(compute_metrics(original).to_string(),
              compute_metrics(*restored).to_string());
  }
}

TEST(Serialize, FormatIsStable) {
  Layout l(2, 1);
  l.append_stripe({0, 1}, 1);
  EXPECT_EQ(serialize_layout(l),
            "pdl-layout 1\n"
            "disks 2 units 1\n"
            "stripes 1\n"
            "1 0:0 1:0\n");
}

TEST(Serialize, FileRoundTrip) {
  const Layout original = ring_based_layout(7, 3);
  const std::string path = ::testing::TempDir() + "/pdl_layout_test.txt";
  ASSERT_TRUE(save_layout(path, original).ok());
  const auto restored = load_layout(path);
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  expect_same_layout(original, *restored);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsIoError) {
  const auto missing = load_layout(::testing::TempDir() + "/no_such_layout");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

TEST(Serialize, RejectsBadMagic) {
  const auto result = parse_layout("nonsense 1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Serialize, RejectsWrongVersion) {
  const auto result =
      parse_layout("pdl-layout 99\ndisks 2 units 1\nstripes 0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Serialize, RejectsTruncatedInput) {
  const std::string good = serialize_layout(raid5_layout(4, 4));
  const auto result = parse_layout(good.substr(0, good.size() / 2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Serialize, RejectsMalformedUnits) {
  EXPECT_EQ(parse_layout("pdl-layout 1\n"
                         "disks 2 units 1\n"
                         "stripes 1\n"
                         "0 0:0 banana\n")
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(parse_layout("pdl-layout 1\n"
                         "disks 2 units 1\n"
                         "stripes 1\n"
                         "0 0:0 1-0\n")
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(Serialize, RejectsConditionOneViolation) {
  // Two units of one stripe on the same disk.
  EXPECT_FALSE(parse_layout("pdl-layout 1\n"
                            "disks 2 units 2\n"
                            "stripes 1\n"
                            "0 0:0 0:1\n")
                   .ok());
}

TEST(Serialize, RejectsOverlappingStripes) {
  EXPECT_FALSE(parse_layout("pdl-layout 1\n"
                            "disks 2 units 1\n"
                            "stripes 2\n"
                            "0 0:0 1:0\n"
                            "0 0:0\n")
                   .ok());
}

TEST(Serialize, RejectsBadParityPosition) {
  EXPECT_FALSE(parse_layout("pdl-layout 1\n"
                            "disks 2 units 1\n"
                            "stripes 1\n"
                            "5 0:0 1:0\n")
                   .ok());
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  const auto result = parse_layout("pdl-layout 1\n"
                                   "disks 2 units 1\n"
                                   "stripes 1\n"
                                   "0 0:0 9:0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().to_string();
}

// ------------------------------------------------ spared-layout round trip

void expect_same_spared(const SparedLayout& a, const SparedLayout& b) {
  expect_same_layout(a.layout, b.layout);
  EXPECT_EQ(a.spare_pos, b.spare_pos);
}

TEST(SerializeSpared, RoundTripAcrossLayoutFamilies) {
  const std::vector<Layout> bases = {
      ring_based_layout(9, 4),
      removal_layout(9, 4, 1),
      stairway_layout(8, 10, 3),
  };
  for (const Layout& base : bases) {
    const SparedLayout original = add_distributed_sparing(base);
    const auto restored =
        parse_spared_layout(serialize_spared_layout(original));
    ASSERT_TRUE(restored.ok()) << restored.status().to_string();
    expect_same_spared(original, *restored);
    EXPECT_EQ(original.spares_per_disk(), restored->spares_per_disk());
  }
}

TEST(SerializeSpared, FileRoundTrip) {
  const SparedLayout original =
      add_distributed_sparing(ring_based_layout(7, 3));
  const std::string path = ::testing::TempDir() + "/pdl_spared_test.txt";
  ASSERT_TRUE(save_spared_layout(path, original).ok());
  const auto restored = load_spared_layout(path);
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  expect_same_spared(original, *restored);
  std::remove(path.c_str());
}

TEST(SerializeSpared, RejectsPlainLayoutMagic) {
  const std::string plain = serialize_layout(ring_based_layout(7, 3));
  const auto result = parse_spared_layout(plain);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(SerializeSpared, RejectsSpareCountMismatch) {
  const SparedLayout original =
      add_distributed_sparing(ring_based_layout(7, 3));
  std::string text = serialize_spared_layout(original);
  const auto pos = text.find("spares ");
  ASSERT_NE(pos, std::string::npos);
  text = text.substr(0, pos) + "spares 2\n0 1\n";
  const auto result = parse_spared_layout(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeSpared, RejectsSpareOutOfRangeAndOnParity) {
  Layout l(3, 1);
  l.append_stripe({0, 1, 2}, 0);
  SparedLayout bad{l, {7}};  // out of range
  auto result = parse_spared_layout(serialize_spared_layout(bad));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos);

  SparedLayout on_parity{l, {0}};  // collides with parity_pos = 0
  result = parse_spared_layout(serialize_spared_layout(on_parity));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("parity"), std::string::npos);
}

TEST(SerializeSpared, RejectsTruncatedSpareMap) {
  const SparedLayout original =
      add_distributed_sparing(ring_based_layout(7, 3));
  std::string text = serialize_spared_layout(original);
  // Drop the final spare value.
  text = text.substr(0, text.find_last_of(' '));
  const auto result = parse_spared_layout(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace pdl::layout
