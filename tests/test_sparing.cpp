#include "layout/sparing.hpp"

#include <gtest/gtest.h>

#include "flow/parity_assign.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "sim/array_sim.hpp"

namespace pdl::layout {
namespace {

TEST(Sparing, SpareNeverCollidesWithParity) {
  const auto spared = add_distributed_sparing(ring_based_layout(9, 4));
  ASSERT_EQ(spared.spare_pos.size(), spared.layout.num_stripes());
  for (std::size_t s = 0; s < spared.layout.num_stripes(); ++s) {
    const Stripe& st = spared.layout.stripes()[s];
    EXPECT_NE(spared.spare_pos[s], st.parity_pos);
    EXPECT_LT(spared.spare_pos[s], st.units.size());
  }
}

TEST(Sparing, SparesAreBalancedWithinFlowBound) {
  const auto base = ring_based_layout(9, 4);
  const auto spared = add_distributed_sparing(base);
  // Spare load: one of k-1 non-parity units per stripe.
  std::vector<std::vector<std::uint32_t>> candidates;
  for (const Stripe& st : base.stripes()) {
    std::vector<std::uint32_t> disks;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (p != st.parity_pos) disks.push_back(st.units[p].disk);
    }
    candidates.push_back(std::move(disks));
  }
  const auto loads = flow::parity_loads(candidates, 9);
  const auto per_disk = spared.spares_per_disk();
  for (DiskId d = 0; d < 9; ++d) {
    EXPECT_GE(per_disk[d], loads.floor_of(d));
    EXPECT_LE(per_disk[d], loads.ceil_of(d));
  }
}

TEST(Sparing, RingLayoutSparesPerfectlyBalanced) {
  // b = v(v-1) stripes over v disks: v | b, so spares can be perfectly
  // balanced at (v-1) spares per disk... the flow bound guarantees within
  // one; check the spread is minimal.
  const auto spared = add_distributed_sparing(ring_based_layout(8, 4));
  const auto per_disk = spared.spares_per_disk();
  const auto [lo, hi] = std::minmax_element(per_disk.begin(), per_disk.end());
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(Sparing, RebuildWritesAreDeclustered) {
  const auto spared = add_distributed_sparing(ring_based_layout(9, 4));
  const auto writes = distributed_rebuild_writes(spared, 0);
  EXPECT_EQ(writes[0], 0u) << "no writes to the failed disk";
  std::uint64_t total = 0;
  std::uint32_t max_writes = 0;
  for (DiskId d = 1; d < 9; ++d) {
    total += writes[d];
    max_writes = std::max(max_writes, writes[d]);
  }
  EXPECT_GT(total, 0u);
  // Declustered: no single survivor absorbs more than ~2x the average.
  const double avg = static_cast<double>(total) / 8.0;
  EXPECT_LE(max_writes, 2.0 * avg + 1.0);
}

TEST(Sparing, RejectsTinyStripes) {
  Layout l(3, 1);
  l.append_stripe({0}, 0);
  l.append_stripe({1}, 0);
  l.append_stripe({2}, 0);
  EXPECT_THROW(add_distributed_sparing(l), std::invalid_argument);
}

TEST(Sparing, SimulatedDistributedRebuildCompletes) {
  const auto base = ring_based_layout(9, 4);
  const auto spared = add_distributed_sparing(base);
  const sim::ArraySimulator simulator(
      base, sim::ArrayConfig{.disk = {}, .rebuild_depth = 4,
                             .iterations = 1});
  const auto result =
      simulator.run_rebuild_distributed({}, 0, spared.spare_pos);
  EXPECT_GT(result.stripes_rebuilt, 0u);
  EXPECT_GT(result.rebuild_ms, 0.0);
  // Reads never touch the failed disk; counts match stripes * (k-2).
  EXPECT_EQ(result.rebuild_reads_per_disk[0], 0u);
  std::uint64_t reads = 0;
  for (const auto r : result.rebuild_reads_per_disk) reads += r;
  EXPECT_EQ(reads, result.stripes_rebuilt * (4 - 2));
}

TEST(Sparing, DistributedRebuildSkipsSpareOnlyLosses) {
  const auto base = ring_based_layout(8, 4);
  const auto spared = add_distributed_sparing(base);
  const sim::ArraySimulator simulator(
      base, sim::ArrayConfig{.disk = {}, .rebuild_depth = 2,
                             .iterations = 1});
  const auto result =
      simulator.run_rebuild_distributed({}, 3, spared.spare_pos);
  // Stripes whose unit on disk 3 was the spare need no rebuild: jobs <
  // stripes crossing disk 3 (= r = k(v-1) = 28) whenever disk 3 holds
  // spares.
  const auto spares = spared.spares_per_disk();
  EXPECT_EQ(result.stripes_rebuilt, 4u * 7u - spares[3]);
}

TEST(Sparing, InvalidSparePositionsRejected) {
  const auto base = ring_based_layout(8, 3);
  const sim::ArraySimulator simulator(
      base, sim::ArrayConfig{.disk = {}, .rebuild_depth = 2,
                             .iterations = 1});
  std::vector<std::uint32_t> bad(base.num_stripes(), 0);
  // Position 0 is the parity position for ring layouts (parity = disk x at
  // tuple position 0), so this must be rejected.
  EXPECT_THROW(simulator.run_rebuild_distributed({}, 0, bad),
               std::invalid_argument);
  std::vector<std::uint32_t> short_vec(3, 1);
  EXPECT_THROW(simulator.run_rebuild_distributed({}, 0, short_vec),
               std::invalid_argument);
}

}  // namespace
}  // namespace pdl::layout
