#include "layout/stairway.hpp"

#include <gtest/gtest.h>

#include "layout/metrics.hpp"

namespace pdl::layout {
namespace {

TEST(StairwayPlan, ConditionsEightAndNine) {
  // q=8 -> v=9: W=1, smallest c with w = v - cW in [0, c) is c=5 (w=4).
  const auto plan = plan_stairway(8, 9, 3);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->width, 1u);
  EXPECT_EQ(plan->v, plan->copies * plan->width + plan->wide_steps);
  EXPECT_LT(plan->wide_steps, plan->copies);
  // Step widths sum to q.
  std::uint32_t sum = 0;
  for (const auto w : plan->step_widths) sum += w;
  EXPECT_EQ(sum, 8u);
}

TEST(StairwayPlan, PerfectParityPlanMatchesTheorem10) {
  // Theorem 10: v = q+1 with c = q+1 copies, w = 0.
  const auto plan = plan_stairway_perfect_parity(8, 9, 3);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->copies, 9u);
  EXPECT_EQ(plan->wide_steps, 0u);
  EXPECT_EQ(plan->size(), 3u * 8u * 7u) << "size kq(q-1)";
}

TEST(StairwayPlan, PerfectParityRequiresDivisibility) {
  // v = 12, q = 9: W = 3 divides 12 -> perfect plan exists (c = 4).
  ASSERT_TRUE(plan_stairway_perfect_parity(9, 12, 3).has_value());
  // v = 13, q = 9: W = 4 does not divide 13 -> no perfect plan.
  EXPECT_FALSE(plan_stairway_perfect_parity(9, 13, 3).has_value());
}

TEST(StairwayPlan, AllPlansOrderedBySize) {
  // q=9 -> v=10 (W=1): c can be 6..10, five distinct plans.
  const auto plans = all_stairway_plans(9, 10, 3);
  ASSERT_GE(plans.size(), 2u);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LT(plans[i - 1].copies, plans[i].copies);
    EXPECT_LT(plans[i - 1].size(), plans[i].size());
  }
}

TEST(StairwayPlan, InfeasibleCases) {
  EXPECT_TRUE(all_stairway_plans(9, 9, 3).empty()) << "v must exceed q";
  EXPECT_TRUE(all_stairway_plans(9, 5, 3).empty());
  EXPECT_TRUE(all_stairway_plans(3, 100, 5).empty()) << "k > q";
}

struct StairCase {
  std::uint32_t q, v, k;
};

class StairwaySweep : public ::testing::TestWithParam<StairCase> {};

TEST_P(StairwaySweep, BuildsValidLayoutWithTheoremMetrics) {
  const auto [q, v, k] = GetParam();
  const auto plan = plan_stairway(q, v, k);
  ASSERT_TRUE(plan.has_value()) << "q=" << q << " v=" << v;
  const auto rd = design::make_ring_design(q, k);
  const Layout l = build_stairway_layout(rd, *plan);

  EXPECT_EQ(l.num_disks(), v);
  EXPECT_EQ(l.units_per_disk(), plan->size()) << "size k(c-1)(q-1)";
  EXPECT_TRUE(l.validate().empty());

  const auto m = compute_metrics(l);
  const std::uint32_t c = plan->copies;
  const std::uint32_t w = plan->wide_steps;
  const std::uint32_t piece_parity = (c - 1) * (q - 1);

  // Stripe sizes: k, and k-1 only when overlap removal happened (w > 0).
  EXPECT_EQ(m.max_stripe_size, k);
  EXPECT_EQ(m.min_stripe_size, w > 0 ? k - 1 : k);

  // Parity units per disk: (c-1)(q-1) + w or + w-1 (Theorem 12); exactly
  // (c-1)(q-1) when w = 0 (Theorems 10/11).
  if (w == 0) {
    EXPECT_EQ(m.min_parity_units, piece_parity);
    EXPECT_EQ(m.max_parity_units, piece_parity);
  } else {
    EXPECT_EQ(m.min_parity_units, piece_parity + w - 1);
    EXPECT_EQ(m.max_parity_units, piece_parity + w);
  }
  EXPECT_GE(m.min_parity_overhead, plan->parity_overhead_lo() - 1e-12);
  EXPECT_LE(m.max_parity_overhead, plan->parity_overhead_hi() + 1e-12);

  // Reconstruction workload: every ordered pair shares either lambda(c-1)
  // or lambda(c-2) stripes, where lambda = k(k-1).
  const std::uint32_t lambda = k * (k - 1);
  EXPECT_EQ(m.max_recon_units, lambda * (c - 1));
  EXPECT_EQ(m.min_recon_units, lambda * (c - 2));
  EXPECT_LE(m.max_recon_workload, plan->recon_workload_hi() + 1e-12);
  EXPECT_GE(m.min_recon_workload, plan->recon_workload_lo() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StairwaySweep,
    ::testing::Values(StairCase{8, 9, 3},     // W=1 with wide steps
                      StairCase{8, 10, 3},    // W=2
                      StairCase{9, 12, 3},    // W=3 divides v: w=0
                      StairCase{9, 13, 4},    // W=4, w>0
                      StairCase{11, 14, 4},   // W=3, w=2
                      StairCase{13, 17, 5},   // W=4, w=1
                      StairCase{16, 21, 5},   // W=5, w=1
                      StairCase{16, 20, 4},   // W=4 divides v: w=0
                      StairCase{17, 20, 3},   // W=3, w=2
                      StairCase{25, 30, 5})); // W=5 divides v: w=0

TEST(Stairway, Theorem10ExactReconstructionWorkload) {
  // v = q+1 with the perfect-parity plan: all pairs read exactly (k-1)/q.
  const std::uint32_t q = 8, k = 3;
  const auto plan = plan_stairway_perfect_parity(q, q + 1, k);
  ASSERT_TRUE(plan.has_value());
  const Layout l = build_stairway_layout(design::make_ring_design(q, k), *plan);
  const auto m = compute_metrics(l);
  EXPECT_DOUBLE_EQ(m.max_recon_workload, static_cast<double>(k - 1) / q);
  EXPECT_DOUBLE_EQ(m.min_recon_workload, static_cast<double>(k - 1) / q);
  // Parity overhead exactly 1/k.
  EXPECT_DOUBLE_EQ(m.max_parity_overhead, 1.0 / k);
  EXPECT_DOUBLE_EQ(m.min_parity_overhead, 1.0 / k);
}

TEST(Stairway, PlacementInvariance) {
  // Theorem 12's bounds hold wherever the wide steps are placed.
  const std::uint32_t q = 13, v = 17, k = 4;
  for (const auto placement :
       {WideStepPlacement::kFirst, WideStepPlacement::kLast,
        WideStepPlacement::kSpread}) {
    const auto plan = plan_stairway(q, v, k, placement);
    ASSERT_TRUE(plan.has_value());
    const Layout l =
        build_stairway_layout(design::make_ring_design(q, k), *plan);
    EXPECT_TRUE(l.validate().empty());
    const auto m = compute_metrics(l);
    EXPECT_GE(m.min_parity_overhead, plan->parity_overhead_lo() - 1e-12);
    EXPECT_LE(m.max_parity_overhead, plan->parity_overhead_hi() + 1e-12);
  }
}

TEST(Stairway, MismatchedDesignRejected) {
  const auto plan = plan_stairway(8, 10, 3);
  ASSERT_TRUE(plan.has_value());
  EXPECT_THROW(
      build_stairway_layout(design::make_ring_design(9, 3), *plan),
      std::invalid_argument);
}

TEST(Stairway, ConvenienceBuilder) {
  const Layout l = stairway_layout(9, 12, 3);
  EXPECT_EQ(l.num_disks(), 12u);
  EXPECT_TRUE(l.validate().empty());
  EXPECT_THROW(stairway_layout(9, 9, 3), std::invalid_argument);
}

TEST(Stairway, LargerConfiguration) {
  // q=53 -> v=60 with k=7 (c=8, w=4): a mid-sized array, fast to build.
  const Layout l = stairway_layout(53, 60, 7);
  EXPECT_EQ(l.num_disks(), 60u);
  EXPECT_TRUE(l.validate().empty());
  const auto m = compute_metrics(l);
  EXPECT_LE(m.max_parity_overhead, 1.0 / 7 + 0.01);
}

}  // namespace
}  // namespace pdl::layout
