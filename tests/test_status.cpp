#include "core/status.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace pdl {
namespace {

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.to_string(), "OK");
  EXPECT_EQ(status, OkStatus());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::invalid_argument("k out of range");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "k out of range");
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: k out of range");
}

TEST(Status, EveryCodeHasAStableName) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_EQ(status_code_name(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(status_code_name(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(status_code_name(StatusCode::kUnsupported), "UNSUPPORTED");
  EXPECT_EQ(status_code_name(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(status_code_name(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_EQ(status_code_name(StatusCode::kIoError), "IO_ERROR");
  EXPECT_EQ(status_code_name(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(status_code_name(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(status_code_name(StatusCode::kParityInconsistent),
            "PARITY_INCONSISTENT");
  EXPECT_EQ(status_code_name(StatusCode::kChecksumMismatch),
            "CHECKSUM_MISMATCH");
}

TEST(Status, ChecksumMismatchIsItsOwnCode) {
  // The integrity layer's detection signal: the read path branches on it
  // (treat the unit as an erasure and heal through the codec), so it
  // must stay distinct from kIoError (substrate broke), kDataLoss
  // (erasure budget exhausted), and kParityInconsistent (torn write).
  const Status status = Status::checksum_mismatch("unit 9 rotted");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kChecksumMismatch);
  EXPECT_EQ(status.message(), "unit 9 rotted");
  EXPECT_NE(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.code(), StatusCode::kParityInconsistent);
  EXPECT_EQ(status.to_string(), "CHECKSUM_MISMATCH: unit 9 rotted");
}

TEST(Status, ParityInconsistentIsItsOwnCode) {
  // The torn-parity window surfaces through this code; callers branch on
  // it (retry the write to heal vs. fail a decode), so it must stay
  // distinct from both kIoError and kDataLoss.
  const Status status = Status::parity_inconsistent("stripe 7 torn");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParityInconsistent);
  EXPECT_EQ(status.message(), "stripe 7 torn");
  EXPECT_NE(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(status.to_string(), "PARITY_INCONSISTENT: stripe 7 torn");
}

TEST(Result, HoldsValue) {
  const Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  const Result<int> result = Status::unsupported("nothing fits");
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(Result, ValueOnErrorThrowsLogicError) {
  const Result<int> result = Status::not_found("gone");
  EXPECT_THROW((void)result.value(), std::logic_error);
  try {
    (void)result.value();
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("NOT_FOUND"), std::string::npos);
  }
}

TEST(Result, OkStatusIsDemotedToInternal) {
  // A Result built from an OK status has no value; that is a bug at the
  // construction site, surfaced as kInternal rather than a lying ok().
  const Result<int> result{Status()};
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(Result, MoveOnlyValuesWork) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(9));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(**result, 9);
  std::unique_ptr<int> extracted = std::move(result).value();
  EXPECT_EQ(*extracted, 9);
}

TEST(Result, PointerAccessReachesMembers) {
  const Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace pdl
