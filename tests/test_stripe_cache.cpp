// The workload-aware hot-stripe cache layer (io::StripeCache wired into
// io::StripeStore): hotness tracking, the hot-unit read cache, and
// parity-delta batching.  The suite pins:
//
//   * DIFFERENTIAL: a cached store driven by a skewed read/write stream
//     serves byte-identical results to an uncached twin driven by the
//     SAME stream -- across memory/file x sync/async x xor/rs -- and
//     after flush_cache() both media images are checksum-identical
//     (the delta-fold-equals-immediate-RMW oracle: linearity over the
//     codec's field makes the folded parity exactly what per-op RMW
//     would have written);
//   * read-your-writes through the dirty-delta table: a read of an
//     absorbed (not yet folded) unit returns the pinned NEW bytes;
//   * invalidate-on-write: a cached payload never survives a write to
//     its logical address;
//   * degraded reads operate through the cache layer (fail_disk folds
//     the dirty table first -- the "dirty implies fully healthy"
//     invariant -- then reconstructed reads stay canonical and hot
//     reconstructed units are served from cache on re-read);
//   * the count-min hotness tracker ranks the true hot set of a seeded
//     zipfian stream in top-k with bounded error, never undercounts,
//     and halving decay is monotone non-increasing;
//   * a TSan target racing concurrent readers against writers and
//     explicit flush_cache() sweeps (run under -fsanitize=thread via
//     the ctest filter in .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/array.hpp"
#include "io/async_backend.hpp"
#include "io/disk_backend.hpp"
#include "io/stripe_cache.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

constexpr std::uint32_t kV = 17;
constexpr std::uint32_t kK = 5;
constexpr std::uint32_t kUnitBytes = 64;
constexpr std::uint32_t kIterations = 2;
constexpr std::uint64_t kSeed = 0xCA5E;

/// Aggressive knobs so a short test stream exercises every path: almost
/// everything is hot, folds trigger after few absorbed units, and no
/// time trigger fires behind the test's back (flush points are explicit).
StripeCacheOptions test_cache_options() {
  StripeCacheOptions cache;
  cache.enabled = true;
  cache.read_cache_bytes = 1u << 20;
  cache.cache_shards = 4;
  cache.hot_threshold = 2;
  cache.decay_interval = 0;  // no decay: deterministic hotness
  cache.sketch_width = 4096;  // wide: no collision noise in small tests
  cache.max_dirty_instances = 32;
  cache.max_dirty_units = 4;
  cache.flush_interval_us = 0;  // no time trigger
  return cache;
}

enum class BackendKind { kMemory, kFile };

struct Case {
  BackendKind backend = BackendKind::kMemory;
  bool async = false;
  core::CodecKind codec = core::CodecKind::kXorParity;
};

std::string describe(const Case& c) {
  std::string text = c.backend == BackendKind::kFile ? "file" : "memory";
  text += c.async ? "/async" : "/sync";
  text += "/";
  text += core::codec_kind_name(c.codec);
  return text;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const BackendKind backend : {BackendKind::kMemory, BackendKind::kFile})
    for (const bool async : {false, true})
      for (const core::CodecKind codec :
           {core::CodecKind::kXorParity, core::CodecKind::kReedSolomonPQ})
        cases.push_back({backend, async, codec});
  return cases;
}

std::unique_ptr<DiskBackend> make_case_backend(const Case& c,
                                               const std::string& tag) {
  std::unique_ptr<DiskBackend> base;
  if (c.backend == BackendKind::kFile) {
    std::string name = tag + "_" + describe(c);
    std::replace(name.begin(), name.end(), '/', '_');
    base = make_file_backend(
        {.directory = (std::filesystem::temp_directory_path() /
                       ("pdl_stripe_cache_" +
                        std::to_string(static_cast<unsigned long>(::getpid())) +
                        "_" + name))
                          .string()});
  } else {
    base = make_memory_backend();
  }
  if (c.async) return make_async_backend(std::move(base));
  return base;
}

Result<StripeStore> make_store(const Case& c, const std::string& tag,
                               bool cached) {
  auto array = api::Array::create({kV, kK}, {},
                                  {.codec = c.codec, .integrity = true});
  EXPECT_TRUE(array.ok()) << array.status().to_string();
  if (!array.ok()) return array.status();
  StripeStoreOptions options{.unit_bytes = kUnitBytes,
                             .iterations = kIterations};
  if (cached) options.cache = test_cache_options();
  return StripeStore::create(std::move(array).value(), options,
                             make_case_backend(c, tag + (cached ? "_c" : "_u")));
}

/// The expected bytes of `logical` after its `version`-th write.
void versioned_fill(std::uint64_t logical, std::uint64_t version,
                    std::span<std::uint8_t> out) {
  canonical_fill(logical ^ (version * 0x9E3779B97F4A7C15ull), kSeed, out);
}

/// Drives one deterministic skewed stream against `store`, verifying
/// every read against the tracked per-unit version -- which pins
/// read-your-writes through the dirty table (absorbed units) and the
/// read cache alike.  The identical stream lands on every store this is
/// called with, so two stores driven by it must converge byte-identical.
void drive_stream(StripeStore& store, std::uint32_t ops,
                  std::vector<std::uint64_t>& version) {
  const std::uint64_t n = store.num_logical_units();
  const std::uint64_t hot_span = std::max<std::uint64_t>(n / 16, 1);
  std::mt19937_64 rng(kSeed);
  std::vector<std::uint8_t> buffer(kUnitBytes);
  std::vector<std::uint8_t> expected(kUnitBytes);
  for (std::uint32_t op = 0; op < ops; ++op) {
    // 3/4 of traffic lands on the first n/16 units: a hot set the
    // tracker must catch, with a uniform cold tail.
    const std::uint64_t logical = (rng() % 4 != 0) ? rng() % hot_span
                                                   : rng() % n;
    if (rng() % 2 == 0) {
      versioned_fill(logical, ++version[logical], buffer);
      ASSERT_TRUE(store.write(logical, buffer).ok()) << "op " << op;
    } else {
      ASSERT_TRUE(store.read(logical, buffer).ok()) << "op " << op;
      versioned_fill(logical, version[logical], expected);
      ASSERT_EQ(buffer, expected)
          << "op " << op << " logical " << logical << " stale bytes";
    }
  }
}

void expect_all_versioned(StripeStore& store,
                          const std::vector<std::uint64_t>& version) {
  std::vector<std::uint8_t> buffer(kUnitBytes);
  std::vector<std::uint8_t> expected(kUnitBytes);
  for (std::uint64_t logical = 0; logical < store.num_logical_units();
       ++logical) {
    ASSERT_TRUE(store.read(logical, buffer).ok()) << "logical " << logical;
    versioned_fill(logical, version[logical], expected);
    ASSERT_EQ(buffer, expected) << "logical " << logical;
  }
}

// ------------------------------------------------- differential suite

TEST(StripeCacheDifferential, CachedMatchesUncachedAcrossMatrix) {
  for (const Case& c : all_cases()) {
    SCOPED_TRACE(describe(c));
    auto cached = make_store(c, "diff", true);
    auto uncached = make_store(c, "diff", false);
    ASSERT_TRUE(cached.ok()) << cached.status().to_string();
    ASSERT_TRUE(uncached.ok()) << uncached.status().to_string();
    ASSERT_TRUE(cached->cache_enabled());
    ASSERT_FALSE(uncached->cache_enabled());

    const std::uint64_t n = cached->num_logical_units();
    ASSERT_TRUE(fill_canonical(*cached, 0, n, kSeed).ok());
    ASSERT_TRUE(fill_canonical(*uncached, 0, n, kSeed).ok());

    std::vector<std::uint64_t> version_c(n, 0);
    std::vector<std::uint64_t> version_u(n, 0);
    drive_stream(*cached, 3000, version_c);
    drive_stream(*uncached, 3000, version_u);
    ASSERT_EQ(version_c, version_u);  // identical stream by construction

    // The cache layer must actually have been on the field: the skewed
    // stream makes units hot, hot reads hit, hot RMWs absorb and fold.
    const HotnessStats stats = cached->hotness_stats();
    EXPECT_GT(stats.hits, 0u) << describe(c);
    EXPECT_GT(stats.fills, 0u) << describe(c);
    EXPECT_GT(stats.absorbed_writes, 0u) << describe(c);
    EXPECT_GT(stats.folds, 0u) << describe(c);
    EXPECT_GT(stats.hit_rate(), 0.0) << describe(c);

    // Every logical byte identical through the read path...
    expect_all_versioned(*cached, version_c);
    expect_all_versioned(*uncached, version_u);

    // ...and, after folding the dirty table, the MEDIA images are
    // checksum-identical: the fold wrote exactly the parity per-op RMW
    // would have (the delta-fold oracle), and both parity audits agree.
    ASSERT_TRUE(cached->flush_cache().ok());
    EXPECT_EQ(cached->hotness_stats().dirty_instances, 0u);
    const auto sweep_c = cached->verify_stripes();
    const auto sweep_u = uncached->verify_stripes();
    ASSERT_TRUE(sweep_c.ok());
    ASSERT_TRUE(sweep_u.ok());
    EXPECT_EQ(*sweep_c, 0u);
    EXPECT_EQ(*sweep_u, 0u);
    const auto sums_c = cached->checksum_disks();
    const auto sums_u = uncached->checksum_disks();
    ASSERT_TRUE(sums_c.ok());
    ASSERT_TRUE(sums_u.ok());
    EXPECT_EQ(*sums_c, *sums_u) << describe(c);
  }
}

// ------------------------------------------------ focused invariants

TEST(StripeCache, ReadYourWritesThroughDirtyTable) {
  Case c;  // memory/sync/xor
  auto store = make_store(c, "ryw", true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  // The seed fill itself made instances hot and absorbed writes; start
  // the scenario from a clean (all-folded) table.
  ASSERT_TRUE(store->flush_cache().ok());

  // Make logical 0's instance hot, then write it: the write absorbs
  // into the dirty table (no fold yet -- max_dirty_units is 4).
  std::vector<std::uint8_t> buffer(kUnitBytes);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(store->read(0, buffer).ok());
  std::vector<std::uint8_t> fresh(kUnitBytes, 0xAB);
  ASSERT_TRUE(store->write(0, fresh).ok());
  ASSERT_GT(store->hotness_stats().absorbed_writes, 0u);
  ASSERT_GT(store->hotness_stats().dirty_instances, 0u);

  // The read serves the PINNED bytes, not the stale media image.
  ASSERT_TRUE(store->read(0, buffer).ok());
  EXPECT_EQ(buffer, fresh);

  // And read_batch agrees with read.
  const std::uint64_t logicals[1] = {0};
  Status statuses[1];
  ASSERT_TRUE(store->read_batch(logicals, buffer, statuses).ok());
  EXPECT_EQ(buffer, fresh);

  ASSERT_TRUE(store->flush_cache().ok());
  EXPECT_EQ(store->hotness_stats().dirty_instances, 0u);
  ASSERT_TRUE(store->read(0, buffer).ok());
  EXPECT_EQ(buffer, fresh);  // folded bytes landed on media
}

TEST(StripeCache, InvalidateOnWrite) {
  Case c;
  auto store = make_store(c, "inv", true);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      fill_canonical(*store, 0, store->num_logical_units(), kSeed).ok());
  // Fold the seed fill's absorbed writes so the reads below are served
  // by the LRU cache, not the dirty-table pin.
  ASSERT_TRUE(store->flush_cache().ok());

  std::vector<std::uint8_t> buffer(kUnitBytes);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(store->read(7, buffer).ok());
  const std::uint64_t hits_before = store->hotness_stats().hits;
  ASSERT_TRUE(store->read(7, buffer).ok());
  ASSERT_GT(store->hotness_stats().hits, hits_before)
      << "a hot re-read must be served from cache";

  std::vector<std::uint8_t> fresh(kUnitBytes, 0x5C);
  ASSERT_TRUE(store->write(7, fresh).ok());
  EXPECT_GT(store->hotness_stats().invalidations, 0u);
  ASSERT_TRUE(store->read(7, buffer).ok());
  EXPECT_EQ(buffer, fresh) << "stale cached payload served after a write";
}

TEST(StripeCache, DegradedReadsThroughCacheAndFailDiskFoldsFirst) {
  for (const core::CodecKind codec :
       {core::CodecKind::kXorParity, core::CodecKind::kReedSolomonPQ}) {
    Case c;
    c.codec = codec;
    SCOPED_TRACE(describe(c));
    auto store = make_store(c, "deg", true);
    ASSERT_TRUE(store.ok());
    const std::uint64_t n = store->num_logical_units();
    ASSERT_TRUE(fill_canonical(*store, 0, n, kSeed).ok());

    // Dirty up some hot instances, then fail a disk: fail_disk must
    // fold the table first (dirty entries only ever cover fully
    // healthy stripes), leaving media consistent for reconstruction.
    std::vector<std::uint64_t> version(n, 0);
    drive_stream(*store, 800, version);
    ASSERT_TRUE(store->fail_disk(3).ok());
    EXPECT_EQ(store->hotness_stats().dirty_instances, 0u);

    // Every read -- direct or reconstructed -- still serves the
    // version the stream left behind, through the cache layer.
    expect_all_versioned(*store, version);

    // A hot degraded unit's reconstruction is served from cache on
    // re-read: find a lost unit, read it repeatedly, expect hits.
    ReadReceipt receipt;
    std::vector<std::uint8_t> buffer(kUnitBytes);
    std::uint64_t lost = n;
    for (std::uint64_t logical = 0; logical < n; ++logical) {
      ASSERT_TRUE(store->read(logical, buffer, &receipt).ok());
      if (receipt.kind == api::ReadPlan::Kind::kDegraded) {
        lost = logical;
        break;
      }
    }
    ASSERT_LT(lost, n) << "a failed disk must degrade some unit";
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(store->read(lost, buffer).ok());
    const std::uint64_t hits_before = store->hotness_stats().hits;
    ASSERT_TRUE(store->read(lost, buffer, &receipt).ok());
    EXPECT_GT(store->hotness_stats().hits, hits_before);
    EXPECT_EQ(receipt.num_touched, 0u)
        << "a cache hit does no physical I/O";

    // Writes during degradation bypass absorption (the stripe is no
    // longer fully healthy) yet stay correct and uncached-coherent.
    std::vector<std::uint8_t> fresh(kUnitBytes, 0xD6);
    ASSERT_TRUE(store->write(lost, fresh).ok());
    ASSERT_TRUE(store->read(lost, buffer).ok());
    EXPECT_EQ(buffer, fresh);
    EXPECT_EQ(store->hotness_stats().dirty_instances, 0u);

    // Recovery path still lands checksum-clean.
    ASSERT_TRUE(store->replace_disk(3).ok());
    const auto outcome = store->rebuild();
    ASSERT_TRUE(outcome.ok());
    const auto sweep = store->verify_stripes();
    ASSERT_TRUE(sweep.ok());
    EXPECT_EQ(*sweep, 0u);
  }
}

// ------------------------------------------------- hotness properties

TEST(StripeCacheHotness, ZipfianStreamRanksTrueHotSetTopK) {
  StripeCacheOptions options = test_cache_options();
  options.sketch_width = 2048;
  StripeCache cache(options, kUnitBytes);

  // A seeded zipfian-by-construction stream: instance i drawn with
  // weight 1/(i+1).  The true top-k is 0..k-1 by construction.
  constexpr std::uint64_t kInstances = 512;
  constexpr int kDraws = 60000;
  std::mt19937_64 rng(kSeed);
  std::vector<double> weights(kInstances);
  for (std::uint64_t i = 0; i < kInstances; ++i)
    weights[i] = 1.0 / static_cast<double>(i + 1);
  std::discrete_distribution<std::uint64_t> draw(weights.begin(),
                                                 weights.end());
  std::vector<std::uint64_t> true_count(kInstances, 0);
  for (int d = 0; d < kDraws; ++d) {
    const std::uint64_t instance = draw(rng);
    ++true_count[instance];
    (void)cache.note(instance);
  }

  // Count-min never undercounts...
  for (std::uint64_t i = 0; i < kInstances; ++i)
    EXPECT_GE(cache.estimate(i), true_count[i]) << "instance " << i;

  // ...and the estimated top-k contains the true top-k with bounded
  // error: at least 6 of the true top-8 make the estimated top-8.
  constexpr std::size_t kTopK = 8;
  std::vector<std::uint64_t> by_estimate(kInstances);
  for (std::uint64_t i = 0; i < kInstances; ++i) by_estimate[i] = i;
  std::sort(by_estimate.begin(), by_estimate.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              return cache.estimate(a) > cache.estimate(b);
            });
  std::size_t overlap = 0;
  for (std::size_t r = 0; r < kTopK; ++r)
    if (by_estimate[r] < kTopK) ++overlap;  // true top-k IS 0..k-1
  EXPECT_GE(overlap, 6u);
}

TEST(StripeCacheHotness, DecayIsMonotoneNonIncreasing) {
  StripeCacheOptions options = test_cache_options();
  options.decay_interval = 256;
  StripeCache cache(options, kUnitBytes);

  for (int i = 0; i < 200; ++i) (void)cache.note(1);
  std::uint32_t previous = cache.estimate(1);
  EXPECT_GE(previous, 200u);

  // Drive decay sweeps with OTHER instances' notes: instance 1's
  // estimate may only fall, halving per sweep, never rise.
  for (int sweep = 0; sweep < 4; ++sweep) {
    for (int i = 0; i < 300; ++i) (void)cache.note(1000 + sweep);
    const std::uint32_t now = cache.estimate(1);
    EXPECT_LE(now, previous) << "sweep " << sweep;
    previous = now;
  }
  EXPECT_GT(cache.stats().decays, 0u);
  EXPECT_LT(previous, 200u) << "decay never landed";
}

// ------------------------------------------------------- TSan target

TEST(StripeCacheConcurrent, ReadersRaceWritersAndFlushes) {
  Case c;  // memory/sync/xor: the race is in the cache layer itself
  auto made = make_store(c, "race", true);
  ASSERT_TRUE(made.ok());
  StripeStore& store = made.value();
  const std::uint64_t n = store.num_logical_units();
  ASSERT_TRUE(fill_canonical(store, 0, n, kSeed).ok());

  constexpr int kReaders = 3;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Readers hammer the hot span: cache hits, fills, dirty-table probes.
  for (int t = 0; t < kReaders; ++t)
    threads.emplace_back([&store, &failed, n, t] {
      std::mt19937_64 rng(kSeed + static_cast<std::uint64_t>(t));
      std::vector<std::uint8_t> buffer(kUnitBytes);
      for (int i = 0; i < kOpsPerThread && !failed.load(); ++i)
        if (!store.read(rng() % std::max<std::uint64_t>(n / 8, 1), buffer)
                 .ok())
          failed.store(true);
    });
  // One writer keeps absorbing into (and size-triggering folds of) the
  // same hot span the readers probe.
  threads.emplace_back([&store, &failed, n] {
    std::mt19937_64 rng(kSeed + 100);
    std::vector<std::uint8_t> buffer(kUnitBytes);
    for (int i = 0; i < kOpsPerThread && !failed.load(); ++i) {
      const std::uint64_t logical = rng() % std::max<std::uint64_t>(n / 8, 1);
      canonical_fill(logical, kSeed, buffer);
      if (!store.write(logical, buffer).ok()) failed.store(true);
    }
  });
  // One flusher races explicit fold sweeps against everyone.
  threads.emplace_back([&store, &failed] {
    for (int i = 0; i < 200 && !failed.load(); ++i)
      if (!store.flush_cache().ok()) failed.store(true);
  });
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());

  // Everything the writer left behind is canonical and media-consistent.
  ASSERT_TRUE(store.flush_cache().ok());
  const auto sweep = store.verify_stripes();
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(*sweep, 0u);
}

}  // namespace
}  // namespace pdl::io
