#include "design/subfield_design.hpp"

#include <gtest/gtest.h>

#include "design/bounds.hpp"

namespace pdl::design {
namespace {

using Param = std::pair<std::uint32_t, std::uint32_t>;

TEST(SubfieldDesign, ExistencePredicate) {
  EXPECT_TRUE(subfield_design_exists(4, 2));
  EXPECT_TRUE(subfield_design_exists(8, 2));
  EXPECT_TRUE(subfield_design_exists(16, 4));
  EXPECT_TRUE(subfield_design_exists(27, 3));
  EXPECT_TRUE(subfield_design_exists(64, 8));
  EXPECT_TRUE(subfield_design_exists(64, 4));
  EXPECT_TRUE(subfield_design_exists(81, 9));
  EXPECT_TRUE(subfield_design_exists(9, 9));  // m = 1 edge case
  EXPECT_FALSE(subfield_design_exists(16, 8));  // 16 is not a power of 8
  EXPECT_FALSE(subfield_design_exists(12, 2));  // v not a power of k
  EXPECT_FALSE(subfield_design_exists(36, 6));  // k = 6 not a prime power
  EXPECT_FALSE(subfield_design_exists(8, 1));
}

class SubfieldSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SubfieldSweep, ProducesLambda1Bibd) {
  const auto [v, k] = GetParam();
  const BlockDesign design = make_subfield_design(v, k);
  const auto check = verify_bibd(design);
  ASSERT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(check.params, subfield_design_params(v, k));
  EXPECT_EQ(check.params.lambda, 1u) << "Theorem 6 designs have lambda = 1";
}

TEST_P(SubfieldSweep, MeetsTheorem7LowerBoundExactly) {
  const auto [v, k] = GetParam();
  const auto params = subfield_design_params(v, k);
  EXPECT_EQ(params.b, theorem7_lower_bound(v, k))
      << "Theorem 6 designs are optimally small";
}

INSTANTIATE_TEST_SUITE_P(Cases, SubfieldSweep,
                         ::testing::Values(Param{4, 2}, Param{8, 2},
                                           Param{16, 2}, Param{16, 4},
                                           Param{9, 3}, Param{27, 3},
                                           Param{81, 3}, Param{81, 9},
                                           Param{25, 5}, Param{49, 7},
                                           Param{64, 2}, Param{64, 4},
                                           Param{64, 8}, Param{121, 11},
                                           Param{128, 2}, Param{256, 4},
                                           Param{256, 16}, Param{243, 3}));

TEST(SubfieldDesign, RejectsInapplicablePairs) {
  EXPECT_THROW(make_subfield_design(12, 2), std::invalid_argument);
  EXPECT_THROW(make_subfield_design(16, 8), std::invalid_argument);
  EXPECT_THROW(make_subfield_design(36, 6), std::invalid_argument);
}

TEST(SubfieldDesign, BlocksAreAffineSubspaces) {
  // Every block of the (16, 4) design is a coset of a 1-dimensional
  // GF(4)-subspace: closed under u - w + z for u, w, z in the block.
  // Spot-check: all blocks have pairwise XOR-differences forming a closed
  // set of size k (in characteristic 2, the difference set of a coset of a
  // subspace is the subspace itself).
  const BlockDesign design = make_subfield_design(16, 4);
  for (const auto& block : design.blocks) {
    std::set<algebra::Elem> diffs;
    for (const auto a : block) {
      for (const auto b : block) diffs.insert(a ^ b);
    }
    EXPECT_EQ(diffs.size(), 4u) << "difference set must be the subspace";
  }
}

TEST(SubfieldDesign, EdgeCaseVEqualsK) {
  // v = k: exactly one block, the whole point set.
  const BlockDesign design = make_subfield_design(8, 8);
  ASSERT_EQ(design.b(), 1u);
  EXPECT_EQ(design.blocks[0].size(), 8u);
}

TEST(SubfieldDesign, DeepTower) {
  // v = 2^6 with k = 2: b = v(v-1)/2 pairs -- the complete 2-design.
  const BlockDesign design = make_subfield_design(64, 2);
  EXPECT_EQ(design.b(), 64u * 63u / 2);
  EXPECT_TRUE(verify_bibd(design).ok);
}

}  // namespace
}  // namespace pdl::design
