// Regression suite for the torn-parity RMW window.  A small write's
// parity maintenance can land PARTIALLY (some stripes writes succeed,
// some fail); the store compensates by rolling the landed writes back,
// and before this suite's bugfix a FAILED compensation simply returned
// the original error -- leaving parity silently inconsistent with data,
// so a later degraded read or rebuild decode would fabricate bytes.
// The store now marks the stripe instance "torn", surfaces
// kParityInconsistent, refuses every parity-trusting operation on the
// instance, and heals (full re-encode) on the next full-knowledge write.
//
// The scripted fault injector forces the exact double-fault
// interleavings deterministically: the base execute_batch issues a
// batch's requests strictly in order, so lifetime write ordinals
// identify "the data write of the Nth store.write()" precisely.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/array.hpp"
#include "io/disk_backend.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace pdl::io {
namespace {

constexpr std::uint32_t kUnitBytes = 40;
constexpr std::uint32_t kIterations = 2;
constexpr std::uint64_t kSeed = 0x70A1;

struct TornFixture {
  std::unique_ptr<StripeStore> store;
  FaultInjectionBackend* faults = nullptr;  ///< owned by the store

  /// num_disks=9, stripe_size=4 (complete-ish catalog pick), dedicated
  /// sparing: every unit write while healthy is an RMW touching
  /// 1 + num_parity units.
  static TornFixture create(core::CodecKind codec,
                            std::vector<std::uint64_t> fail_write_ops) {
    TornFixture f;
    auto array = api::Array::create({.num_disks = 9, .stripe_size = 4}, {},
                                    {.codec = codec});
    EXPECT_TRUE(array.ok()) << array.status().to_string();
    if (!array.ok()) return f;
    auto fault_backend = std::make_unique<FaultInjectionBackend>(
        make_memory_backend(),
        FaultInjectionOptions{.fail_write_ops = std::move(fail_write_ops)});
    f.faults = fault_backend.get();
    auto store = StripeStore::create(
        std::move(array).value(),
        {.unit_bytes = kUnitBytes, .iterations = kIterations},
        std::move(fault_backend));
    EXPECT_TRUE(store.ok()) << store.status().to_string();
    if (store.ok())
      f.store = std::make_unique<StripeStore>(std::move(store).value());
    return f;
  }
};

/// Writes-per-unit while healthy: data + every parity.
std::uint64_t writes_per_unit(const StripeStore& store) {
  return 1 + store.array().num_parity_units();
}

/// Ordinal script that makes the FIRST write after `fill` double-fault:
/// under XOR the batch is [parity, data] and the compensation rewrites
/// parity, so failing ordinals {base+2, base+3} means "parity landed,
/// data failed, parity restore failed".  Under RS the batch is
/// [data, P, Q] and the first compensation rewrites the data unit, so
/// {base+3, base+4} means "data and P landed, Q failed, data rollback
/// failed".
std::vector<std::uint64_t> double_fault_script(core::CodecKind codec,
                                               std::uint64_t fill_units,
                                               std::uint64_t per_unit) {
  const std::uint64_t base = fill_units * per_unit;
  if (codec == core::CodecKind::kXorParity) return {base + 2, base + 3};
  return {base + 3, base + 4};
}

void expect_canonical(StripeStore& store, std::uint64_t logical,
                      const char* context) {
  std::vector<std::uint8_t> unit(store.unit_bytes());
  std::vector<std::uint8_t> expected(store.unit_bytes());
  ASSERT_TRUE(store.read(logical, unit).ok()) << context;
  canonical_fill(logical, kSeed, expected);
  EXPECT_EQ(unit, expected) << context;
}

void run_double_fault_marks_torn(core::CodecKind codec) {
  auto f = TornFixture::create(codec, {});
  ASSERT_TRUE(f.store);
  StripeStore& store = *f.store;
  const std::uint64_t n = store.num_logical_units();
  ASSERT_TRUE(fill_canonical(store, 0, n, kSeed).ok());
  const std::uint64_t per_unit = writes_per_unit(store);

  // Re-create with the scripted faults positioned right after the fill.
  auto scripted = TornFixture::create(
      codec, double_fault_script(codec, n, per_unit));
  ASSERT_TRUE(scripted.store);
  StripeStore& s = *scripted.store;
  ASSERT_TRUE(fill_canonical(s, 0, n, kSeed).ok());
  EXPECT_EQ(s.torn_parity_instances(), 0u);

  // The double-fault write: partial stripe write AND failed compensation.
  const std::uint64_t victim = 0;
  std::vector<std::uint8_t> fresh(s.unit_bytes(), 0xA5);
  const Status torn_write = s.write(victim, fresh);
  EXPECT_EQ(torn_write.code(), StatusCode::kParityInconsistent)
      << torn_write.to_string();
  EXPECT_EQ(s.torn_parity_instances(), 1u);
  const auto ref = s.array().logical_ref(victim);
  EXPECT_TRUE(s.parity_torn(ref.stripe, ref.iteration));
  EXPECT_FALSE(s.parity_torn(ref.stripe, ref.iteration + 1))
      << "the tear must be per stripe INSTANCE, not per stripe";

  // Healthy (direct) reads never trust parity: still served.
  std::vector<std::uint8_t> unit(s.unit_bytes());
  EXPECT_TRUE(s.read(victim, unit).ok());

  // Degraded reads on the torn instance are refused -- the decode would
  // otherwise fabricate bytes from inconsistent parity.
  std::array<Physical, 64> survivors;
  const auto plan = s.array().locate(victim, survivors);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(s.fail_disk(plan->target.disk).ok());
  const Status degraded = s.read(victim, unit);
  EXPECT_EQ(degraded.code(), StatusCode::kParityInconsistent)
      << degraded.to_string();

  // read_batch refuses the torn unit with the same typed status but
  // keeps serving its batchmates.
  const std::uint64_t logicals[2] = {victim, victim + 1};
  std::vector<std::uint8_t> out(2 * s.unit_bytes());
  Status statuses[2];
  (void)s.read_batch(logicals, out, statuses, {});
  EXPECT_EQ(statuses[0].code(), StatusCode::kParityInconsistent);
  EXPECT_TRUE(statuses[1].ok()) << statuses[1].to_string();

  // A rebuild step that would decode data THROUGH the torn parity is
  // refused with the same typed status (not silently corrupted).
  ASSERT_TRUE(s.replace_disk(plan->target.disk).ok());
  const auto outcome = s.rebuild();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kParityInconsistent)
      << outcome.status().to_string();

  // A reconstruct-write on the torn + degraded instance is unhealable.
  const Status unhealable = s.write(victim, fresh);
  EXPECT_EQ(unhealable.code(), StatusCode::kParityInconsistent);
}

TEST(TornParity, DoubleFaultMarksTornAndBlocksParityTrustingOpsXor) {
  run_double_fault_marks_torn(core::CodecKind::kXorParity);
}

TEST(TornParity, DoubleFaultMarksTornAndBlocksParityTrustingOpsRs) {
  run_double_fault_marks_torn(core::CodecKind::kReedSolomonPQ);
}

void run_rmw_heals_torn_instance(core::CodecKind codec) {
  auto probe = TornFixture::create(codec, {});
  ASSERT_TRUE(probe.store);
  const std::uint64_t n = probe.store->num_logical_units();
  ASSERT_TRUE(fill_canonical(*probe.store, 0, n, kSeed).ok());
  const std::uint64_t per_unit = writes_per_unit(*probe.store);

  auto f = TornFixture::create(codec,
                               double_fault_script(codec, n, per_unit));
  ASSERT_TRUE(f.store);
  StripeStore& s = *f.store;
  ASSERT_TRUE(fill_canonical(s, 0, n, kSeed).ok());

  const std::uint64_t victim = 0;
  std::vector<std::uint8_t> unit(s.unit_bytes());
  canonical_fill(victim, kSeed, unit);
  EXPECT_EQ(s.write(victim, unit).code(), StatusCode::kParityInconsistent);
  EXPECT_EQ(s.torn_parity_instances(), 1u);

  // The next RMW has every data unit at hand, so it doubles as the
  // heal: full parity re-encode, tear cleared, receipt reporting the
  // peer reads that fed it.
  WriteReceipt receipt;
  const Status healed = s.write(victim, unit, &receipt);
  ASSERT_TRUE(healed.ok()) << healed.to_string();
  EXPECT_EQ(s.torn_parity_instances(), 0u);
  EXPECT_EQ(receipt.num_writes, 1 + s.array().num_parity_units());

  // Parity is consistent again: every degraded decode of the stripe
  // serves canonical bytes.
  std::array<Physical, 64> survivors;
  const auto plan = s.array().locate(victim, survivors);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(s.fail_disk(plan->target.disk).ok());
  expect_canonical(s, victim, "degraded read after heal");
  if (codec == core::CodecKind::kReedSolomonPQ) {
    // Two concurrent failures: the healed stripe must decode through
    // BOTH parities.
    const DiskId second = (plan->target.disk + 1) % s.array().num_disks();
    ASSERT_TRUE(s.fail_disk(second).ok());
    expect_canonical(s, victim, "double-degraded read after heal");
  }
}

TEST(TornParity, RmwWriteHealsTornInstanceXor) {
  run_rmw_heals_torn_instance(core::CodecKind::kXorParity);
}

TEST(TornParity, RmwWriteHealsTornInstanceRs) {
  run_rmw_heals_torn_instance(core::CodecKind::kReedSolomonPQ);
}

TEST(TornParity, SingleFaultCompensationStillRestoresConsistency) {
  // One failed write with a SUCCESSFUL compensation must NOT tear the
  // stripe: the rollback restores the pre-write state exactly, so a
  // degraded read still serves the old canonical bytes.
  auto probe = TornFixture::create(core::CodecKind::kReedSolomonPQ, {});
  ASSERT_TRUE(probe.store);
  const std::uint64_t n = probe.store->num_logical_units();
  ASSERT_TRUE(fill_canonical(*probe.store, 0, n, kSeed).ok());
  const std::uint64_t per_unit = writes_per_unit(*probe.store);

  // Fail only the Q write of the first post-fill RMW ([data, P, Q]):
  // both compensations (data rollback, P re-fold) succeed.
  auto f = TornFixture::create(core::CodecKind::kReedSolomonPQ,
                               {n * per_unit + 3});
  ASSERT_TRUE(f.store);
  StripeStore& s = *f.store;
  ASSERT_TRUE(fill_canonical(s, 0, n, kSeed).ok());

  const std::uint64_t victim = 0;
  std::vector<std::uint8_t> fresh(s.unit_bytes(), 0x5A);
  const Status partial = s.write(victim, fresh);
  EXPECT_EQ(partial.code(), StatusCode::kIoError) << partial.to_string();
  EXPECT_EQ(s.torn_parity_instances(), 0u);

  // Old bytes everywhere, parity consistent: degraded decode through
  // either parity still serves the canonical pre-write content.
  expect_canonical(s, victim, "direct read after rollback");
  std::array<Physical, 64> survivors;
  const auto plan = s.array().locate(victim, survivors);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(s.fail_disk(plan->target.disk).ok());
  expect_canonical(s, victim, "degraded read after rollback");
}

}  // namespace
}  // namespace pdl::io
