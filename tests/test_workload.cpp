#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "api/array.hpp"
#include "io/workload_driver.hpp"

namespace pdl::sim {
namespace {

TEST(Workload, DeterministicInSeed) {
  const WorkloadConfig config{.arrival_per_ms = 0.5,
                              .write_fraction = 0.3,
                              .working_set = 1000,
                              .duration_ms = 1000.0,
                              .seed = 7};
  const auto a = generate_workload(config);
  const auto b = generate_workload(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].logical, b[i].logical);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
  // A different seed gives a different stream.
  auto config2 = config;
  config2.seed = 8;
  const auto c = generate_workload(config2);
  EXPECT_NE(a.size() == c.size() && a[0].logical == c[0].logical, true);
}

TEST(Workload, ArrivalsSortedAndWithinHorizon) {
  const WorkloadConfig config{.arrival_per_ms = 1.0,
                              .write_fraction = 0.5,
                              .working_set = 100,
                              .duration_ms = 500.0,
                              .seed = 1};
  const auto requests = generate_workload(config);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_LT(requests[i].arrival_ms, 500.0);
    EXPECT_LT(requests[i].logical, 100u);
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_ms, requests[i - 1].arrival_ms);
    }
  }
}

TEST(Workload, RateApproximatelyPoisson) {
  const WorkloadConfig config{.arrival_per_ms = 0.2,
                              .write_fraction = 0.5,
                              .working_set = 10,
                              .duration_ms = 100'000.0,
                              .seed = 3};
  const auto requests = generate_workload(config);
  const double expected = 0.2 * 100'000.0;
  EXPECT_NEAR(static_cast<double>(requests.size()), expected,
              5 * std::sqrt(expected));
}

TEST(Workload, WriteFractionRespected) {
  const WorkloadConfig config{.arrival_per_ms = 0.5,
                              .write_fraction = 0.25,
                              .working_set = 10,
                              .duration_ms = 50'000.0,
                              .seed = 4};
  const auto requests = generate_workload(config);
  std::size_t writes = 0;
  for (const auto& r : requests) writes += r.is_write;
  const double fraction = static_cast<double>(writes) / requests.size();
  EXPECT_NEAR(fraction, 0.25, 0.02);
}

TEST(Workload, AllReadsAllWritesExtremes) {
  WorkloadConfig config{.arrival_per_ms = 0.5,
                        .write_fraction = 0.0,
                        .working_set = 10,
                        .duration_ms = 1000.0,
                        .seed = 5};
  for (const auto& r : generate_workload(config)) EXPECT_FALSE(r.is_write);
  config.write_fraction = 1.0;
  for (const auto& r : generate_workload(config)) EXPECT_TRUE(r.is_write);
}

TEST(Workload, InvalidConfigRejected) {
  WorkloadConfig config;
  config.working_set = 0;
  EXPECT_THROW(generate_workload(config), std::invalid_argument);
  config.working_set = 10;
  config.arrival_per_ms = 0.0;
  EXPECT_THROW(generate_workload(config), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::sim

// Latency quantiles of the I/O workload driver's stats.  The convention
// is pinned to nearest-rank: rank = clamp(ceil(p * n), 1, n), so p99
// over 100 samples is the 99th order statistic (not the 100th, as a
// floor(p * (n - 1)) index would give), p = 0 is the minimum, and p = 1
// is the maximum.
namespace pdl::io {
namespace {

/// Stats whose read latencies are exactly `samples` (shuffled order
/// must not matter -- the quantile sorts internally).
WorkloadStats stats_with(std::vector<std::uint32_t> samples) {
  WorkloadStats stats;
  stats.read_latency_us = samples;
  // Mirror into the write vector reversed: both accessors share the
  // nearest-rank helper and must agree on every pin below.
  stats.write_latency_us.assign(samples.rbegin(), samples.rend());
  return stats;
}

TEST(WorkloadQuantile, EmptyAndSingleSample) {
  const WorkloadStats empty;
  EXPECT_EQ(empty.read_latency_quantile_us(0.0), 0u);
  EXPECT_EQ(empty.read_latency_quantile_us(0.99), 0u);
  EXPECT_EQ(empty.write_latency_quantile_us(1.0), 0u);

  const WorkloadStats one = stats_with({7});
  for (const double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(one.read_latency_quantile_us(p), 7u) << "p=" << p;
    EXPECT_EQ(one.write_latency_quantile_us(p), 7u) << "p=" << p;
  }
}

TEST(WorkloadQuantile, NearestRankPins) {
  // 1..100 shuffled-ish: nearest-rank makes every pin exact.
  std::vector<std::uint32_t> samples;
  for (std::uint32_t v = 100; v >= 1; --v) samples.push_back(v);
  const WorkloadStats stats = stats_with(samples);

  EXPECT_EQ(stats.read_latency_quantile_us(0.0), 1u);    // min
  EXPECT_EQ(stats.read_latency_quantile_us(0.01), 1u);   // ceil(1) = 1st
  EXPECT_EQ(stats.read_latency_quantile_us(0.50), 50u);  // ceil(50) = 50th
  EXPECT_EQ(stats.read_latency_quantile_us(0.99), 99u);  // 99th, NOT 100th
  EXPECT_EQ(stats.read_latency_quantile_us(0.995), 100u);  // ceil(99.5)
  EXPECT_EQ(stats.read_latency_quantile_us(1.0), 100u);  // max
  EXPECT_EQ(stats.write_latency_quantile_us(0.99), 99u);
}

TEST(WorkloadQuantile, FractionalRanksRoundUpAndClampOutOfRange) {
  const WorkloadStats three = stats_with({10, 20, 30});
  EXPECT_EQ(three.read_latency_quantile_us(0.33), 10u);  // ceil(0.99) = 1st
  EXPECT_EQ(three.read_latency_quantile_us(0.34), 20u);  // ceil(1.02) = 2nd
  EXPECT_EQ(three.read_latency_quantile_us(0.67), 30u);  // ceil(2.01) = 3rd
  // Out-of-range p clamps rather than indexing out of bounds.
  EXPECT_EQ(three.read_latency_quantile_us(-0.5), 10u);
  EXPECT_EQ(three.read_latency_quantile_us(2.0), 30u);
}

// The zipfian harmonic normalizer is computed ONCE per (n, theta) by the
// shared io::zipf_zetan helper (the fleet driver used to recompute it
// inline per construction).  Regression: the cached value is exactly the
// direct harmonic sum, every call is bitwise-identical, and a
// fixed-seed single-threaded zipfian run is deterministic end to end.
TEST(ZipfZetan, CachedValueMatchesDirectSumBitwise) {
  constexpr std::uint64_t kN = 4096;
  constexpr double kTheta = 0.99;
  double direct = 0;
  for (std::uint64_t i = 1; i <= kN; ++i)
    direct += 1.0 / std::pow(static_cast<double>(i), kTheta);
  const double first = zipf_zetan(kN, kTheta);
  const double second = zipf_zetan(kN, kTheta);  // cache hit
  EXPECT_EQ(first, direct);   // same summation order: bitwise equal
  EXPECT_EQ(first, second);   // the cache returns the identical value
  EXPECT_NE(zipf_zetan(kN, 0.5), first);
  EXPECT_NE(zipf_zetan(kN / 2, kTheta), first);
}

TEST(ZipfZetan, FixedSeedZipfianRunIsDeterministic) {
  const auto make = [] {
    auto array = api::Array::create({13, 4}, {}, {});
    EXPECT_TRUE(array.ok());
    return StripeStore::create(std::move(array).value(), {.unit_bytes = 64});
  };
  auto a = make();
  auto b = make();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const WorkloadOptions options{.num_threads = 1,
                                .ops_per_thread = 2000,
                                .read_fraction = 0.5,
                                .pattern = AccessPattern::kZipfian,
                                .zipf_theta = 0.99,
                                .seed = 42};
  WorkloadStats sa = WorkloadDriver(*a, options).run();
  WorkloadStats sb = WorkloadDriver(*b, options).run();
  EXPECT_EQ(sa.reads, sb.reads);
  EXPECT_EQ(sa.writes, sb.writes);
  EXPECT_EQ(sa.bytes_moved, sb.bytes_moved);
  EXPECT_EQ(sa.errors, 0u);
  // Identical op streams leave identical media behind.
  const auto sums_a = a->checksum_disks();
  const auto sums_b = b->checksum_disks();
  ASSERT_TRUE(sums_a.ok());
  ASSERT_TRUE(sums_b.ok());
  EXPECT_EQ(*sums_a, *sums_b);
}

}  // namespace
}  // namespace pdl::io
