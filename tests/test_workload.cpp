#include "sim/workload.hpp"

#include <gtest/gtest.h>

namespace pdl::sim {
namespace {

TEST(Workload, DeterministicInSeed) {
  const WorkloadConfig config{.arrival_per_ms = 0.5,
                              .write_fraction = 0.3,
                              .working_set = 1000,
                              .duration_ms = 1000.0,
                              .seed = 7};
  const auto a = generate_workload(config);
  const auto b = generate_workload(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].logical, b[i].logical);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
  // A different seed gives a different stream.
  auto config2 = config;
  config2.seed = 8;
  const auto c = generate_workload(config2);
  EXPECT_NE(a.size() == c.size() && a[0].logical == c[0].logical, true);
}

TEST(Workload, ArrivalsSortedAndWithinHorizon) {
  const WorkloadConfig config{.arrival_per_ms = 1.0,
                              .write_fraction = 0.5,
                              .working_set = 100,
                              .duration_ms = 500.0,
                              .seed = 1};
  const auto requests = generate_workload(config);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_LT(requests[i].arrival_ms, 500.0);
    EXPECT_LT(requests[i].logical, 100u);
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_ms, requests[i - 1].arrival_ms);
    }
  }
}

TEST(Workload, RateApproximatelyPoisson) {
  const WorkloadConfig config{.arrival_per_ms = 0.2,
                              .write_fraction = 0.5,
                              .working_set = 10,
                              .duration_ms = 100'000.0,
                              .seed = 3};
  const auto requests = generate_workload(config);
  const double expected = 0.2 * 100'000.0;
  EXPECT_NEAR(static_cast<double>(requests.size()), expected,
              5 * std::sqrt(expected));
}

TEST(Workload, WriteFractionRespected) {
  const WorkloadConfig config{.arrival_per_ms = 0.5,
                              .write_fraction = 0.25,
                              .working_set = 10,
                              .duration_ms = 50'000.0,
                              .seed = 4};
  const auto requests = generate_workload(config);
  std::size_t writes = 0;
  for (const auto& r : requests) writes += r.is_write;
  const double fraction = static_cast<double>(writes) / requests.size();
  EXPECT_NEAR(fraction, 0.25, 0.02);
}

TEST(Workload, AllReadsAllWritesExtremes) {
  WorkloadConfig config{.arrival_per_ms = 0.5,
                        .write_fraction = 0.0,
                        .working_set = 10,
                        .duration_ms = 1000.0,
                        .seed = 5};
  for (const auto& r : generate_workload(config)) EXPECT_FALSE(r.is_write);
  config.write_fraction = 1.0;
  for (const auto& r : generate_workload(config)) EXPECT_TRUE(r.is_write);
}

TEST(Workload, InvalidConfigRejected) {
  WorkloadConfig config;
  config.working_set = 0;
  EXPECT_THROW(generate_workload(config), std::invalid_argument);
  config.working_set = 10;
  config.arrival_per_ms = 0.0;
  EXPECT_THROW(generate_workload(config), std::invalid_argument);
}

}  // namespace
}  // namespace pdl::sim
