#include "core/xor_codec.hpp"

#include <gtest/gtest.h>

#include <random>

namespace pdl::core {
namespace {

std::vector<std::uint8_t> random_unit(std::size_t size, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> unit(size);
  for (auto& byte : unit) byte = static_cast<std::uint8_t>(rng());
  return unit;
}

TEST(XorCodec, ParityOfIdenticalUnitsCancels) {
  const std::vector<std::vector<std::uint8_t>> units = {
      {1, 2, 3}, {1, 2, 3}};
  EXPECT_EQ(xor_parity(units), (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(XorCodec, RoundTripRecoversAnyLostUnit) {
  const std::size_t unit_size = 64;
  std::vector<std::vector<std::uint8_t>> data;
  for (std::uint64_t i = 0; i < 4; ++i) {
    data.push_back(random_unit(unit_size, i));
  }
  const auto parity = xor_parity(data);

  for (std::size_t lost = 0; lost < data.size(); ++lost) {
    std::vector<std::vector<std::uint8_t>> survivors;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (i != lost) survivors.push_back(data[i]);
    }
    survivors.push_back(parity);
    EXPECT_EQ(xor_reconstruct(survivors), data[lost])
        << "lost unit " << lost;
  }
}

TEST(XorCodec, LostParityIsRecomputable) {
  std::vector<std::vector<std::uint8_t>> data;
  for (std::uint64_t i = 0; i < 3; ++i) data.push_back(random_unit(32, 10 + i));
  const auto parity = xor_parity(data);
  EXPECT_EQ(xor_reconstruct(data), parity);
}

TEST(XorCodec, XorIntoSizeMismatchThrows) {
  std::vector<std::uint8_t> a = {1, 2, 3};
  const std::vector<std::uint8_t> b = {1, 2};
  EXPECT_THROW(xor_into(a, b), std::invalid_argument);
}

TEST(XorCodec, EmptyInputThrows) {
  EXPECT_THROW(xor_parity({}), std::invalid_argument);
}

TEST(XorCodec, SmallWriteParityUpdateIdentity) {
  // The RMW identity used by the simulator's small writes:
  // new_parity = old_parity XOR old_data XOR new_data.
  const auto d0 = random_unit(16, 1), d1 = random_unit(16, 2),
             d2 = random_unit(16, 3), d1_new = random_unit(16, 4);
  const auto old_parity =
      xor_parity(std::vector<std::vector<std::uint8_t>>{d0, d1, d2});
  auto incremental = old_parity;
  xor_into(incremental, d1);
  xor_into(incremental, d1_new);
  const auto recomputed =
      xor_parity(std::vector<std::vector<std::uint8_t>>{d0, d1_new, d2});
  EXPECT_EQ(incremental, recomputed);
}

}  // namespace
}  // namespace pdl::core
