// Property tests for the parity code (Figure 1): randomized round-trips
// across unit sizes from 1 byte to 64 KiB -- parity of k units, drop any
// one, reconstruct bit-exact; xor_into self-inverse; the span-based
// no-copy forms agree with the allocating forms; size-mismatch and
// empty-input precondition checks.

#include "core/xor_codec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace pdl::core {
namespace {

std::vector<std::uint8_t> random_unit(std::size_t size, std::mt19937_64& rng) {
  std::vector<std::uint8_t> unit(size);
  for (auto& byte : unit) byte = static_cast<std::uint8_t>(rng());
  return unit;
}

constexpr std::size_t kUnitSizes[] = {1, 2, 3, 7, 16, 64, 512, 4096, 65536};

TEST(XorCodecProperties, AnyDroppedUnitReconstructsBitExact) {
  std::mt19937_64 rng(0xC0DEC);
  for (const std::size_t size : kUnitSizes) {
    const std::size_t k = 2 + rng() % 7;  // stripe widths 2..8
    std::vector<std::vector<std::uint8_t>> data;
    for (std::size_t i = 0; i < k; ++i) data.push_back(random_unit(size, rng));
    const auto parity = xor_parity(data);

    // Drop each data unit in turn: survivors = other data + parity.
    for (std::size_t lost = 0; lost < k; ++lost) {
      std::vector<std::vector<std::uint8_t>> survivors;
      for (std::size_t i = 0; i < k; ++i)
        if (i != lost) survivors.push_back(data[i]);
      survivors.push_back(parity);
      EXPECT_EQ(xor_reconstruct(survivors), data[lost])
          << "size " << size << " lost " << lost;
    }
    // Drop the parity unit: survivors = all data.
    EXPECT_EQ(xor_reconstruct(data), parity) << "size " << size;
  }
}

TEST(XorCodecProperties, SpanFormsAgreeWithAllocatingForms) {
  std::mt19937_64 rng(0xBEEF);
  for (const std::size_t size : kUnitSizes) {
    const std::size_t k = 2 + rng() % 6;
    std::vector<std::vector<std::uint8_t>> data;
    for (std::size_t i = 0; i < k; ++i) data.push_back(random_unit(size, rng));

    std::vector<std::span<const std::uint8_t>> views;
    for (const auto& unit : data) views.emplace_back(unit);

    std::vector<std::uint8_t> dst = random_unit(size, rng);  // pre-dirtied
    xor_parity_into(dst, views);
    EXPECT_EQ(dst, xor_parity(data)) << "size " << size;

    std::vector<std::uint8_t> rebuilt(size, 0xAA);
    xor_reconstruct_into(rebuilt, views);
    EXPECT_EQ(rebuilt, xor_reconstruct(data)) << "size " << size;
  }
}

TEST(XorCodecProperties, XorIntoIsSelfInverse) {
  std::mt19937_64 rng(0xF00D);
  for (const std::size_t size : kUnitSizes) {
    const auto original = random_unit(size, rng);
    auto other = random_unit(size, rng);
    other[0] |= 1;  // never the identity mask
    auto unit = original;
    xor_into(unit, other);
    EXPECT_NE(unit, original);
    xor_into(unit, other);
    EXPECT_EQ(unit, original) << "size " << size;
  }
}

TEST(XorCodecProperties, ParityOfSingleUnitIsTheUnit) {
  std::mt19937_64 rng(7);
  const std::vector<std::vector<std::uint8_t>> one = {random_unit(128, rng)};
  EXPECT_EQ(xor_parity(one), one.front());
}

TEST(XorCodecProperties, SizeMismatchesThrow) {
  std::vector<std::uint8_t> a(4, 1);
  const std::vector<std::uint8_t> b(3, 1);
  EXPECT_THROW(xor_into(a, b), std::invalid_argument);

  const std::vector<std::vector<std::uint8_t>> ragged = {{1, 2, 3}, {1, 2}};
  EXPECT_THROW(xor_parity(ragged), std::invalid_argument);
  EXPECT_THROW(xor_reconstruct(ragged), std::invalid_argument);

  std::vector<std::uint8_t> dst(3, 0);
  const std::vector<std::uint8_t> unit(2, 0);
  const std::vector<std::span<const std::uint8_t>> views = {unit};
  EXPECT_THROW(xor_parity_into(dst, views), std::invalid_argument);
}

TEST(XorCodecProperties, EmptyInputsThrow) {
  EXPECT_THROW(xor_parity({}), std::invalid_argument);
  EXPECT_THROW(xor_reconstruct({}), std::invalid_argument);
  std::vector<std::uint8_t> dst(8, 0);
  EXPECT_THROW(xor_parity_into(dst, {}), std::invalid_argument);
  EXPECT_THROW(xor_reconstruct_into(dst, {}), std::invalid_argument);
}

// ------------------------------------------------------------------
// Vectorized-vs-scalar differential: the word-at-a-time blocked kernels
// must agree byte-for-byte with the detail:: scalar reference loops on
// every size class (sub-word tails, word-but-not-block sizes, exact
// block multiples) and every misalignment.

TEST(XorCodecProperties, VectorizedXorIntoMatchesScalarReference) {
  std::mt19937_64 rng(0x51AD);
  // Sizes straddling the 8-byte word and 64-byte block boundaries.
  constexpr std::size_t kSizes[] = {0,  1,  7,   8,   9,    15,   16,  63,
                                    64, 65, 127, 128, 129,  200,  511, 512,
                                    513, 4095, 4096, 4097, 65536, 65537};
  for (const std::size_t size : kSizes) {
    for (const std::size_t misalign : {0u, 1u, 3u, 7u}) {
      // Carve misaligned windows out of larger buffers.
      auto dst_buf = random_unit(size + misalign, rng);
      auto src_buf = random_unit(size + misalign, rng);
      std::vector<std::uint8_t> dst_vec(dst_buf.begin() + misalign,
                                        dst_buf.end());
      std::vector<std::uint8_t> dst_scalar = dst_vec;
      const std::span<const std::uint8_t> src{src_buf.data() + misalign,
                                              size};
      xor_into(dst_vec, src);
      detail::xor_into_scalar(dst_scalar, src);
      EXPECT_EQ(dst_vec, dst_scalar)
          << "size " << size << " misalign " << misalign;
    }
  }
}

TEST(XorCodecProperties, VectorizedParityMatchesScalarReference) {
  std::mt19937_64 rng(0xB10C);
  constexpr std::size_t kSizes[] = {1, 7, 63, 64, 65, 500, 4096, 65537};
  for (const std::size_t size : kSizes) {
    for (std::size_t fan_in = 1; fan_in <= 9; ++fan_in) {
      std::vector<std::vector<std::uint8_t>> data;
      for (std::size_t i = 0; i < fan_in; ++i)
        data.push_back(random_unit(size, rng));
      std::vector<std::span<const std::uint8_t>> views;
      for (const auto& unit : data) views.emplace_back(unit);

      auto dst_vec = random_unit(size, rng);  // pre-dirtied
      auto dst_scalar = random_unit(size, rng);
      xor_parity_into(dst_vec, views);
      detail::xor_parity_into_scalar(dst_scalar, views);
      EXPECT_EQ(dst_vec, dst_scalar)
          << "size " << size << " fan_in " << fan_in;
    }
  }
}

TEST(XorCodecProperties, ParityIntoToleratesDstAliasingAUnit) {
  // The store's read-modify-write folds parity in place: dst is also
  // units[0].  The blocked kernel must behave as if sources were
  // snapshotted first.
  std::mt19937_64 rng(0xA11A5);
  for (const std::size_t size : {64u, 96u, 4096u}) {
    auto parity = random_unit(size, rng);
    const auto old_data = random_unit(size, rng);
    const auto new_data = random_unit(size, rng);
    auto expected = parity;
    detail::xor_into_scalar(expected, old_data);
    detail::xor_into_scalar(expected, new_data);

    const std::span<const std::uint8_t> views[] = {parity, old_data,
                                                   new_data};
    xor_parity_into(parity, views);
    EXPECT_EQ(parity, expected) << "size " << size;
  }
}

TEST(XorCodecProperties, ZeroLengthUnitsAreLegal) {
  // Degenerate but well-formed: zero-byte units round-trip trivially.
  const std::vector<std::vector<std::uint8_t>> units = {{}, {}};
  EXPECT_TRUE(xor_parity(units).empty());
  std::vector<std::uint8_t> dst;
  const std::vector<std::uint8_t> empty;
  const std::vector<std::span<const std::uint8_t>> views = {empty};
  xor_parity_into(dst, views);
  EXPECT_TRUE(dst.empty());
}

}  // namespace
}  // namespace pdl::core
