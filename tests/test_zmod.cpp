#include "algebra/zmod.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "algebra/numtheory.hpp"

namespace pdl::algebra {
namespace {

class ZmodAxioms : public ::testing::TestWithParam<Elem> {};

TEST_P(ZmodAxioms, SatisfiesRingAxioms) {
  const ZmodRing ring(GetParam());
  EXPECT_TRUE(check_ring_axioms(ring).empty());
}

TEST_P(ZmodAxioms, UnitsAreExactlyTheCoprimeResidues) {
  const ZmodRing ring(GetParam());
  const Elem m = ring.order();
  std::uint32_t units = 0;
  for (Elem a = 0; a < m; ++a) {
    const bool coprime = std::gcd(a, m) == 1;
    ASSERT_EQ(ring.is_unit(a), coprime) << "a=" << a << " m=" << m;
    if (coprime) {
      ++units;
      EXPECT_EQ(ring.mul(a, *ring.inverse(a)), ring.one());
    }
  }
  EXPECT_EQ(units, euler_phi(m));
}

INSTANTIATE_TEST_SUITE_P(Moduli, ZmodAxioms,
                         ::testing::Values(2, 3, 4, 6, 8, 9, 12, 15, 16, 21,
                                           30));

TEST(ZmodRing, RejectsTrivialModuli) {
  EXPECT_THROW(ZmodRing(0), std::invalid_argument);
  EXPECT_THROW(ZmodRing(1), std::invalid_argument);
}

TEST(ZmodRing, KnownArithmetic) {
  const ZmodRing ring(10);
  EXPECT_EQ(ring.add(7, 8), 5u);
  EXPECT_EQ(ring.mul(7, 8), 6u);
  EXPECT_EQ(ring.neg(3), 7u);
  EXPECT_EQ(ring.sub(3, 7), 6u);
  EXPECT_EQ(ring.pow(3, 4), 1u);  // 81 mod 10
  EXPECT_EQ(*ring.inverse(3), 7u);  // 21 = 1 mod 10
  EXPECT_FALSE(ring.inverse(5).has_value());
  EXPECT_EQ(ring.name(), "Z_10");
}

TEST(ZmodRing, AdditiveOrder) {
  const ZmodRing ring(12);
  EXPECT_EQ(ring.additive_order(1), 12u);
  EXPECT_EQ(ring.additive_order(4), 3u);
  EXPECT_EQ(ring.additive_order(6), 2u);
}

TEST(ZmodRing, MultiplicativeOrderOfUnits) {
  const ZmodRing ring(7);
  EXPECT_EQ(ring.multiplicative_order(3), 6u);  // 3 generates Z_7*
  EXPECT_EQ(ring.multiplicative_order(2), 3u);
  EXPECT_EQ(ring.multiplicative_order(6), 2u);
  EXPECT_THROW((void)ZmodRing(6).multiplicative_order(2), std::invalid_argument);
}

TEST(ZmodRing, GeneratorSetsBoundedByTheorem2) {
  // In Z_6, M(6) = 2: {0, 1} works but no 3-element generator set exists.
  const ZmodRing ring(6);
  const std::vector<Elem> two = {0, 1};
  EXPECT_TRUE(is_generator_set(ring, two));
  for (Elem a = 0; a < 6; ++a) {
    for (Elem b = a + 1; b < 6; ++b) {
      for (Elem c = b + 1; c < 6; ++c) {
        const std::vector<Elem> cand = {a, b, c};
        EXPECT_FALSE(is_generator_set(ring, cand))
            << a << "," << b << "," << c;
      }
    }
  }
}

}  // namespace
}  // namespace pdl::algebra
